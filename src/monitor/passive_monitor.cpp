#include "monitor/passive_monitor.hpp"

namespace ipfsmon::monitor {

node::NodeConfig PassiveMonitor::monitorize(node::NodeConfig config) {
  config.nat = false;          // publicly reachable by design
  config.dht_server = true;    // regular DHT participant
  config.max_degree = std::numeric_limits<std::size_t>::max();
  config.high_water = 0;       // never trim: peers are never evicted
  config.low_water = 0;
  config.target_degree = 0;    // passive: no active peer search
  config.discovery_dials = 0;
  config.provide_downloaded = false;  // monitors hold no data
  return config;
}

PassiveMonitor::PassiveMonitor(net::Network& network, crypto::KeyPair keys,
                               const net::Address& address,
                               const std::string& country,
                               MonitorConfig config, util::RngStream rng)
    : node::IpfsNode(network, std::move(keys), address, country,
                     monitorize(config.node), std::move(rng)),
      monitor_id_(config.monitor_id),
      snapshot_interval_(config.snapshot_interval),
      spill_dir_(config.spill_dir),
      spill_segment_entries_(config.spill_segment_entries),
      spill_segment_span_(config.spill_segment_span) {
  engine().set_listener([this](const crypto::PeerId& from,
                               net::ConnectionId /*conn*/,
                               const bitswap::BitswapMessage& message) {
    record_message(from, message);
  });
  auto& reg = network.obs().metrics;
  const std::string label = "monitor=\"" + std::to_string(monitor_id_) + "\"";
  metrics_.trace_entries =
      &reg.counter("ipfsmon_monitor_trace_entries_total",
                   "Bitswap trace entries recorded by all monitors");
  metrics_.trace_size = &reg.gauge("ipfsmon_monitor_trace_entries",
                                   "Trace entries since last reset", label);
  metrics_.unique_peers = &reg.gauge(
      "ipfsmon_monitor_unique_peers", "Unique peers ever connected", label);
  metrics_.snapshots_taken = &reg.gauge("ipfsmon_monitor_snapshots",
                                        "Peer-set snapshots taken", label);
  metrics_.coverage_mean =
      &reg.gauge("ipfsmon_monitor_coverage_mean_peers",
                 "Mean connected-peer-set size over snapshots", label);
  if (!spill_dir_.empty()) start_spill();
}

void PassiveMonitor::start_spill() {
  tracestore::StoreOptions options;
  options.max_entries_per_segment = spill_segment_entries_;
  options.max_segment_span = spill_segment_span_;
  options.obs = &network().obs();
  std::string error;
  spill_ = tracestore::SegmentWriter::create(spill_dir_, options, &error);
  if (spill_ == nullptr) {
    network().obs().events.emit(network().scheduler().now(),
                                obs::Severity::kError, "monitor",
                                "spill store unavailable, recording in "
                                "memory: " + error);
  }
}

bool PassiveMonitor::finalize_spill() {
  return spill_ != nullptr && spill_->finalize();
}

void PassiveMonitor::record_message(const crypto::PeerId& from,
                                    const bitswap::BitswapMessage& message) {
  if (crashed_ || message.entries.empty()) return;
  bitswap_active_.insert(from);
  const net::NodeRecord* rec = network().record(from);
  const net::Address addr = rec != nullptr ? rec->address : net::Address{};
  const util::SimTime now = network().scheduler().now();
  if (message.trace.sampled) {
    // The observation itself joins the request's trace — the causal link
    // the paper's methodology is built on, made visible per request.
    network().obs().tracer.add_span(
        "monitor.capture", message.trace, now, now,
        {{"monitor", std::to_string(monitor_id_)},
         {"peer", from.short_hex()},
         {"entries", std::to_string(message.entries.size())}});
  }
  for (const auto& entry : message.entries) {
    trace::TraceEntry t;
    t.timestamp = now;
    t.peer = from;
    t.address = addr;
    t.type = entry.type;
    // Salted requests (countermeasure, Sec. VI-C item 4) hide the real CID:
    // the monitor can only record an opaque stand-in. With fresh per-entry
    // salts, every request looks like a distinct, unlinkable CID.
    t.cid = entry.salted ? bitswap::opaque_cid_for(entry) : entry.cid;
    t.monitor = monitor_id_;
    if (spill_ != nullptr) {
      spill_->append(t);
    } else {
      trace_.append(std::move(t));
    }
    metrics_.trace_entries->inc();
  }
  metrics_.trace_size->set(
      spill_ != nullptr ? static_cast<double>(spill_->entries_written())
                        : static_cast<double>(trace_.size()));
}

void PassiveMonitor::on_peer_connected_hook(const crypto::PeerId& peer) {
  peers_seen_.insert(peer);
  metrics_.unique_peers->set(static_cast<double>(peers_seen_.size()));
}

void PassiveMonitor::start_snapshots() {
  schedule_snapshot();
}

void PassiveMonitor::stop_snapshots() { snapshot_timer_.cancel(); }

void PassiveMonitor::schedule_snapshot() {
  snapshot_timer_ =
      network().scheduler().schedule_after(snapshot_interval_, [this]() {
        PeerSnapshot snapshot;
        snapshot.time = network().scheduler().now();
        snapshot.peers = network().connected_peers(id());
        snapshot_peer_sum_ += static_cast<double>(snapshot.peers.size());
        snapshots_.push_back(std::move(snapshot));
        metrics_.snapshots_taken->set(static_cast<double>(snapshots_.size()));
        metrics_.coverage_mean->set(snapshot_peer_sum_ /
                                    static_cast<double>(snapshots_.size()));
        schedule_snapshot();
      });
}

void PassiveMonitor::crash() {
  if (crashed_) return;
  crashed_ = true;
  snapshots_were_running_ = snapshot_timer_.pending();
  stop_snapshots();
  if (spill_ != nullptr) {
    // The unflushed tail dies with the process; flushed segments stay on
    // disk behind a stale/missing MANIFEST for restart() to recover.
    spill_->abandon();
    spill_.reset();
  } else {
    trace_ = trace::Trace{};  // the in-memory trace dies with the process
    metrics_.trace_size->set(0.0);
  }
  go_offline();
  // Crash metrics are registered lazily: crash-free runs keep a registry
  // byte-identical to builds without the feature.
  network().obs().metrics
      .counter("ipfsmon_monitor_crashes_total",
               "Monitor crash events injected")
      .inc();
  if (network().obs().events.active()) {
    network().obs().events.emit(network().scheduler().now(),
                                obs::Severity::kWarn, "monitor",
                                "monitor " + std::to_string(monitor_id_) +
                                    " crashed");
  }
}

void PassiveMonitor::restart(const std::vector<crypto::PeerId>& bootstrap) {
  if (!crashed_) return;
  crashed_ = false;
  if (!spill_dir_.empty()) {
    tracestore::StoreOptions options;
    options.max_entries_per_segment = spill_segment_entries_;
    options.max_segment_span = spill_segment_span_;
    options.obs = &network().obs();
    std::string error;
    tracestore::RecoveryReport report;
    spill_ = tracestore::SegmentWriter::resume(spill_dir_, options, &report,
                                               &error);
    last_recovery_ = std::move(report);
    if (spill_ == nullptr) {
      network().obs().events.emit(network().scheduler().now(),
                                  obs::Severity::kError, "monitor",
                                  "spill recovery failed, recording in "
                                  "memory: " + error);
    } else {
      metrics_.trace_size->set(
          static_cast<double>(spill_->entries_written()));
    }
  }
  go_online(bootstrap);
  if (snapshots_were_running_) start_snapshots();
  network().obs().metrics
      .counter("ipfsmon_monitor_restarts_total",
               "Monitor restarts after injected crashes")
      .inc();
  if (network().obs().events.active()) {
    network().obs().events.emit(network().scheduler().now(),
                                obs::Severity::kInfo, "monitor",
                                "monitor " + std::to_string(monitor_id_) +
                                    " restarted");
  }
}

void PassiveMonitor::reset_observations() {
  trace_ = trace::Trace{};
  // Spilling monitors restart with a clean store directory (create()
  // removes previous segments), mirroring the in-memory trace reset.
  if (spill_ != nullptr) {
    spill_.reset();  // destructor finalizes; create() below wipes it
    start_spill();
  }
  snapshots_.clear();
  peers_seen_.clear();
  bitswap_active_.clear();
  snapshot_peer_sum_ = 0.0;
  metrics_.trace_size->set(0.0);
  metrics_.unique_peers->set(0.0);
  metrics_.snapshots_taken->set(0.0);
  metrics_.coverage_mean->set(0.0);
}

}  // namespace ipfsmon::monitor
