// The passive monitoring node (paper Sec. IV-A): a modified IPFS node with
// effectively infinite connection capacity that accepts every inbound
// connection, never evicts peers, stays otherwise indistinguishable from a
// regular node (bootstrapping + DHT maintenance only, no own requests), and
// records every Bitswap message it receives as a trace of
// (timestamp, node_ID, address, request_type, CID) tuples.
#pragma once

#include <limits>
#include <memory>
#include <unordered_set>

#include "node/ipfs_node.hpp"
#include "trace/trace.hpp"
#include "tracestore/store.hpp"

namespace ipfsmon::monitor {

struct MonitorConfig {
  trace::MonitorId monitor_id = 0;
  /// Periodic connected-peer-set snapshots feed the network-size
  /// estimators (Sec. IV-C).
  util::SimDuration snapshot_interval = 1 * util::kHour;
  /// When non-empty, the monitor spills its recording into an on-disk
  /// trace store (tracestore::SegmentWriter) at this directory instead of
  /// growing an in-memory trace — the out-of-core path for long studies.
  /// recorded() stays empty in that mode; consume the store instead.
  std::string spill_dir;
  /// Segment roll caps for the spill store.
  std::uint64_t spill_segment_entries = 1u << 16;
  util::SimDuration spill_segment_span = 6 * util::kHour;
  /// Base node behaviour. Overridden where monitoring requires: unlimited
  /// degree, no eviction, DHT server mode, no active discovery.
  node::NodeConfig node;
};

/// One connected-peer-set snapshot.
struct PeerSnapshot {
  util::SimTime time = 0;
  std::vector<crypto::PeerId> peers;
};

class PassiveMonitor : public node::IpfsNode {
 public:
  PassiveMonitor(net::Network& network, crypto::KeyPair keys,
                 const net::Address& address, const std::string& country,
                 MonitorConfig config, util::RngStream rng);

  trace::MonitorId monitor_id() const { return monitor_id_; }

  /// The raw trace recorded so far (empty when spilling to a store).
  const trace::Trace& recorded() const { return trace_; }
  trace::Trace& recorded() { return trace_; }

  /// True when this monitor spills to an on-disk store.
  bool spilling() const { return spill_ != nullptr; }
  /// Directory of the spill store ("" when not spilling).
  const std::string& spill_dir() const { return spill_dir_; }
  /// Flushes the open segment and publishes the store manifest. Call after
  /// the measurement window; the store is unreadable before this. Returns
  /// false when not spilling or on IO failure.
  bool finalize_spill();

  /// Starts periodic peer-set snapshots (call after go_online).
  void start_snapshots();
  void stop_snapshots();
  const std::vector<PeerSnapshot>& snapshots() const { return snapshots_; }

  /// All unique peers ever connected (the paper's weekly-total numbers).
  const std::unordered_set<crypto::PeerId>& peers_seen() const {
    return peers_seen_;
  }

  /// Peers that sent at least one Bitswap request or cancel.
  const std::unordered_set<crypto::PeerId>& bitswap_active_peers() const {
    return bitswap_active_;
  }

  /// Clears trace and counters (e.g. between warm-up and measurement).
  void reset_observations();

  // --- Crash/restart (fault injection, src/churn) ------------------------

  /// Kills the monitor at the current sim time: it drops off the network,
  /// snapshots stop, and everything that only lived in process memory is
  /// lost — the in-memory trace, or a spilling monitor's unflushed segment
  /// tail. A spilling monitor's store directory is left exactly as a real
  /// crash would: flushed segments on disk behind a stale or missing
  /// MANIFEST, for restart() to recover. Idempotent while crashed.
  void crash();

  /// Restarts a crashed monitor: recovers the spill store via
  /// tracestore::SegmentWriter::resume (torn tail quarantined, MANIFEST
  /// rebuilt), rejoins the network through `bootstrap`, and resumes
  /// snapshots if they were running at crash time. No-op unless crashed.
  void restart(const std::vector<crypto::PeerId>& bootstrap);

  bool crashed() const { return crashed_; }
  /// Details of the most recent restart()'s spill recovery.
  const tracestore::RecoveryReport& last_recovery() const {
    return last_recovery_;
  }

 protected:
  void on_peer_connected_hook(const crypto::PeerId& peer) override;

 private:
  static node::NodeConfig monitorize(node::NodeConfig config);
  void record_message(const crypto::PeerId& from,
                      const bitswap::BitswapMessage& message);
  void schedule_snapshot();

  void start_spill();

  trace::MonitorId monitor_id_;
  bool crashed_ = false;
  bool snapshots_were_running_ = false;
  tracestore::RecoveryReport last_recovery_;
  util::SimDuration snapshot_interval_;
  std::string spill_dir_;
  std::uint64_t spill_segment_entries_;
  util::SimDuration spill_segment_span_;
  std::unique_ptr<tracestore::SegmentWriter> spill_;
  trace::Trace trace_;
  std::vector<PeerSnapshot> snapshots_;
  std::unordered_set<crypto::PeerId> peers_seen_;
  std::unordered_set<crypto::PeerId> bitswap_active_;
  sim::EventHandle snapshot_timer_;

  // Obs instruments. The counter is network-wide; the gauges carry a
  // monitor="<id>" label so per-monitor series stay separable.
  struct Instruments {
    obs::Counter* trace_entries = nullptr;
    obs::Gauge* trace_size = nullptr;
    obs::Gauge* unique_peers = nullptr;
    obs::Gauge* snapshots_taken = nullptr;
    obs::Gauge* coverage_mean = nullptr;
  } metrics_;
  /// Sum of per-snapshot connected-peer counts since the last reset;
  /// coverage_mean = this / snapshots_.size() — the same statistic the
  /// analysis pipeline's estimate_over_snapshots reports as
  /// mean_set_sizes, kept live so exporters can cross-check it.
  double snapshot_peer_sum_ = 0.0;
};

}  // namespace ipfsmon::monitor
