// The "more active peer discovery" variant the paper sketches in
// Sec. IV-A/V-C: coverage "can be further increased by adding more
// monitoring nodes or, complementary, by implementing a more active peer
// discovery mechanism". An ActiveMonitor keeps the passive recorder but
// additionally crawls the DHT on a timer and dials every discovered peer —
// trading the passive setup's stealth (it is now clearly distinguishable
// from a regular node by its dialing pattern) for coverage.
#pragma once

#include "dht/crawler.hpp"
#include "monitor/passive_monitor.hpp"

namespace ipfsmon::monitor {

struct ActiveMonitorConfig {
  MonitorConfig base;
  /// How often to crawl-and-dial.
  util::SimDuration sweep_interval = 2 * util::kHour;
  /// Crawl fan-out (FIND_NODE probes per crawled peer).
  std::size_t queries_per_peer = 8;
  /// Dials per sweep are capped to avoid thundering herds.
  std::size_t max_dials_per_sweep = 2000;
};

class ActiveMonitor : public PassiveMonitor {
 public:
  ActiveMonitor(net::Network& network, crypto::KeyPair keys,
                const net::Address& address, const std::string& country,
                ActiveMonitorConfig config, util::RngStream rng);

  /// Starts the periodic crawl-and-dial sweeps (call after go_online).
  void start_sweeps();
  void stop_sweeps();

  std::uint64_t sweeps_completed() const { return sweeps_completed_; }
  std::uint64_t peers_dialed() const { return peers_dialed_; }

 private:
  void schedule_sweep();
  void run_sweep();

  ActiveMonitorConfig config_;
  util::RngStream sweep_rng_;
  sim::EventHandle sweep_timer_;
  std::uint64_t sweeps_completed_ = 0;
  std::uint64_t peers_dialed_ = 0;
  bool sweep_running_ = false;
};

}  // namespace ipfsmon::monitor
