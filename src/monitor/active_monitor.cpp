#include "monitor/active_monitor.hpp"

namespace ipfsmon::monitor {

ActiveMonitor::ActiveMonitor(net::Network& network, crypto::KeyPair keys,
                             const net::Address& address,
                             const std::string& country,
                             ActiveMonitorConfig config, util::RngStream rng)
    : PassiveMonitor(network, std::move(keys), address, country, config.base,
                     rng.fork("passive-base")),
      config_(config),
      sweep_rng_(std::move(rng)) {}

void ActiveMonitor::start_sweeps() { schedule_sweep(); }

void ActiveMonitor::stop_sweeps() { sweep_timer_.cancel(); }

void ActiveMonitor::schedule_sweep() {
  sweep_timer_ = network().scheduler().schedule_after(
      config_.sweep_interval, [this]() {
        run_sweep();
        schedule_sweep();
      });
}

void ActiveMonitor::run_sweep() {
  if (!online() || sweep_running_) return;
  sweep_running_ = true;

  // Seed the crawl from our own routing table; the monitor crawls *as
  // itself* — the whole point is to then hold the connections open.
  const auto seeds = dht().routing_table().closest(
      dht::key_of(id()), 8);
  if (seeds.empty()) {
    sweep_running_ = false;
    return;
  }

  // The crawl runs over our own DHT by issuing FIND_NODE lookups toward
  // random targets, then we dial everything we learned. (We reuse the
  // node's own DHT rather than a separate crawler identity: an active
  // monitor is overt anyway.)
  auto discovered = std::make_shared<std::unordered_set<crypto::PeerId>>();
  auto remaining = std::make_shared<std::size_t>(config_.queries_per_peer);
  for (std::size_t i = 0; i < config_.queries_per_peer; ++i) {
    dht::Key target;
    sweep_rng_.fill_bytes(target.data(), target.size());
    dht().find_closest(target, [this, discovered, remaining](
                                   std::vector<dht::PeerRecord> found) {
      for (const auto& record : found) discovered->insert(record.id);
      if (--*remaining > 0) return;

      // All lookups done: dial everything discovered. (Peers contacted
      // during the lookups are already connected — dialing them again is a
      // no-op that returns the existing connection.)
      std::size_t dialed = 0;
      for (const auto& peer : *discovered) {
        if (dialed >= config_.max_dials_per_sweep) break;
        if (peer == id()) continue;
        ++dialed;
        ++peers_dialed_;
        network().dial(id(), peer, nullptr);
      }
      ++sweeps_completed_;
      sweep_running_ = false;
    });
  }
}

}  // namespace ipfsmon::monitor
