#include "bitswap/client.hpp"

#include <algorithm>

namespace ipfsmon::bitswap {

BitswapClient::BitswapClient(net::Network& network, const crypto::PeerId& self,
                             ClientConfig config, ProviderSearchFn search,
                             util::RngStream rng)
    : network_(network),
      self_(self),
      config_(config),
      search_(std::move(search)),
      rng_(std::move(rng)) {
  auto& m = network_.obs().metrics;
  metrics_.want_messages = &m.counter("ipfsmon_bitswap_want_messages_total",
                                      "Bitswap messages carrying want entries");
  metrics_.want_have = &m.counter("ipfsmon_bitswap_want_have_sent_total",
                                  "WANT_HAVE entries sent");
  metrics_.want_block = &m.counter("ipfsmon_bitswap_want_block_sent_total",
                                   "WANT_BLOCK entries sent");
  metrics_.cancels =
      &m.counter("ipfsmon_bitswap_cancels_sent_total", "CANCEL messages sent");
  metrics_.rebroadcast_rounds =
      &m.counter("ipfsmon_bitswap_rebroadcast_rounds_total",
                 "30 s re-broadcast timer fires");
  metrics_.fetches_started =
      &m.counter("ipfsmon_bitswap_fetches_started_total", "Fetches started");
  metrics_.fetches_completed = &m.counter(
      "ipfsmon_bitswap_fetches_completed_total", "Fetches completed");
  metrics_.fetches_failed = &m.counter("ipfsmon_bitswap_fetches_failed_total",
                                       "Fetches failed or timed out");
  metrics_.provider_searches = &m.counter(
      "ipfsmon_bitswap_provider_searches_total", "DHT provider searches");
  metrics_.fetch_duration = &m.histogram(
      "ipfsmon_bitswap_fetch_duration_seconds",
      {0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0},
      "Sim-time duration of completed fetches");
}

SessionId BitswapClient::create_session() {
  const SessionId id = next_session_++;
  sessions_[id];  // materialize empty peer set
  return id;
}

std::vector<crypto::PeerId> BitswapClient::session_peers(
    SessionId session) const {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void BitswapClient::fetch(const cid::Cid& cid, SessionId session,
                          FetchCallback on_done) {
  if (shut_down_) {
    if (on_done) on_done(nullptr);
    return;
  }
  if (const auto it = active_.find(cid); it != active_.end()) {
    // Coalesce concurrent fetches of the same CID.
    if (on_done) it->second->callbacks.push_back(std::move(on_done));
    return;
  }
  ++stats_.fetches_started;
  metrics_.fetches_started->inc();

  auto state = std::make_shared<WantState>();
  state->cid = cid;
  state->session = session;
  state->started = network_.scheduler().now();
  auto& tracer = network_.obs().tracer;
  if (tracer.enabled()) {
    // Child of the caller's span (e.g. a gateway request) when one is in
    // scope; otherwise its own sampled root (workload-driven fetches).
    state->span = tracer.current().valid()
                      ? tracer.start_span("bitswap.fetch", tracer.current())
                      : tracer.start_trace("bitswap.fetch");
    state->span.set_attr("cid", cid.short_hex());
  }
  if (on_done) state->callbacks.push_back(std::move(on_done));
  // A populated session scopes the request; an empty/no session broadcasts
  // (the root request of a DAG download is always a broadcast).
  const auto sit = sessions_.find(session);
  const bool session_has_peers = sit != sessions_.end() && !sit->second.empty();
  state->broadcast = !session_has_peers;
  active_[cid] = state;

  broadcast_want(state);
  arm_deadline(state);
  arm_rebroadcast(state);

  // Step 2 of the retrieval strategy: DHT search if broadcasting stalls.
  state->provider_delay_timer = network_.scheduler().schedule_after(
      config_.provider_search_delay, [this, state]() {
        if (state->done) return;
        if (!state->block_in_flight && state->candidates.empty()) {
          start_provider_search(state);
        }
      });
}

std::vector<crypto::PeerId> BitswapClient::want_targets(
    const WantStatePtr& state) const {
  if (state->broadcast) {
    if (!config_.broadcast_wants) return {};  // DHT-only countermeasure
    return network_.connected_peers(self_);
  }
  const auto it = sessions_.find(state->session);
  if (it == sessions_.end()) return {};
  std::vector<crypto::PeerId> peers;
  peers.reserve(it->second.size());
  for (const auto& p : it->second) {
    if (network_.connection_between(self_, p)) peers.push_back(p);
  }
  return peers;
}

WantEntry BitswapClient::build_entry(const cid::Cid& cid, WantType type,
                                     bool send_dont_have, bool allow_salted) {
  if (config_.salted_wants && allow_salted) {
    util::Bytes salt(config_.salt_bytes);
    rng_.fill_bytes(salt.data(), salt.size());
    return make_salted_entry(cid, std::move(salt), type, send_dont_have);
  }
  WantEntry entry;
  entry.cid = cid;
  entry.type = type;
  entry.send_dont_have = send_dont_have;
  return entry;
}

void BitswapClient::send_want(const WantStatePtr& state,
                              const crypto::PeerId& peer,
                              net::ConnectionId conn, WantType type,
                              bool send_dont_have, bool allow_salted) {
  auto msg = std::make_shared<BitswapMessage>();
  msg->entries.push_back(
      build_entry(state->cid, type, send_dont_have, allow_salted));
  msg->trace = state->span.context();
  network_.send(conn, self_, std::move(msg));
  state->told.insert(peer);
  ++stats_.want_messages_sent;
  metrics_.want_messages->inc();
  (type == WantType::WantBlock ? metrics_.want_block : metrics_.want_have)
      ->inc();
}

void BitswapClient::broadcast_want(const WantStatePtr& state) {
  const WantType type =
      config_.use_want_have ? WantType::WantHave : WantType::WantBlock;
  std::uint64_t sent = 0;
  for (const auto& peer : want_targets(state)) {
    const auto conn = network_.connection_between(self_, peer);
    if (!conn) continue;
    // Broadcast probes do not request explicit DONT_HAVEs (timeouts
    // determine absence); session-scoped wants do.
    send_want(state, peer, *conn, type, /*send_dont_have=*/!state->broadcast);
    ++sent;
  }
  if (state->span.active()) {
    const util::SimTime now = network_.scheduler().now();
    network_.obs().tracer.add_span("bitswap.broadcast", state->span.context(),
                                   now, now, {{"targets", std::to_string(sent)}});
  }
}

void BitswapClient::handle_response(const crypto::PeerId& from,
                                    const BitswapMessage& message) {
  for (const auto& block : message.blocks) {
    if (block == nullptr) continue;
    const auto it = active_.find(block->id());
    if (it == active_.end()) continue;
    if (!block->verify()) continue;  // self-certification check
    WantStatePtr state = it->second;
    if (state->session != kNoSession) sessions_[state->session].insert(from);
    complete(state, block);
  }
  for (const auto& presence : message.presences) {
    const auto it = active_.find(presence.cid);
    if (it == active_.end()) continue;
    WantStatePtr state = it->second;
    if (presence.have) {
      if (state->session != kNoSession) sessions_[state->session].insert(from);
      if (state->candidate_set.insert(from).second &&
          state->tried.count(from) == 0) {
        state->candidates.push_back(from);
      }
      try_next_candidate(state);
    } else if (state->block_in_flight == from) {
      // Our directed WANT_BLOCK was answered DONT_HAVE: move on.
      state->block_in_flight.reset();
      state->block_timeout_timer.cancel();
      try_next_candidate(state);
    }
  }
}

void BitswapClient::try_next_candidate(const WantStatePtr& state) {
  if (state->done || state->block_in_flight) return;
  while (!state->candidates.empty()) {
    const crypto::PeerId peer = state->candidates.front();
    state->candidates.erase(state->candidates.begin());
    state->candidate_set.erase(peer);
    if (!state->tried.insert(peer).second) continue;
    const auto conn = network_.connection_between(self_, peer);
    if (!conn) continue;  // candidate disconnected meanwhile
    state->block_in_flight = peer;
    // The candidate proved knowledge (HAVE) or is a DHT-listed provider —
    // a plaintext directed request leaks nothing new to it.
    send_want(state, peer, *conn, WantType::WantBlock, /*send_dont_have=*/true,
              /*allow_salted=*/false);
    if (state->span.active()) {
      const util::SimTime now = network_.scheduler().now();
      network_.obs().tracer.add_span("bitswap.want_block",
                                     state->span.context(), now, now,
                                     {{"peer", peer.short_hex()}});
    }
    state->block_timeout_timer = network_.scheduler().schedule_after(
        config_.block_request_timeout, [this, state]() {
          if (state->done) return;
          state->block_in_flight.reset();
          try_next_candidate(state);
        });
    return;
  }
}

void BitswapClient::start_provider_search(const WantStatePtr& state) {
  if (!search_ || state->provider_search_running || state->done) return;
  state->provider_search_running = true;
  ++stats_.provider_searches;
  metrics_.provider_searches->inc();
  state->provider_span = network_.obs().tracer.start_span(
      "bitswap.provider_search", state->span.context());
  // The DHT lookup starts synchronously inside search_; scope the
  // implicit context so its spans parent here.
  obs::ScopedContext scope(network_.obs().tracer,
                           state->provider_span.context());
  search_(state->cid, [this, state](std::vector<dht::PeerRecord> providers) {
    state->provider_search_running = false;
    if (state->provider_span.active()) {
      state->provider_span.set_attr(
          "providers", static_cast<std::uint64_t>(providers.size()));
      state->provider_span.end();
    }
    if (state->done || shut_down_) return;
    std::size_t contacted = 0;
    for (const auto& provider : providers) {
      if (contacted >= config_.max_providers_contacted) break;
      if (provider.id == self_) continue;
      if (state->tried.count(provider.id) != 0 ||
          state->candidate_set.count(provider.id) != 0) {
        continue;
      }
      ++contacted;
      if (state->session != kNoSession) {
        sessions_[state->session].insert(provider.id);
      }
      // Connect (if needed) and queue the provider as a candidate; a
      // directed WANT_BLOCK follows via try_next_candidate.
      network_.dial(self_, provider.id,
                    [this, state, id = provider.id](
                        std::optional<net::ConnectionId> conn) {
                      if (!conn || state->done) return;
                      if (state->tried.count(id) != 0) return;
                      if (state->candidate_set.insert(id).second) {
                        state->candidates.push_back(id);
                      }
                      try_next_candidate(state);
                    });
    }
  });
}

void BitswapClient::on_rebroadcast(const WantStatePtr& state) {
  if (state->done) return;
  ++stats_.rebroadcast_rounds;
  metrics_.rebroadcast_rounds->inc();
  broadcast_want(state);
  // Fig. 1's idle loop also re-searches the DHT while stalled.
  if (!state->block_in_flight && state->candidates.empty()) {
    start_provider_search(state);
  }
  arm_rebroadcast(state);
}

void BitswapClient::arm_rebroadcast(const WantStatePtr& state) {
  if (!config_.rebroadcast) return;
  state->rebroadcast_timer = network_.scheduler().schedule_after(
      config_.rebroadcast_interval, [this, state]() { on_rebroadcast(state); });
}

void BitswapClient::arm_deadline(const WantStatePtr& state) {
  state->deadline_timer = network_.scheduler().schedule_after(
      config_.fetch_timeout, [this, state]() {
        if (!state->done) fail(state);
      });
}

void BitswapClient::send_cancels(const WantStatePtr& state) {
  for (const auto& peer : state->told) {
    const auto conn = network_.connection_between(self_, peer);
    if (!conn) continue;
    auto msg = std::make_shared<BitswapMessage>();
    msg->entries.push_back(
        build_entry(state->cid, WantType::Cancel, false, /*allow_salted=*/true));
    msg->trace = state->span.context();
    network_.send(*conn, self_, std::move(msg));
    ++stats_.cancels_sent;
    metrics_.cancels->inc();
  }
  state->told.clear();
}

void BitswapClient::complete(WantStatePtr state, const dag::BlockPtr& block) {
  if (state->done) return;
  state->done = true;
  state->rebroadcast_timer.cancel();
  state->provider_delay_timer.cancel();
  state->block_timeout_timer.cancel();
  state->deadline_timer.cancel();
  send_cancels(state);
  active_.erase(state->cid);
  ++stats_.fetches_completed;
  metrics_.fetches_completed->inc();
  metrics_.fetch_duration->observe(
      util::to_seconds(network_.scheduler().now() - state->started));
  state->span.set_attr("outcome", "ok");
  state->span.end();
  for (auto& cb : state->callbacks) {
    if (cb) cb(block);
  }
}

void BitswapClient::fail(WantStatePtr state) {
  if (state->done) return;
  state->done = true;
  state->rebroadcast_timer.cancel();
  state->provider_delay_timer.cancel();
  state->block_timeout_timer.cancel();
  state->deadline_timer.cancel();
  send_cancels(state);
  active_.erase(state->cid);
  ++stats_.fetches_failed;
  metrics_.fetches_failed->inc();
  state->span.set_attr("outcome", "fail");
  state->span.end();
  for (auto& cb : state->callbacks) {
    if (cb) cb(nullptr);
  }
}

void BitswapClient::cancel(const cid::Cid& cid) {
  const auto it = active_.find(cid);
  if (it == active_.end()) return;
  fail(it->second);
}

void BitswapClient::on_peer_connected(net::ConnectionId conn,
                                      const crypto::PeerId& peer) {
  if (shut_down_ || active_.empty()) return;
  // Bitswap pushes the full current wantlist to newly connected peers.
  auto msg = std::make_shared<BitswapMessage>();
  msg->full_wantlist = true;
  const WantType type =
      config_.use_want_have ? WantType::WantHave : WantType::WantBlock;
  std::vector<WantStatePtr> told;
  for (const auto& [cid, state] : active_) {
    if (!state->broadcast) continue;  // session-scoped wants stay scoped
    if (!config_.broadcast_wants) continue;
    msg->entries.push_back(build_entry(cid, type, false, /*allow_salted=*/true));
    told.push_back(state);
  }
  if (msg->entries.empty()) return;
  const std::size_t entry_count = msg->entries.size();
  network_.send(conn, self_, std::move(msg));
  for (const auto& state : told) state->told.insert(peer);
  ++stats_.want_messages_sent;
  metrics_.want_messages->inc();
  (type == WantType::WantBlock ? metrics_.want_block : metrics_.want_have)
      ->inc(entry_count);
}

void BitswapClient::shutdown() {
  shut_down_ = true;
  // fail() mutates active_; iterate over a snapshot.
  std::vector<WantStatePtr> states;
  states.reserve(active_.size());
  for (const auto& [cid, state] : active_) states.push_back(state);
  for (const auto& state : states) fail(state);
  sessions_.clear();
}

}  // namespace ipfsmon::bitswap
