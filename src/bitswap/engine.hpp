// The Bitswap responder ("decision engine"): tracks remote peers'
// wantlists in per-peer ledgers, answers WANT_HAVE with HAVE/DONT_HAVE and
// WANT_BLOCK with BLOCK, and pushes data to waiting peers when new blocks
// arrive locally. Ledgers persist for as long as the peer stays connected
// (paper Sec. III-D1).
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bitswap/message.hpp"
#include "crypto/keys.hpp"
#include "net/network.hpp"

namespace ipfsmon::bitswap {

class BitswapEngine {
 public:
  /// Lets the engine look blocks up in the owner's blockstore.
  using BlockLookup = std::function<dag::BlockPtr(const cid::Cid&)>;
  /// Enumerates all stored CIDs — needed to resolve salted-CID requests
  /// (each one costs one hash per stored CID).
  using CidEnumerator = std::function<std::vector<cid::Cid>()>;
  /// Observation hook: fires for every inbound Bitswap message, before any
  /// processing. This is the attachment point for passive monitors.
  using MessageListener =
      std::function<void(const crypto::PeerId& from, net::ConnectionId conn,
                         const BitswapMessage& message)>;

  BitswapEngine(net::Network& network, const crypto::PeerId& self,
                BlockLookup lookup, CidEnumerator enumerator = nullptr);

  void set_listener(MessageListener listener) { listener_ = std::move(listener); }

  /// Countermeasure knob (paper Sec. VI-C item 5): when false, the node
  /// refuses to serve cached blocks to others — defeating TPI at the cost
  /// of cooperative caching.
  void set_serve_blocks(bool serve) { serve_blocks_ = serve; }

  /// Processes an inbound message's request side (entries). Presences and
  /// blocks are for the client; the owning node routes them there.
  void handle_message(net::ConnectionId conn, const crypto::PeerId& from,
                      const BitswapMessage& message);

  /// Drops the peer's ledger (connection closed).
  void on_peer_disconnected(const crypto::PeerId& peer);

  /// A new block arrived locally; serve it to every peer whose ledger
  /// wants it.
  void notify_new_block(const dag::BlockPtr& block);

  /// The peer's current wantlist (for tests and the TPI probe analysis).
  std::vector<WantEntry> wantlist_of(const crypto::PeerId& peer) const;

  std::uint64_t blocks_served() const { return blocks_served_; }
  std::uint64_t presences_sent() const { return presences_sent_; }
  /// Hashes computed while resolving salted requests (the providers' CPU
  /// cost of the countermeasure — its DoS-amplification surface).
  std::uint64_t salted_hashes_computed() const {
    return salted_hashes_computed_;
  }

 private:
  struct LedgerEntry {
    WantType type;
    bool send_dont_have;
  };

  void reply(net::ConnectionId conn, std::shared_ptr<BitswapMessage> msg);
  /// Resolves a salted entry against the local store; nullopt if no stored
  /// CID matches under the entry's salt.
  std::optional<cid::Cid> resolve_salted(const WantEntry& entry);

  net::Network& network_;
  crypto::PeerId self_;
  BlockLookup lookup_;
  CidEnumerator enumerator_;
  MessageListener listener_;
  bool serve_blocks_ = true;
  std::uint64_t salted_hashes_computed_ = 0;

  // Network-wide obs instruments (shared across all engines on the same
  // network; grabbed once at construction, bumped inline on hot paths).
  struct Instruments {
    obs::Counter* messages_handled = nullptr;
    obs::Counter* blocks_served = nullptr;
    obs::Counter* presences_sent = nullptr;
    obs::Counter* salted_hashes = nullptr;
  } metrics_;

  // peer -> (cid -> entry); ordered inner map keeps test output stable.
  std::unordered_map<crypto::PeerId, std::map<cid::Cid, LedgerEntry>> ledgers_;
  // cid -> peers wanting it (inverse index for notify_new_block).
  std::unordered_map<cid::Cid, std::unordered_set<crypto::PeerId>> wanters_;

  std::uint64_t blocks_served_ = 0;
  std::uint64_t presences_sent_ = 0;
};

}  // namespace ipfsmon::bitswap
