// Bitswap wire messages (paper Sec. III-D). A message carries wantlist
// updates (WANT_HAVE / WANT_BLOCK / CANCEL entries), block presences
// (HAVE / DONT_HAVE), and/or blocks.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cid/cid.hpp"
#include "crypto/sha256.hpp"
#include "dag/block.hpp"
#include "net/network.hpp"

namespace ipfsmon::bitswap {

enum class WantType : std::uint8_t {
  WantHave,   // "do you have this block?" (introduced in IPFS v0.5)
  WantBlock,  // "send me this block if you have it" (all versions)
  Cancel,     // retract an outstanding want
};

std::string_view want_type_name(WantType type);

struct WantEntry {
  cid::Cid cid;
  WantType type = WantType::WantHave;
  /// Ask the peer to answer DONT_HAVE explicitly (otherwise absence is
  /// detected by timeout).
  bool send_dont_have = false;
  std::int32_t priority = 1;

  /// Salted-CID privacy extension (paper Sec. VI-C item 4): instead of the
  /// plaintext CID, the entry carries H(salt ‖ CID) plus the salt. Only
  /// peers that actually store the block can identify it (by hashing each
  /// stored CID under the salt); eavesdropping monitors learn nothing. The
  /// `cid` field is meaningless when `salted` is set.
  bool salted = false;
  util::Bytes salt;
  crypto::Sha256Digest salted_hash{};
};

/// Builds a salted want entry for `target` under a fresh salt.
WantEntry make_salted_entry(const cid::Cid& target, util::Bytes salt,
                            WantType type, bool send_dont_have);

/// The salted digest H(salt ‖ cid-bytes).
crypto::Sha256Digest salted_cid_hash(const cid::Cid& target,
                                     util::BytesView salt);

/// The opaque stand-in CID a monitor records for a salted request: a
/// raw-codec CID wrapping the salted hash. Fresh salts make every request
/// look like a unique, unlinkable CID.
cid::Cid opaque_cid_for(const WantEntry& salted_entry);

struct BlockPresence {
  cid::Cid cid;
  bool have = false;  // true = HAVE, false = DONT_HAVE
};

struct BitswapMessage : net::Payload {
  std::vector<WantEntry> entries;
  std::vector<BlockPresence> presences;
  std::vector<dag::BlockPtr> blocks;
  /// True when the entries replace the receiver's ledger for this sender
  /// (sent on new connections).
  bool full_wantlist = false;

  std::size_t wire_size() const override {
    // Protobuf-ish estimate: ~40 B per want entry (CID + flags), ~38 B per
    // presence, block payloads at face value plus framing.
    std::size_t size = 8 + entries.size() * 40 + presences.size() * 38;
    for (const auto& block : blocks) {
      size += 40 + (block != nullptr ? block->data().size() : 0);
    }
    return size;
  }
};

using BitswapMessagePtr = std::shared_ptr<const BitswapMessage>;

}  // namespace ipfsmon::bitswap
