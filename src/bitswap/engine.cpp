#include "bitswap/engine.hpp"

namespace ipfsmon::bitswap {

BitswapEngine::BitswapEngine(net::Network& network, const crypto::PeerId& self,
                             BlockLookup lookup, CidEnumerator enumerator)
    : network_(network),
      self_(self),
      lookup_(std::move(lookup)),
      enumerator_(std::move(enumerator)) {
  auto& reg = network_.obs().metrics;
  metrics_.messages_handled = &reg.counter(
      "ipfsmon_bitswap_engine_messages_total",
      "Inbound Bitswap messages processed by decision engines");
  metrics_.blocks_served = &reg.counter("ipfsmon_bitswap_blocks_served_total",
                                        "Blocks served to remote peers");
  metrics_.presences_sent =
      &reg.counter("ipfsmon_bitswap_presences_sent_total",
                   "HAVE/DONT_HAVE presences sent to remote peers");
  metrics_.salted_hashes =
      &reg.counter("ipfsmon_bitswap_salted_hashes_total",
                   "Hashes computed resolving salted-CID requests");
}

std::optional<cid::Cid> BitswapEngine::resolve_salted(const WantEntry& entry) {
  if (!enumerator_) return std::nullopt;
  // The provider-side cost the paper warns about: one hash per stored CID
  // per salted request — an amplification surface for denial of service.
  for (const cid::Cid& candidate : enumerator_()) {
    ++salted_hashes_computed_;
    metrics_.salted_hashes->inc();
    if (salted_cid_hash(candidate, entry.salt) == entry.salted_hash) {
      return candidate;
    }
  }
  return std::nullopt;
}

void BitswapEngine::reply(net::ConnectionId conn,
                          std::shared_ptr<BitswapMessage> msg) {
  if (msg->entries.empty() && msg->presences.empty() && msg->blocks.empty()) {
    return;
  }
  network_.send(conn, self_, std::move(msg));
}

void BitswapEngine::handle_message(net::ConnectionId conn,
                                   const crypto::PeerId& from,
                                   const BitswapMessage& message) {
  if (listener_) listener_(from, conn, message);
  metrics_.messages_handled->inc();

  auto& ledger = ledgers_[from];
  if (message.full_wantlist) {
    for (const auto& [cid, entry] : ledger) wanters_[cid].erase(from);
    ledger.clear();
  }

  auto response = std::make_shared<BitswapMessage>();
  for (const auto& raw_entry : message.entries) {
    WantEntry entry = raw_entry;
    if (entry.salted) {
      // Salted requests can only be understood by actual providers. Wants
      // we cannot resolve are dropped entirely — they cannot be recorded
      // in the ledger (no known CID), so want persistence and late serving
      // silently stop working for them: part of the countermeasure's cost.
      const auto resolved = resolve_salted(entry);
      if (!resolved) continue;
      entry.cid = *resolved;
    }
    if (entry.type == WantType::Cancel) {
      ledger.erase(entry.cid);
      auto it = wanters_.find(entry.cid);
      if (it != wanters_.end()) {
        it->second.erase(from);
        if (it->second.empty()) wanters_.erase(it);
      }
      continue;
    }
    ledger[entry.cid] = LedgerEntry{entry.type, entry.send_dont_have};
    wanters_[entry.cid].insert(from);

    const dag::BlockPtr block = lookup_ ? lookup_(entry.cid) : nullptr;
    if (block != nullptr && serve_blocks_) {
      if (entry.type == WantType::WantBlock) {
        response->blocks.push_back(block);
        ++blocks_served_;
        metrics_.blocks_served->inc();
      } else {
        response->presences.push_back(BlockPresence{entry.cid, true});
        ++presences_sent_;
        metrics_.presences_sent->inc();
      }
    } else if (entry.send_dont_have) {
      // Negative responses are optional in the protocol; we honor the flag.
      response->presences.push_back(BlockPresence{entry.cid, false});
      ++presences_sent_;
      metrics_.presences_sent->inc();
    }
  }
  reply(conn, std::move(response));
}

void BitswapEngine::on_peer_disconnected(const crypto::PeerId& peer) {
  const auto it = ledgers_.find(peer);
  if (it == ledgers_.end()) return;
  for (const auto& [cid, entry] : it->second) {
    auto jt = wanters_.find(cid);
    if (jt != wanters_.end()) {
      jt->second.erase(peer);
      if (jt->second.empty()) wanters_.erase(jt);
    }
  }
  ledgers_.erase(it);
}

void BitswapEngine::notify_new_block(const dag::BlockPtr& block) {
  if (!serve_blocks_ || block == nullptr) return;
  const auto it = wanters_.find(block->id());
  if (it == wanters_.end()) return;
  // Copy: sends may trigger reentrant engine activity.
  const std::vector<crypto::PeerId> peers(it->second.begin(), it->second.end());
  for (const auto& peer : peers) {
    const auto conn = network_.connection_between(self_, peer);
    if (!conn) continue;
    const auto lit = ledgers_.find(peer);
    if (lit == ledgers_.end()) continue;
    const auto eit = lit->second.find(block->id());
    if (eit == lit->second.end()) continue;
    auto msg = std::make_shared<BitswapMessage>();
    if (eit->second.type == WantType::WantBlock) {
      msg->blocks.push_back(block);
      ++blocks_served_;
      metrics_.blocks_served->inc();
    } else {
      msg->presences.push_back(BlockPresence{block->id(), true});
      ++presences_sent_;
      metrics_.presences_sent->inc();
    }
    reply(*conn, std::move(msg));
  }
}

std::vector<WantEntry> BitswapEngine::wantlist_of(
    const crypto::PeerId& peer) const {
  std::vector<WantEntry> out;
  const auto it = ledgers_.find(peer);
  if (it == ledgers_.end()) return out;
  for (const auto& [cid, entry] : it->second) {
    WantEntry want;
    want.cid = cid;
    want.type = entry.type;
    want.send_dont_have = entry.send_dont_have;
    out.push_back(std::move(want));
  }
  return out;
}

}  // namespace ipfsmon::bitswap
