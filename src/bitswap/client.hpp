// The Bitswap requester: implements the two-step content-retrieval strategy
// from paper Sec. III-C / Fig. 1 —
//
//   1. broadcast a want for the CID to ALL connected peers,
//   2. if that stalls, search the DHT for providers and ask them directly,
//   and keep re-broadcasting every 30 s ("idle looping state") until the
//   block arrives, the user cancels, or the fetch deadline expires.
//
// Sessions (Sec. III-D2) scope follow-up requests for related blocks to the
// peers that answered for the root — which is precisely why passive monitors
// generally only observe requests for DAG roots.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "bitswap/message.hpp"
#include "dht/message.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace ipfsmon::bitswap {

using SessionId = std::uint64_t;
constexpr SessionId kNoSession = 0;

struct ClientConfig {
  /// v0.5+ clients probe with WANT_HAVE; pre-v0.5 clients broadcast
  /// WANT_BLOCK directly (drives the migration in paper Fig. 4).
  bool use_want_have = true;
  util::SimDuration rebroadcast_interval = 30 * util::kSecond;
  /// How long to wait for broadcast answers before querying the DHT.
  util::SimDuration provider_search_delay = 1 * util::kSecond;
  /// Patience for a directed WANT_BLOCK before trying the next candidate.
  util::SimDuration block_request_timeout = 10 * util::kSecond;
  /// Give up entirely after this long (sends CANCELs, reports failure).
  util::SimDuration fetch_timeout = 10 * util::kMinute;
  std::size_t max_providers_contacted = 5;
  // --- Countermeasure ablation knobs (paper Sec. VI-C) ---
  /// Item 3: retrieve via DHT-found providers only, never broadcast.
  bool broadcast_wants = true;
  /// Disable the 30 s re-broadcast loop (the paper notes these messages
  /// "serve little purpose, as want_lists are persisted").
  bool rebroadcast = true;
  /// Item 4: broadcast wants carry H(salt ‖ CID) instead of the plaintext
  /// CID. Monitors see unlinkable opaque values; only actual providers can
  /// resolve the request (at a per-stored-CID hashing cost). Directed
  /// requests to peers that already proved knowledge stay plaintext.
  bool salted_wants = false;
  std::size_t salt_bytes = 16;
};

struct ClientStats {
  std::uint64_t fetches_started = 0;
  std::uint64_t fetches_completed = 0;
  std::uint64_t fetches_failed = 0;
  std::uint64_t want_messages_sent = 0;
  std::uint64_t rebroadcast_rounds = 0;
  std::uint64_t provider_searches = 0;
  std::uint64_t cancels_sent = 0;
};

class BitswapClient {
 public:
  /// Block delivered (or nullptr on failure/timeout).
  using FetchCallback = std::function<void(dag::BlockPtr)>;
  /// Asynchronous provider search, wired to the node's DHT.
  using ProviderSearchFn = std::function<void(
      const cid::Cid&, std::function<void(std::vector<dht::PeerRecord>)>)>;

  BitswapClient(net::Network& network, const crypto::PeerId& self,
                ClientConfig config, ProviderSearchFn search,
                util::RngStream rng);

  /// Creates a session for scoping related fetches.
  SessionId create_session();

  /// Fetches one block. With kNoSession (or an empty session) the want is
  /// broadcast to all connected peers; within a populated session it goes
  /// to session peers only.
  void fetch(const cid::Cid& cid, SessionId session, FetchCallback on_done);

  /// User-level cancel: sends CANCEL to every peer holding our want.
  void cancel(const cid::Cid& cid);

  /// Routes the response side (presences, blocks) of an inbound message.
  void handle_response(const crypto::PeerId& from,
                       const BitswapMessage& message);

  /// New connection established: Bitswap sends the full current wantlist
  /// to the new peer — this is how late-connecting monitors still observe
  /// outstanding requests.
  void on_peer_connected(net::ConnectionId conn, const crypto::PeerId& peer);

  /// Stops all activity and fails outstanding fetches (churn-down).
  void shutdown();

  /// Re-enables the client after a shutdown (node came back online).
  void restart() { shut_down_ = false; }

  /// Switches between the v0.5+ WANT_HAVE probe and the legacy WANT_BLOCK
  /// broadcast (a client "upgrade" — drives the paper's Fig. 4 migration).
  void set_use_want_have(bool use) { config_.use_want_have = use; }
  bool use_want_have() const { return config_.use_want_have; }

  const ClientStats& stats() const { return stats_; }
  std::size_t active_fetches() const { return active_.size(); }
  bool is_fetching(const cid::Cid& cid) const { return active_.count(cid) != 0; }

  /// Peers attached to a session (HAVE responders + providers).
  std::vector<crypto::PeerId> session_peers(SessionId session) const;

 private:
  struct WantState {
    cid::Cid cid;
    SessionId session = kNoSession;
    std::vector<FetchCallback> callbacks;
    bool broadcast = true;  // broadcast vs session-scoped
    /// Peers currently holding one of our want entries (CANCEL targets).
    std::unordered_set<crypto::PeerId> told;
    /// HAVE responders not yet asked for the block.
    std::vector<crypto::PeerId> candidates;
    std::unordered_set<crypto::PeerId> candidate_set;
    std::unordered_set<crypto::PeerId> tried;
    std::optional<crypto::PeerId> block_in_flight;
    bool provider_search_running = false;
    bool done = false;
    util::SimTime started = 0;  // for the fetch-duration histogram
    /// Fetch-lifetime span (inert unless the request is traced). Its
    /// context is stamped on every outgoing want/cancel payload so
    /// monitors and responders can link their spans to this fetch.
    obs::Span span;
    /// Covers one in-flight DHT provider search (at most one at a time).
    obs::Span provider_span;
    sim::EventHandle rebroadcast_timer;
    sim::EventHandle provider_delay_timer;
    sim::EventHandle block_timeout_timer;
    sim::EventHandle deadline_timer;
  };
  using WantStatePtr = std::shared_ptr<WantState>;

  void send_want(const WantStatePtr& state, const crypto::PeerId& peer,
                 net::ConnectionId conn, WantType type, bool send_dont_have,
                 bool allow_salted = true);
  WantEntry build_entry(const cid::Cid& cid, WantType type,
                        bool send_dont_have, bool allow_salted);
  void broadcast_want(const WantStatePtr& state);
  void try_next_candidate(const WantStatePtr& state);
  void start_provider_search(const WantStatePtr& state);
  void on_rebroadcast(const WantStatePtr& state);
  // By value: both erase the state from active_ mid-function, which would
  // destroy a caller's reference into the map (e.g. cancel()'s it->second).
  void complete(WantStatePtr state, const dag::BlockPtr& block);
  void fail(WantStatePtr state);
  void send_cancels(const WantStatePtr& state);
  void arm_deadline(const WantStatePtr& state);
  void arm_rebroadcast(const WantStatePtr& state);
  std::vector<crypto::PeerId> want_targets(const WantStatePtr& state) const;

  net::Network& network_;
  crypto::PeerId self_;
  ClientConfig config_;
  ProviderSearchFn search_;
  util::RngStream rng_;

  // Network-wide obs instruments (shared across all clients on the same
  // network; grabbed once at construction, bumped inline on hot paths).
  struct Instruments {
    obs::Counter* want_messages = nullptr;
    obs::Counter* want_have = nullptr;
    obs::Counter* want_block = nullptr;
    obs::Counter* cancels = nullptr;
    obs::Counter* rebroadcast_rounds = nullptr;
    obs::Counter* fetches_started = nullptr;
    obs::Counter* fetches_completed = nullptr;
    obs::Counter* fetches_failed = nullptr;
    obs::Counter* provider_searches = nullptr;
    obs::Histogram* fetch_duration = nullptr;
  } metrics_;

  std::unordered_map<cid::Cid, WantStatePtr> active_;
  std::unordered_map<SessionId, std::unordered_set<crypto::PeerId>> sessions_;
  SessionId next_session_ = 1;
  ClientStats stats_;
  bool shut_down_ = false;
};

}  // namespace ipfsmon::bitswap
