#include "bitswap/message.hpp"

namespace ipfsmon::bitswap {

crypto::Sha256Digest salted_cid_hash(const cid::Cid& target,
                                     util::BytesView salt) {
  crypto::Sha256 ctx;
  ctx.update(salt);
  const util::Bytes encoded = target.encode();
  ctx.update(encoded);
  return ctx.finalize();
}

WantEntry make_salted_entry(const cid::Cid& target, util::Bytes salt,
                            WantType type, bool send_dont_have) {
  WantEntry entry;
  entry.type = type;
  entry.send_dont_have = send_dont_have;
  entry.salted = true;
  entry.salted_hash = salted_cid_hash(target, salt);
  entry.salt = std::move(salt);
  return entry;
}

cid::Cid opaque_cid_for(const WantEntry& salted_entry) {
  return cid::Cid(1, cid::Multicodec::Raw,
                  cid::Multihash::wrap_sha256(salted_entry.salted_hash));
}

std::string_view want_type_name(WantType type) {
  switch (type) {
    case WantType::WantHave:
      return "WANT_HAVE";
    case WantType::WantBlock:
      return "WANT_BLOCK";
    case WantType::Cancel:
      return "CANCEL";
  }
  return "UNKNOWN";
}

}  // namespace ipfsmon::bitswap
