// The fault injector: one object that drives every fault process in a
// ChurnConfig off the sim scheduler — transient-peer churn (heavy-tailed
// sessions), link faults and partition windows (delegated to net::Network),
// and monitor crash/restart (delegated to PassiveMonitor, with spill
// recovery through tracestore). Deterministic: all randomness comes from
// the RngStream handed to the constructor, so a (seed, config) pair always
// replays the same fault schedule.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "churn/churn.hpp"
#include "monitor/passive_monitor.hpp"
#include "node/ipfs_node.hpp"

namespace ipfsmon::churn {

class FaultInjector {
 public:
  FaultInjector(net::Network& network, ChurnConfig config,
                util::RngStream rng);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// CID source for transient-peer requests (e.g. the scenario catalog).
  /// Without one, transients join and leave but never request data.
  void set_request_source(std::function<cid::Cid(util::RngStream&)> source) {
    request_source_ = std::move(source);
  }

  /// Registers a monitor as a crash target. Index order defines
  /// CrashEvent::monitor_index.
  void add_monitor(monitor::PassiveMonitor* monitor) {
    monitors_.push_back(monitor);
  }

  /// Installs link faults and starts every configured fault process.
  /// `bootstrap` seeds transient joins and post-heal/post-restart redials.
  void start(std::vector<crypto::PeerId> bootstrap);

  /// Cancels all fault timers (nodes and monitors stay in their current
  /// state; link faults stay installed).
  void stop();

  const ChurnConfig& config() const { return config_; }

  // --- Ground truth / stats ----------------------------------------------
  std::uint64_t transients_spawned() const { return transients_spawned_; }
  std::uint64_t transients_retired() const { return transients_retired_; }
  std::size_t transients_online() const;
  std::uint64_t sessions_completed() const { return sessions_completed_; }
  std::uint64_t partitions_opened() const { return partitions_opened_; }
  std::uint64_t monitor_crashes() const { return monitor_crashes_; }
  std::uint64_t monitor_restarts() const { return monitor_restarts_; }
  std::uint64_t requests_issued() const { return requests_issued_; }

  /// Ids of every transient peer ever spawned (ground truth for
  /// estimator-error analyses: these peers inflate the ever-seen count
  /// relative to the concurrent network size).
  const std::vector<crypto::PeerId>& transient_ids() const {
    return transient_ids_;
  }

 private:
  struct Transient {
    std::size_t slot = 0;
    std::unique_ptr<node::IpfsNode> node;
    util::RngStream rng;
    sim::EventHandle session_timer;
    sim::EventHandle request_timer;

    Transient(std::size_t s, std::unique_ptr<node::IpfsNode> n,
              util::RngStream r)
        : slot(s), node(std::move(n)), rng(std::move(r)) {}
  };

  void schedule_arrival();
  void spawn_transient();
  void bring_online(Transient& t);
  void end_session(Transient& t);
  void retire(Transient& t);
  void schedule_request(Transient& t);

  void schedule_partition();
  void open_partition();

  void schedule_monitor_crash(std::size_t index);
  void crash_monitor(std::size_t index, util::SimDuration down_for,
                     bool reschedule);

  net::Network& network_;
  ChurnConfig config_;
  util::RngStream rng_;
  util::RngStream key_rng_;
  std::vector<crypto::PeerId> bootstrap_;
  std::function<cid::Cid(util::RngStream&)> request_source_;
  std::vector<monitor::PassiveMonitor*> monitors_;

  // Stable slots: a retired transient's slot is nulled and reused, so
  // pending lambdas can safely hold Transient* into live slots only.
  std::vector<std::unique_ptr<Transient>> transients_;
  std::vector<crypto::PeerId> transient_ids_;

  sim::EventHandle arrival_timer_;
  sim::EventHandle partition_timer_;
  std::vector<sim::EventHandle> crash_timers_;   // one per monitor (random)
  std::vector<sim::EventHandle> oneshot_timers_;  // heals, restarts, scheduled

  std::uint64_t spawn_counter_ = 0;
  std::uint64_t transients_spawned_ = 0;
  std::uint64_t transients_retired_ = 0;
  std::uint64_t sessions_completed_ = 0;
  std::uint64_t partitions_opened_ = 0;
  std::uint64_t monitor_crashes_ = 0;
  std::uint64_t monitor_restarts_ = 0;
  std::uint64_t requests_issued_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  struct Instruments {
    obs::Counter* spawns = nullptr;
    obs::Counter* sessions = nullptr;
    obs::Counter* retirements = nullptr;
    obs::Counter* partitions = nullptr;
    obs::Counter* requests = nullptr;
    obs::Gauge* online = nullptr;
  } metrics_;
};

}  // namespace ipfsmon::churn
