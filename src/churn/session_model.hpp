// Heavy-tailed session and intersession length models for the churn
// process. "Mapping the Interplanetary Filesystem" (Henningsen et al.,
// 2020) measured IPFS session lengths as strongly heavy-tailed: most
// sessions are minutes long while a fat tail stays up for days. A Weibull
// with shape < 1 (or a lognormal / Pareto) reproduces that; exponential is
// kept for the memoryless baseline the rest of the simulator already uses.
#pragma once

#include "util/rng.hpp"
#include "util/time.hpp"

namespace ipfsmon::churn {

enum class SessionDist {
  kExponential,
  kWeibull,    // shape < 1 gives the measured heavy tail
  kLogNormal,
  kPareto,
};

/// A distribution over durations, parameterised by its mean so scenarios
/// can sweep churn *rate* without re-deriving per-distribution parameters.
struct SessionModel {
  SessionDist dist = SessionDist::kWeibull;
  /// Mean duration in hours (all distributions are scaled to hit this).
  double mean_hours = 1.0;
  /// Tail parameter: Weibull shape k, Pareto alpha, lognormal sigma.
  /// Ignored for exponential.
  double shape = 0.6;
  /// Durations are clamped below at this (default 30 s): sub-second
  /// sessions would churn faster than a dial completes.
  double min_hours = 30.0 / 3600.0;

  /// Draws one duration, in hours.
  double sample_hours(util::RngStream& rng) const;

  util::SimDuration sample(util::RngStream& rng) const {
    return util::seconds(sample_hours(rng) * 3600.0);
  }
};

}  // namespace ipfsmon::churn
