#include "churn/session_model.hpp"

#include <algorithm>
#include <cmath>

namespace ipfsmon::churn {

double SessionModel::sample_hours(util::RngStream& rng) const {
  double hours = mean_hours;
  switch (dist) {
    case SessionDist::kExponential:
      hours = rng.exponential(mean_hours);
      break;
    case SessionDist::kWeibull: {
      // Inverse CDF: scale * (-ln(1-u))^(1/k), with the scale chosen so
      // the mean comes out at mean_hours: scale = mean / Gamma(1 + 1/k).
      const double k = std::max(shape, 1e-3);
      const double scale = mean_hours / std::tgamma(1.0 + 1.0 / k);
      const double u = rng.uniform();
      hours = scale * std::pow(-std::log1p(-u), 1.0 / k);
      break;
    }
    case SessionDist::kLogNormal: {
      // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
      const double sigma = std::max(shape, 1e-3);
      const double mu = std::log(mean_hours) - sigma * sigma / 2.0;
      hours = rng.lognormal(mu, sigma);
      break;
    }
    case SessionDist::kPareto: {
      // mean = xm * alpha / (alpha - 1), defined only for alpha > 1.
      const double alpha = std::max(shape, 1.001);
      const double xm = mean_hours * (alpha - 1.0) / alpha;
      hours = rng.pareto(xm, alpha);
      break;
    }
  }
  return std::max(hours, min_hours);
}

}  // namespace ipfsmon::churn
