#include "churn/injector.hpp"

#include <algorithm>
#include <unordered_set>

namespace ipfsmon::churn {

FaultInjector::FaultInjector(net::Network& network, ChurnConfig config,
                             util::RngStream rng)
    : network_(network),
      config_(std::move(config)),
      rng_(std::move(rng)),
      key_rng_(rng_.fork("keys")) {
  // The injector only exists when a fault process is wanted, so its
  // instruments can be registered eagerly without perturbing the registry
  // of fault-free runs.
  auto& reg = network_.obs().metrics;
  metrics_.spawns = &reg.counter("ipfsmon_churn_transients_spawned_total",
                                 "Transient peers spawned by the injector");
  metrics_.sessions = &reg.counter("ipfsmon_churn_sessions_total",
                                   "Transient online sessions completed");
  metrics_.retirements =
      &reg.counter("ipfsmon_churn_retirements_total",
                   "Transient peers retired for good (node destroyed)");
  metrics_.partitions = &reg.counter("ipfsmon_churn_partitions_total",
                                     "Partition windows opened");
  metrics_.requests = &reg.counter("ipfsmon_churn_requests_total",
                                   "Data requests issued by transient peers");
  metrics_.online = &reg.gauge("ipfsmon_churn_transients_online",
                               "Transient peers currently online");
}

FaultInjector::~FaultInjector() { stop(); }

void FaultInjector::start(std::vector<crypto::PeerId> bootstrap) {
  if (started_) return;
  started_ = true;
  bootstrap_ = std::move(bootstrap);
  network_.set_link_faults(config_.link);
  if (config_.nodes.arrival_rate_per_hour > 0.0) schedule_arrival();
  if (config_.partitions.rate_per_hour > 0.0) schedule_partition();
  for (const CrashEvent& ev : config_.scheduled_crashes) {
    oneshot_timers_.push_back(network_.scheduler().schedule_at(
        ev.at, [this, ev]() {
          if (stopped_) return;
          crash_monitor(ev.monitor_index, ev.down_for, /*reschedule=*/false);
        }));
  }
  if (config_.monitor_crashes.mtbf_hours > 0.0) {
    crash_timers_.resize(monitors_.size());
    for (std::size_t i = 0; i < monitors_.size(); ++i) {
      schedule_monitor_crash(i);
    }
  }
}

void FaultInjector::stop() {
  if (stopped_) return;
  stopped_ = true;
  arrival_timer_.cancel();
  partition_timer_.cancel();
  for (auto& timer : crash_timers_) timer.cancel();
  for (auto& timer : oneshot_timers_) timer.cancel();
  for (auto& t : transients_) {
    if (t == nullptr) continue;
    t->session_timer.cancel();
    t->request_timer.cancel();
  }
}

std::size_t FaultInjector::transients_online() const {
  std::size_t count = 0;
  for (const auto& t : transients_) {
    if (t != nullptr && t->node != nullptr && t->node->online()) ++count;
  }
  return count;
}

// --- Transient-peer churn ---------------------------------------------------

void FaultInjector::schedule_arrival() {
  const double hours =
      rng_.exponential(1.0 / config_.nodes.arrival_rate_per_hour);
  arrival_timer_ = network_.scheduler().schedule_after(
      util::seconds(hours * 3600.0), [this]() {
        if (stopped_) return;
        spawn_transient();
        schedule_arrival();
      });
}

void FaultInjector::spawn_transient() {
  std::size_t alive = 0;
  std::size_t free_slot = transients_.size();
  for (std::size_t i = 0; i < transients_.size(); ++i) {
    if (transients_[i] != nullptr) {
      ++alive;
    } else if (free_slot == transients_.size()) {
      free_slot = i;
    }
  }
  if (alive >= config_.nodes.max_transient) return;  // at capacity: drop

  node::NodeConfig node_config = config_.nodes.node;
  node_config.nat = rng_.bernoulli(config_.nodes.nat_share);
  node_config.dht_server = !node_config.nat;
  const std::string country = network_.geo().sample_country(rng_);
  const net::Address address = network_.geo().allocate_address(country);
  crypto::KeyPair keys = crypto::KeyPair::generate(key_rng_);

  const std::uint64_t serial = spawn_counter_++;
  auto node = std::make_unique<node::IpfsNode>(
      network_, std::move(keys), address, country, node_config,
      rng_.fork(serial * 2));
  transient_ids_.push_back(node->id());

  auto transient = std::make_unique<Transient>(free_slot, std::move(node),
                                               rng_.fork(serial * 2 + 1));
  Transient& t = *transient;
  if (free_slot == transients_.size()) {
    transients_.push_back(std::move(transient));
  } else {
    transients_[free_slot] = std::move(transient);
  }
  ++transients_spawned_;
  metrics_.spawns->inc();
  bring_online(t);
}

void FaultInjector::bring_online(Transient& t) {
  if (stopped_) return;
  t.node->go_online(bootstrap_);
  metrics_.online->set(static_cast<double>(transients_online()));
  t.session_timer = network_.scheduler().schedule_after(
      config_.nodes.session.sample(t.rng),
      [this, &t]() { end_session(t); });
  schedule_request(t);
}

void FaultInjector::end_session(Transient& t) {
  if (stopped_) return;
  t.request_timer.cancel();
  t.node->go_offline();
  ++sessions_completed_;
  metrics_.sessions->inc();
  metrics_.online->set(static_cast<double>(transients_online()));
  if (t.rng.bernoulli(config_.nodes.rejoin_probability)) {
    t.session_timer = network_.scheduler().schedule_after(
        config_.nodes.intersession.sample(t.rng),
        [this, &t]() { bring_online(t); });
  } else {
    retire(t);
  }
}

void FaultInjector::retire(Transient& t) {
  // Destroys the node (its record stays registered offline, as a vanished
  // peer's would — same idiom as Population::rotate_identity). The caller
  // must not touch `t` afterwards.
  ++transients_retired_;
  metrics_.retirements->inc();
  const std::size_t slot = t.slot;
  t.session_timer.cancel();
  t.request_timer.cancel();
  transients_[slot].reset();
}

void FaultInjector::schedule_request(Transient& t) {
  if (stopped_ || !request_source_ ||
      config_.nodes.mean_request_interval_hours <= 0.0) {
    return;
  }
  const double hours =
      t.rng.exponential(config_.nodes.mean_request_interval_hours);
  t.request_timer = network_.scheduler().schedule_after(
      util::seconds(hours * 3600.0), [this, &t]() {
        if (stopped_) return;
        if (t.node->online()) {
          const cid::Cid target = request_source_(t.rng);
          t.node->fetch(target, nullptr);
          ++requests_issued_;
          metrics_.requests->inc();
        }
        schedule_request(t);
      });
}

// --- Partition windows ------------------------------------------------------

void FaultInjector::schedule_partition() {
  const double hours = rng_.exponential(1.0 / config_.partitions.rate_per_hour);
  partition_timer_ = network_.scheduler().schedule_after(
      util::seconds(hours * 3600.0), [this]() {
        if (stopped_) return;
        open_partition();
        schedule_partition();
      });
}

void FaultInjector::open_partition() {
  // Pick 1..max_nodes distinct online public victims. Bootstrap nodes are
  // spared: they anchor every post-heal redial.
  const std::size_t want =
      1 + rng_.uniform_index(std::max<std::size_t>(
              config_.partitions.max_nodes, 1));
  std::unordered_set<crypto::PeerId> victims;
  for (std::size_t attempt = 0; attempt < want * 8 && victims.size() < want;
       ++attempt) {
    const auto id = network_.sample_online_public(rng_);
    if (!id) break;
    if (network_.isolated(*id)) continue;
    if (std::find(bootstrap_.begin(), bootstrap_.end(), *id) !=
        bootstrap_.end()) {
      continue;
    }
    victims.insert(*id);
  }
  if (victims.empty()) return;
  ++partitions_opened_;
  metrics_.partitions->inc();
  for (const auto& id : victims) network_.isolate(id);

  const double minutes =
      rng_.exponential(config_.partitions.mean_duration_minutes);
  const std::vector<crypto::PeerId> healed(victims.begin(), victims.end());
  oneshot_timers_.push_back(network_.scheduler().schedule_after(
      util::seconds(minutes * 60.0), [this, healed]() {
        if (stopped_) return;
        for (const auto& id : healed) network_.heal(id);
        // Healed nodes redial the overlay with exponential backoff — their
        // existing connections are gone and their next discovery tick may
        // be far away.
        for (const auto& id : healed) {
          if (bootstrap_.empty() || !network_.is_online(id)) continue;
          const auto& target =
              bootstrap_[rng_.uniform_index(bootstrap_.size())];
          network_.dial_with_backoff(id, target, config_.partitions.reconnect,
                                     nullptr);
        }
      }));
}

// --- Monitor crash/restart --------------------------------------------------

void FaultInjector::schedule_monitor_crash(std::size_t index) {
  const double hours = rng_.exponential(config_.monitor_crashes.mtbf_hours);
  crash_timers_[index] = network_.scheduler().schedule_after(
      util::seconds(hours * 3600.0), [this, index]() {
        if (stopped_) return;
        const double minutes =
            rng_.exponential(config_.monitor_crashes.mean_downtime_minutes);
        crash_monitor(index, util::seconds(minutes * 60.0),
                      /*reschedule=*/true);
      });
}

void FaultInjector::crash_monitor(std::size_t index,
                                  util::SimDuration down_for,
                                  bool reschedule) {
  if (index >= monitors_.size()) return;
  monitor::PassiveMonitor* monitor = monitors_[index];
  if (monitor->crashed()) return;
  monitor->crash();
  ++monitor_crashes_;
  oneshot_timers_.push_back(network_.scheduler().schedule_after(
      down_for, [this, index, monitor, reschedule]() {
        if (stopped_) return;
        monitor->restart(bootstrap_);
        ++monitor_restarts_;
        if (reschedule) schedule_monitor_crash(index);
      }));
}

}  // namespace ipfsmon::churn
