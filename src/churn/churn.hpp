// Configuration for the fault-injection layer (see injector.hpp). An
// all-default ChurnConfig is inert — enabled() is false, no injector is
// created, and runs stay byte-identical to builds without src/churn.
#pragma once

#include <cstdint>
#include <vector>

#include "churn/session_model.hpp"
#include "net/network.hpp"
#include "node/ipfs_node.hpp"

namespace ipfsmon::churn {

/// The transient-peer churn process: Poisson arrivals of short-lived nodes
/// with heavy-tailed sessions (Henningsen et al.), layered on top of the
/// scenario's base population. Transients exercise the connect/disconnect
/// paths at scale: they dial in, issue a few requests, vanish, and maybe
/// come back — the traffic shape a 15-month monitor actually sees.
struct NodeChurnConfig {
  /// Poisson arrival rate of new transient peers. 0 disables the process.
  double arrival_rate_per_hour = 0.0;
  /// Hard cap on transient peers alive at once (arrivals beyond it are
  /// dropped, keeping sweeps bounded).
  std::size_t max_transient = 256;
  /// Share of transients behind NAT (DHT clients, invisible to crawls).
  double nat_share = 0.45;
  /// Online session length (heavy-tailed per Henningsen et al.).
  SessionModel session{SessionDist::kWeibull, /*mean_hours=*/1.0,
                       /*shape=*/0.6};
  /// Offline gap before a transient rejoins.
  SessionModel intersession{SessionDist::kLogNormal, /*mean_hours=*/4.0,
                            /*shape=*/1.5};
  /// After a session ends, the peer rejoins later with this probability;
  /// otherwise it is retired for good (its node is destroyed).
  double rejoin_probability = 0.6;
  /// Poisson data requests per online transient (needs a request source on
  /// the injector; 0 or no source = transients never request).
  double mean_request_interval_hours = 1.0;
  /// Base node behaviour for transients (the study wires in the population
  /// member defaults).
  node::NodeConfig node;
};

/// Partition windows: every so often a few public nodes are hard-isolated
/// (net::Network::isolate) for a while, then healed; healed nodes redial
/// the overlay with exponential backoff.
struct PartitionConfig {
  /// Poisson rate of partition windows. 0 disables the process.
  double rate_per_hour = 0.0;
  double mean_duration_minutes = 5.0;
  /// Each window isolates 1..max_nodes distinct online public nodes.
  std::size_t max_nodes = 4;
  /// Reconnection discipline after heal().
  net::BackoffPolicy reconnect;
};

/// Random monitor crash/restart process (scheduled crashes can be added
/// independently via ChurnConfig::scheduled_crashes).
struct MonitorCrashConfig {
  /// Mean time between failures per monitor. 0 disables random crashes.
  double mtbf_hours = 0.0;
  double mean_downtime_minutes = 10.0;
};

/// One deterministic, pre-planned monitor crash.
struct CrashEvent {
  std::size_t monitor_index = 0;
  util::SimTime at = 0;
  util::SimDuration down_for = 10 * util::kMinute;
};

struct ChurnConfig {
  NodeChurnConfig nodes;
  net::LinkFaultProfile link;
  PartitionConfig partitions;
  MonitorCrashConfig monitor_crashes;
  std::vector<CrashEvent> scheduled_crashes;

  bool enabled() const {
    return nodes.arrival_rate_per_hour > 0.0 || link.active() ||
           partitions.rate_per_hour > 0.0 || monitor_crashes.mtbf_hours > 0.0 ||
           !scheduled_crashes.empty();
  }
};

}  // namespace ipfsmon::churn
