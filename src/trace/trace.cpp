#include "trace/trace.hpp"

#include <algorithm>
#include <unordered_set>

namespace ipfsmon::trace {

void Trace::sort_by_time() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
}

void Trace::merge_from(const Trace& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

void StatsAccumulator::add(const TraceEntry& e) {
  ++stats_.total;
  if (e.is_request()) {
    ++stats_.requests;
  } else {
    ++stats_.cancels;
  }
  if (e.is_duplicate()) ++stats_.inter_monitor_duplicates;
  if (e.is_rebroadcast()) ++stats_.rebroadcasts;
  if (e.is_clean()) ++stats_.clean;
  peers_.insert(e.peer);
  cids_.insert(e.cid);
}

TraceStats StatsAccumulator::stats() const {
  TraceStats stats = stats_;
  stats.unique_peers = peers_.size();
  stats.unique_cids = cids_.size();
  return stats;
}

TraceStats compute_stats(const Trace& trace) {
  StatsAccumulator acc;
  for (const auto& e : trace.entries()) acc.add(e);
  return acc.stats();
}

}  // namespace ipfsmon::trace
