#include "trace/trace.hpp"

#include <algorithm>
#include <unordered_set>

namespace ipfsmon::trace {

void Trace::sort_by_time() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
}

void Trace::merge_from(const Trace& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  std::unordered_set<crypto::PeerId> peers;
  std::unordered_set<cid::Cid> cids;
  for (const auto& e : trace.entries()) {
    ++stats.total;
    if (e.is_request()) {
      ++stats.requests;
    } else {
      ++stats.cancels;
    }
    if (e.is_duplicate()) ++stats.inter_monitor_duplicates;
    if (e.is_rebroadcast()) ++stats.rebroadcasts;
    if (e.is_clean()) ++stats.clean;
    peers.insert(e.peer);
    cids.insert(e.cid);
  }
  stats.unique_peers = peers.size();
  stats.unique_cids = cids.size();
  return stats;
}

}  // namespace ipfsmon::trace
