#include "trace/preprocess.hpp"

#include <unordered_map>

namespace ipfsmon::trace {

namespace {
/// Key identifying "the same logical want entry": source, type, CID.
struct WantKey {
  crypto::PeerId peer;
  bitswap::WantType type;
  cid::Cid cid;

  bool operator==(const WantKey&) const = default;
};

struct WantKeyHash {
  std::size_t operator()(const WantKey& k) const noexcept {
    const std::size_t h1 = std::hash<crypto::PeerId>{}(k.peer);
    const std::size_t h2 = std::hash<cid::Cid>{}(k.cid);
    return h1 ^ (h2 * 0x9e3779b97f4a7c15ull) ^
           static_cast<std::size_t>(k.type);
  }
};
}  // namespace

void mark_flags(Trace& unified, const PreprocessOptions& options) {
  // Last time this key was seen per monitor. Entries arrive time-sorted,
  // so a single forward pass with per-key state suffices.
  std::unordered_map<WantKey, std::unordered_map<MonitorId, util::SimTime>,
                     WantKeyHash>
      last_seen;

  for (auto& entry : unified.entries()) {
    entry.flags = 0;
    const WantKey key{entry.peer, entry.type, entry.cid};
    auto& per_monitor = last_seen[key];

    for (const auto& [monitor, when] : per_monitor) {
      const util::SimDuration delta = entry.timestamp - when;
      if (monitor == entry.monitor) {
        if (delta <= options.rebroadcast_window) {
          entry.flags |= kRebroadcast;
        }
      } else {
        if (delta <= options.inter_monitor_window) {
          entry.flags |= kInterMonitorDuplicate;
        }
      }
    }
    per_monitor[entry.monitor] = entry.timestamp;
  }
}

Trace unify(const std::vector<const Trace*>& monitor_traces,
            const PreprocessOptions& options) {
  Trace unified;
  for (const Trace* t : monitor_traces) {
    if (t != nullptr) unified.merge_from(*t);
  }
  unified.sort_by_time();
  mark_flags(unified, options);
  return unified;
}

double rebroadcast_share(const Trace& unified) {
  std::size_t requests = 0;
  std::size_t rebroadcasts = 0;
  for (const auto& e : unified.entries()) {
    if (!e.is_request()) continue;
    ++requests;
    if (e.is_rebroadcast()) ++rebroadcasts;
  }
  return requests == 0 ? 0.0
                       : static_cast<double>(rebroadcasts) /
                             static_cast<double>(requests);
}

}  // namespace ipfsmon::trace
