// Trace model: the (timestamp, node_ID, address, request_type, CID, flags)
// tuples the monitoring methodology produces (paper Sec. IV-A/IV-B).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "bitswap/message.hpp"
#include "cid/cid.hpp"
#include "crypto/keys.hpp"
#include "net/address.hpp"
#include "util/time.hpp"

namespace ipfsmon::trace {

/// Identifies which monitor recorded an entry ("us", "de", ...).
using MonitorId = std::uint32_t;

/// Flags attached during preprocessing (paper Sec. IV-B).
enum TraceFlags : std::uint32_t {
  /// Same (peer, type, CID) seen by a *different* monitor within 5 s —
  /// the same broadcast reached several monitors.
  kInterMonitorDuplicate = 1u << 0,
  /// Same (peer, type, CID) seen by the *same* monitor within 31 s —
  /// Bitswap's 30 s re-broadcast loop.
  kRebroadcast = 1u << 1,
};

struct TraceEntry {
  util::SimTime timestamp = 0;
  crypto::PeerId peer;
  net::Address address;
  bitswap::WantType type = bitswap::WantType::WantHave;
  cid::Cid cid;
  MonitorId monitor = 0;
  std::uint32_t flags = 0;

  bool is_duplicate() const { return (flags & kInterMonitorDuplicate) != 0; }
  bool is_rebroadcast() const { return (flags & kRebroadcast) != 0; }
  /// True for entries the deduplicated analyses keep.
  bool is_clean() const { return flags == 0; }
  /// Requests are WANT_HAVE/WANT_BLOCK; CANCELs are tracked but are not
  /// data requests.
  bool is_request() const { return type != bitswap::WantType::Cancel; }
};

/// A flat, append-only sequence of trace entries.
class Trace {
 public:
  Trace() = default;

  void append(TraceEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::vector<TraceEntry>& entries() { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Stable-sorts by timestamp (stable: preserves arrival order of
  /// same-tick events).
  void sort_by_time();

  /// Appends all entries of `other`.
  void merge_from(const Trace& other);

  /// Entries passing a predicate, copied into a new trace.
  template <typename Pred>
  Trace filter(Pred&& pred) const {
    Trace out;
    for (const auto& e : entries_) {
      if (pred(e)) out.append(e);
    }
    return out;
  }

  /// Convenience: entries with no duplicate/re-broadcast flags.
  Trace deduplicated() const {
    return filter([](const TraceEntry& e) { return e.is_clean(); });
  }

 private:
  std::vector<TraceEntry> entries_;
};

/// Summary counters used by several analyses and tests.
struct TraceStats {
  std::size_t total = 0;
  std::size_t requests = 0;  // WANT_HAVE + WANT_BLOCK
  std::size_t cancels = 0;
  std::size_t inter_monitor_duplicates = 0;
  std::size_t rebroadcasts = 0;
  std::size_t clean = 0;
  std::size_t unique_peers = 0;
  std::size_t unique_cids = 0;
};

TraceStats compute_stats(const Trace& trace);

/// Incremental TraceStats, for streaming consumers that never materialize
/// the trace (memory is O(unique peers + unique CIDs), not O(entries)).
class StatsAccumulator {
 public:
  void add(const TraceEntry& entry);
  TraceStats stats() const;

 private:
  TraceStats stats_;
  std::unordered_set<crypto::PeerId> peers_;
  std::unordered_set<cid::Cid> cids_;
};

}  // namespace ipfsmon::trace
