// Trace unification and duplicate marking (paper Sec. IV-B):
//
//  * entries received by *different* monitors are considered the same
//    broadcast if (peer, type, CID) match and timestamps differ ≤ 5 s
//    → all but the earliest are flagged kInterMonitorDuplicate;
//  * entries repeated at the *same* monitor for the same (peer, type, CID)
//    within 31 s are Bitswap's 30 s re-broadcast loop
//    → flagged kRebroadcast (>50% of raw entries in the paper's data).
//
// Both windows are configurable; the defaults match the paper.
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace ipfsmon::trace {

struct PreprocessOptions {
  util::SimDuration inter_monitor_window = 5 * util::kSecond;
  util::SimDuration rebroadcast_window = 31 * util::kSecond;
};

/// Merges per-monitor traces into one time-sorted trace and marks
/// duplicates and re-broadcasts in place.
Trace unify(const std::vector<const Trace*>& monitor_traces,
            const PreprocessOptions& options = {});

/// Marks flags on an already-merged, time-sorted trace (exposed for tests
/// and for re-flagging loaded traces).
void mark_flags(Trace& unified, const PreprocessOptions& options = {});

/// Fraction of request entries flagged as re-broadcasts (the paper reports
/// > 50% for its raw traces).
double rebroadcast_share(const Trace& unified);

}  // namespace ipfsmon::trace
