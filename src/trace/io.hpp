// Trace serialization: a human-readable CSV form and a compact binary form
// (the paper's 15-month study produced 3.5 TB of compressed traces; the
// binary writer is the storage-conscious path).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "trace/trace.hpp"

namespace ipfsmon::trace {

/// CSV with header: timestamp_ns,peer,address,type,cid,monitor,flags
void write_csv(std::ostream& out, const Trace& trace);

/// Parses the CSV form; nullopt on malformed input.
std::optional<Trace> read_csv(std::istream& in);

/// Compact binary encoding (magic + varint-packed records).
void write_binary(std::ostream& out, const Trace& trace);

/// Parses the binary form; nullopt on malformed input.
std::optional<Trace> read_binary(std::istream& in);

/// Dictionary-compressed binary encoding (v2): peers, addresses and CIDs
/// are interned into front-loaded dictionaries and entries reference them
/// by index, with zig-zag delta-coded timestamps. Long traces repeat the
/// same few thousand peers/CIDs constantly, so this typically shrinks the
/// plain binary form several-fold — the practical answer to the paper's
/// 3.5 TB of compressed traces.
void write_binary_compact(std::ostream& out, const Trace& trace);

/// Parses the v2 compact form; nullopt on malformed input.
std::optional<Trace> read_binary_compact(std::istream& in);

/// Why a load returned nullopt. The loaders historically collapsed "file
/// missing" and "corrupt data" into the same nullopt; callers that care
/// pass the out-channel and report which case they hit.
enum class LoadError {
  kNone,        // load succeeded
  kFileMissing, // no such file
  kOpenFailed,  // file exists but cannot be opened (permissions, ...)
  kCorrupt,     // opened fine, but no supported format parses it
};

std::string_view load_error_name(LoadError error);

bool save_binary_compact(const std::string& path, const Trace& trace);
std::optional<Trace> load_binary_compact(const std::string& path,
                                         LoadError* error = nullptr);

/// Loads any supported format (compact binary, plain binary, then CSV).
std::optional<Trace> load_any(const std::string& path,
                              LoadError* error = nullptr);

/// Convenience file round-trips. Return false / nullopt on IO failure.
bool save_csv(const std::string& path, const Trace& trace);
std::optional<Trace> load_csv(const std::string& path,
                              LoadError* error = nullptr);
bool save_binary(const std::string& path, const Trace& trace);
std::optional<Trace> load_binary(const std::string& path,
                                 LoadError* error = nullptr);

}  // namespace ipfsmon::trace
