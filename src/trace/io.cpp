#include "trace/io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/strings.hpp"
#include "util/varint.hpp"

namespace ipfsmon::trace {

namespace {
constexpr char kCsvHeader[] = "timestamp_ns,peer,address,type,cid,monitor,flags";
constexpr std::uint32_t kBinaryMagic = 0x49504d54;  // "IPMT"

std::optional<bitswap::WantType> type_from_name(std::string_view name) {
  if (name == "WANT_HAVE") return bitswap::WantType::WantHave;
  if (name == "WANT_BLOCK") return bitswap::WantType::WantBlock;
  if (name == "CANCEL") return bitswap::WantType::Cancel;
  return std::nullopt;
}
}  // namespace

void write_csv(std::ostream& out, const Trace& trace) {
  out << kCsvHeader << '\n';
  for (const auto& e : trace.entries()) {
    out << e.timestamp << ',' << e.peer.to_base58() << ','
        << e.address.to_string() << ','
        << bitswap::want_type_name(e.type) << ',' << e.cid.to_string() << ','
        << e.monitor << ',' << e.flags << '\n';
  }
}

std::optional<Trace> read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kCsvHeader) return std::nullopt;
  Trace trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::split(line, ',');
    if (fields.size() != 7) return std::nullopt;
    TraceEntry entry;
    try {
      entry.timestamp = std::stoll(fields[0]);
      entry.monitor = static_cast<MonitorId>(std::stoul(fields[5]));
      entry.flags = static_cast<std::uint32_t>(std::stoul(fields[6]));
    } catch (const std::exception&) {
      return std::nullopt;
    }
    const auto peer = crypto::PeerId::from_base58(fields[1]);
    const auto address = net::Address::from_string(fields[2]);
    const auto type = type_from_name(fields[3]);
    const auto cid = cid::Cid::from_string(fields[4]);
    if (!peer || !address || !type || !cid) return std::nullopt;
    entry.peer = *peer;
    entry.address = *address;
    entry.type = *type;
    entry.cid = *cid;
    trace.append(std::move(entry));
  }
  return trace;
}

void write_binary(std::ostream& out, const Trace& trace) {
  util::Bytes buffer;
  util::varint_append(buffer, kBinaryMagic);
  util::varint_append(buffer, trace.size());
  for (const auto& e : trace.entries()) {
    util::varint_append(buffer, static_cast<std::uint64_t>(e.timestamp));
    buffer.insert(buffer.end(), e.peer.digest().begin(), e.peer.digest().end());
    util::varint_append(buffer, e.address.ip);
    util::varint_append(buffer, e.address.port);
    util::varint_append(buffer, static_cast<std::uint64_t>(e.type));
    const util::Bytes cid_bytes = e.cid.encode();
    util::varint_append(buffer, cid_bytes.size());
    buffer.insert(buffer.end(), cid_bytes.begin(), cid_bytes.end());
    util::varint_append(buffer, e.monitor);
    util::varint_append(buffer, e.flags);
  }
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
}

std::optional<Trace> read_binary(std::istream& in) {
  std::ostringstream collected;
  collected << in.rdbuf();
  const std::string data = collected.str();
  util::BytesView view(reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size());
  std::size_t pos = 0;
  auto read_varint = [&]() -> std::optional<std::uint64_t> {
    const auto v = util::varint_decode(view.subspan(pos));
    if (!v) return std::nullopt;
    pos += v->consumed;
    return v->value;
  };

  const auto magic = read_varint();
  if (!magic || *magic != kBinaryMagic) return std::nullopt;
  const auto count = read_varint();
  if (!count) return std::nullopt;

  Trace trace;
  for (std::uint64_t i = 0; i < *count; ++i) {
    TraceEntry entry;
    const auto ts = read_varint();
    if (!ts) return std::nullopt;
    entry.timestamp = static_cast<util::SimTime>(*ts);
    if (pos + 32 > view.size()) return std::nullopt;
    crypto::PeerId::Digest digest;
    std::copy(view.begin() + static_cast<std::ptrdiff_t>(pos),
              view.begin() + static_cast<std::ptrdiff_t>(pos + 32),
              digest.begin());
    entry.peer = crypto::PeerId(digest);
    pos += 32;
    const auto ip = read_varint();
    const auto port = read_varint();
    const auto type = read_varint();
    if (!ip || !port || !type || *type > 2) return std::nullopt;
    entry.address = net::Address{static_cast<std::uint32_t>(*ip),
                                 static_cast<std::uint16_t>(*port)};
    entry.type = static_cast<bitswap::WantType>(*type);
    const auto cid_len = read_varint();
    if (!cid_len || pos + *cid_len > view.size()) return std::nullopt;
    const auto cid = cid::Cid::decode(view.subspan(pos, *cid_len));
    if (!cid) return std::nullopt;
    entry.cid = *cid;
    pos += *cid_len;
    const auto monitor = read_varint();
    const auto flags = read_varint();
    if (!monitor || !flags) return std::nullopt;
    entry.monitor = static_cast<MonitorId>(*monitor);
    entry.flags = static_cast<std::uint32_t>(*flags);
    trace.append(std::move(entry));
  }
  return trace;
}

namespace {
constexpr std::uint32_t kCompactMagic = 0x49504d32;  // "IPM2"

std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}
}  // namespace

void write_binary_compact(std::ostream& out, const Trace& trace) {
  // Intern peers, addresses and CIDs in order of first appearance.
  std::unordered_map<crypto::PeerId, std::uint64_t> peer_index;
  std::vector<const crypto::PeerId*> peers;
  std::unordered_map<net::Address, std::uint64_t> addr_index;
  std::vector<net::Address> addrs;
  std::unordered_map<cid::Cid, std::uint64_t> cid_index;
  std::vector<const cid::Cid*> cids;
  for (const auto& e : trace.entries()) {
    if (peer_index.emplace(e.peer, peers.size()).second) {
      peers.push_back(&e.peer);
    }
    if (addr_index.emplace(e.address, addrs.size()).second) {
      addrs.push_back(e.address);
    }
    if (cid_index.emplace(e.cid, cids.size()).second) {
      cids.push_back(&e.cid);
    }
  }

  util::Bytes buffer;
  util::varint_append(buffer, kCompactMagic);
  util::varint_append(buffer, trace.size());

  util::varint_append(buffer, peers.size());
  for (const auto* peer : peers) {
    buffer.insert(buffer.end(), peer->digest().begin(), peer->digest().end());
  }
  util::varint_append(buffer, addrs.size());
  for (const auto& addr : addrs) {
    util::varint_append(buffer, addr.ip);
    util::varint_append(buffer, addr.port);
  }
  util::varint_append(buffer, cids.size());
  for (const auto* c : cids) {
    const util::Bytes encoded = c->encode();
    util::varint_append(buffer, encoded.size());
    buffer.insert(buffer.end(), encoded.begin(), encoded.end());
  }

  util::SimTime previous = 0;
  for (const auto& e : trace.entries()) {
    util::varint_append(buffer, zigzag_encode(e.timestamp - previous));
    previous = e.timestamp;
    util::varint_append(buffer, peer_index.at(e.peer));
    util::varint_append(buffer, addr_index.at(e.address));
    util::varint_append(buffer, cid_index.at(e.cid));
    // type (2 bits) | monitor (shifted) fit one varint; flags another.
    util::varint_append(buffer, static_cast<std::uint64_t>(e.type) |
                                    (static_cast<std::uint64_t>(e.monitor) << 2));
    util::varint_append(buffer, e.flags);
  }
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
}

std::optional<Trace> read_binary_compact(std::istream& in) {
  std::ostringstream collected;
  collected << in.rdbuf();
  const std::string data = collected.str();
  util::BytesView view(reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size());
  std::size_t pos = 0;
  auto read_varint = [&]() -> std::optional<std::uint64_t> {
    const auto v = util::varint_decode(view.subspan(pos));
    if (!v) return std::nullopt;
    pos += v->consumed;
    return v->value;
  };

  const auto magic = read_varint();
  if (!magic || *magic != kCompactMagic) return std::nullopt;
  const auto count = read_varint();
  if (!count) return std::nullopt;

  const auto peer_count = read_varint();
  if (!peer_count) return std::nullopt;
  std::vector<crypto::PeerId> peers;
  peers.reserve(*peer_count);
  for (std::uint64_t i = 0; i < *peer_count; ++i) {
    if (pos + 32 > view.size()) return std::nullopt;
    crypto::PeerId::Digest digest;
    std::copy(view.begin() + static_cast<std::ptrdiff_t>(pos),
              view.begin() + static_cast<std::ptrdiff_t>(pos + 32),
              digest.begin());
    peers.emplace_back(digest);
    pos += 32;
  }

  const auto addr_count = read_varint();
  if (!addr_count) return std::nullopt;
  std::vector<net::Address> addrs;
  addrs.reserve(*addr_count);
  for (std::uint64_t i = 0; i < *addr_count; ++i) {
    const auto ip = read_varint();
    const auto port = read_varint();
    if (!ip || !port || *port > 65535) return std::nullopt;
    addrs.push_back(net::Address{static_cast<std::uint32_t>(*ip),
                                 static_cast<std::uint16_t>(*port)});
  }

  const auto cid_count = read_varint();
  if (!cid_count) return std::nullopt;
  std::vector<cid::Cid> cids;
  cids.reserve(*cid_count);
  for (std::uint64_t i = 0; i < *cid_count; ++i) {
    const auto len = read_varint();
    if (!len || pos + *len > view.size()) return std::nullopt;
    const auto parsed = cid::Cid::decode(view.subspan(pos, *len));
    if (!parsed) return std::nullopt;
    cids.push_back(*parsed);
    pos += *len;
  }

  Trace trace;
  util::SimTime previous = 0;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto delta = read_varint();
    const auto peer = read_varint();
    const auto addr = read_varint();
    const auto cid_ref = read_varint();
    const auto type_monitor = read_varint();
    const auto flags = read_varint();
    if (!delta || !peer || !addr || !cid_ref || !type_monitor || !flags) {
      return std::nullopt;
    }
    if (*peer >= peers.size() || *addr >= addrs.size() ||
        *cid_ref >= cids.size() || (*type_monitor & 0x3) > 2) {
      return std::nullopt;
    }
    TraceEntry e;
    e.timestamp = previous + zigzag_decode(*delta);
    previous = e.timestamp;
    e.peer = peers[*peer];
    e.address = addrs[*addr];
    e.cid = cids[*cid_ref];
    e.type = static_cast<bitswap::WantType>(*type_monitor & 0x3);
    e.monitor = static_cast<MonitorId>(*type_monitor >> 2);
    e.flags = static_cast<std::uint32_t>(*flags);
    trace.append(std::move(e));
  }
  return trace;
}

namespace {
/// Distinguishes "file missing" from other open failures for the loaders'
/// error out-channel.
LoadError classify_open_failure(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) ? LoadError::kOpenFailed
                                           : LoadError::kFileMissing;
}

void set_error(LoadError* out, LoadError error) {
  if (out != nullptr) *out = error;
}
}  // namespace

std::string_view load_error_name(LoadError error) {
  switch (error) {
    case LoadError::kNone: return "ok";
    case LoadError::kFileMissing: return "file missing";
    case LoadError::kOpenFailed: return "cannot open file";
    case LoadError::kCorrupt: return "corrupt or unsupported format";
  }
  return "unknown";
}

bool save_binary_compact(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_binary_compact(out, trace);
  return static_cast<bool>(out);
}

std::optional<Trace> load_binary_compact(const std::string& path,
                                         LoadError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, classify_open_failure(path));
    return std::nullopt;
  }
  auto trace = read_binary_compact(in);
  set_error(error, trace ? LoadError::kNone : LoadError::kCorrupt);
  return trace;
}

std::optional<Trace> load_any(const std::string& path, LoadError* error) {
  LoadError first;
  if (auto t = load_binary_compact(path, &first)) {
    set_error(error, LoadError::kNone);
    return t;
  }
  if (first != LoadError::kCorrupt) {
    // Missing/unopenable for one loader is missing for all of them.
    set_error(error, first);
    return std::nullopt;
  }
  if (auto t = load_binary(path)) {
    set_error(error, LoadError::kNone);
    return t;
  }
  auto t = load_csv(path);
  set_error(error, t ? LoadError::kNone : LoadError::kCorrupt);
  return t;
}

bool save_csv(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out, trace);
  return static_cast<bool>(out);
}

std::optional<Trace> load_csv(const std::string& path, LoadError* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, classify_open_failure(path));
    return std::nullopt;
  }
  auto trace = read_csv(in);
  set_error(error, trace ? LoadError::kNone : LoadError::kCorrupt);
  return trace;
}

bool save_binary(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_binary(out, trace);
  return static_cast<bool>(out);
}

std::optional<Trace> load_binary(const std::string& path, LoadError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, classify_open_failure(path));
    return std::nullopt;
  }
  auto trace = read_binary(in);
  set_error(error, trace ? LoadError::kNone : LoadError::kCorrupt);
  return trace;
}

}  // namespace ipfsmon::trace
