// A DHT crawler in the style of the authors' earlier works ("Crawling the
// IPFS network"): starting from seeds, repeatedly FIND_NODE every discovered
// server to enumerate routing tables. By construction it can only see DHT
// *servers* — client nodes never appear in k-buckets — and it also counts
// proposed-but-unreachable peers, both biases the paper discusses when
// comparing crawl-based and monitor-based size estimates (Sec. V-C).
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "dht/key.hpp"
#include "dht/message.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace ipfsmon::dht {

struct CrawlResult {
  /// Every peer id learned from any routing table (incl. unreachable ones —
  /// real crawls overcount this way).
  std::unordered_set<crypto::PeerId> discovered;
  /// Peers that answered at least one crawl RPC.
  std::unordered_set<crypto::PeerId> responsive;
  std::uint64_t rpcs_sent = 0;
};

struct CrawlerConfig {
  /// Random FIND_NODE targets issued per crawled peer. More targets see
  /// more of each routing table.
  std::size_t queries_per_peer = 8;
  std::size_t max_in_flight = 64;
  util::SimDuration rpc_timeout = 10 * util::kSecond;
};

/// One-shot crawler. Registers itself as a (non-NAT'd) node, crawls, then
/// reports. Construct a fresh instance per crawl.
class DhtCrawler : public net::Host {
 public:
  DhtCrawler(net::Network& network, const crypto::PeerId& self,
             const net::Address& address, const std::string& country,
             CrawlerConfig config, util::RngStream rng);

  /// Crawls outward from `seeds`; `on_done` fires when the frontier drains.
  void crawl(const std::vector<crypto::PeerId>& seeds,
             std::function<void(CrawlResult)> on_done);

  // net::Host — the crawler accepts inbound connections (it looks like a
  // normal node) but only processes replies.
  bool accept_inbound(const crypto::PeerId& from) override;
  void on_connection(net::ConnectionId conn, const crypto::PeerId& peer,
                     bool outbound) override;
  void on_disconnect(net::ConnectionId conn, const crypto::PeerId& peer) override;
  void on_message(net::ConnectionId conn, const crypto::PeerId& from,
                  const net::PayloadPtr& payload) override;

 private:
  void enqueue(const crypto::PeerId& peer);
  void pump();
  void query(const crypto::PeerId& peer, const Key& target);
  void on_reply(const crypto::PeerId& peer, const DhtMessage* reply);
  void maybe_finish();

  net::Network& network_;
  crypto::PeerId self_;
  CrawlerConfig config_;
  util::RngStream rng_;

  std::vector<crypto::PeerId> frontier_;
  std::unordered_set<crypto::PeerId> queried_;
  CrawlResult result_;
  std::function<void(CrawlResult)> on_done_;

  struct Pending {
    sim::EventHandle timeout;
    crypto::PeerId peer;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_request_id_ = 1;
  bool started_ = false;
};

}  // namespace ipfsmon::dht
