// Kademlia routing table: 256 k-buckets of DHT *server* peers, bucketed by
// common-prefix length with the local key. DHT clients are never inserted
// (paper Sec. III-A) — which is exactly why crawls cannot enumerate them.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <vector>

#include "dht/key.hpp"

namespace ipfsmon::dht {

constexpr std::size_t kBucketSize = 20;  // Kademlia k

class RoutingTable {
 public:
  RoutingTable(const crypto::PeerId& self, std::size_t bucket_size = kBucketSize);

  /// Inserts or refreshes a server peer. Returns false if the bucket was
  /// full (classic Kademlia would ping the LRU entry; we keep it).
  bool add(const crypto::PeerId& peer);

  void remove(const crypto::PeerId& peer);

  bool contains(const crypto::PeerId& peer) const;

  /// The `count` peers closest to `target` under the XOR metric.
  std::vector<crypto::PeerId> closest(const Key& target,
                                      std::size_t count) const;

  /// All peers currently in any bucket.
  std::vector<crypto::PeerId> all_peers() const;

  std::size_t size() const { return size_; }

  /// Index of the lowest-index empty/under-full bucket, used by the
  /// refresh cycle to pick lookup targets. -1 if all sampled full.
  int least_full_bucket() const;

 private:
  int bucket_index(const crypto::PeerId& peer) const;

  crypto::PeerId self_;
  Key self_key_;
  std::size_t bucket_size_;
  std::size_t size_ = 0;
  // Bucket i holds peers whose common prefix with self is exactly i bits
  // (i clamped to 255). MRU at the front.
  std::vector<std::list<crypto::PeerId>> buckets_;
};

}  // namespace ipfsmon::dht
