#include "dht/routing_table.hpp"

#include <algorithm>

namespace ipfsmon::dht {

RoutingTable::RoutingTable(const crypto::PeerId& self, std::size_t bucket_size)
    : self_(self), self_key_(key_of(self)), bucket_size_(bucket_size),
      buckets_(256) {}

int RoutingTable::bucket_index(const crypto::PeerId& peer) const {
  const int cpl = common_prefix_length(self_key_, key_of(peer));
  return std::min(cpl, 255);
}

bool RoutingTable::add(const crypto::PeerId& peer) {
  if (peer == self_) return false;
  auto& bucket = buckets_[static_cast<std::size_t>(bucket_index(peer))];
  const auto it = std::find(bucket.begin(), bucket.end(), peer);
  if (it != bucket.end()) {
    bucket.splice(bucket.begin(), bucket, it);  // refresh to MRU
    return true;
  }
  if (bucket.size() >= bucket_size_) return false;
  bucket.push_front(peer);
  ++size_;
  return true;
}

void RoutingTable::remove(const crypto::PeerId& peer) {
  auto& bucket = buckets_[static_cast<std::size_t>(bucket_index(peer))];
  const auto it = std::find(bucket.begin(), bucket.end(), peer);
  if (it != bucket.end()) {
    bucket.erase(it);
    --size_;
  }
}

bool RoutingTable::contains(const crypto::PeerId& peer) const {
  const auto& bucket = buckets_[static_cast<std::size_t>(bucket_index(peer))];
  return std::find(bucket.begin(), bucket.end(), peer) != bucket.end();
}

std::vector<crypto::PeerId> RoutingTable::closest(const Key& target,
                                                  std::size_t count) const {
  std::vector<crypto::PeerId> peers = all_peers();
  std::sort(peers.begin(), peers.end(),
            [&target](const crypto::PeerId& a, const crypto::PeerId& b) {
              return closer(key_of(a), key_of(b), target);
            });
  if (peers.size() > count) peers.resize(count);
  return peers;
}

std::vector<crypto::PeerId> RoutingTable::all_peers() const {
  std::vector<crypto::PeerId> peers;
  peers.reserve(size_);
  for (const auto& bucket : buckets_) {
    peers.insert(peers.end(), bucket.begin(), bucket.end());
  }
  return peers;
}

int RoutingTable::least_full_bucket() const {
  // Only the first few buckets are realistically fillable (bucket i needs
  // peers sharing an i-bit prefix); scan a small prefix of the table.
  for (int i = 0; i < 16; ++i) {
    if (buckets_[static_cast<std::size_t>(i)].size() < bucket_size_) return i;
  }
  return -1;
}

}  // namespace ipfsmon::dht
