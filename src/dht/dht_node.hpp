// The Kademlia DHT participant: routing-table maintenance, iterative
// FIND_NODE lookups (alpha-parallel), provider records, and the DHT
// server/client distinction from paper Sec. III-A. A DhtNode is owned by an
// IpfsNode (or monitor), which forwards inbound DhtMessages to it.
//
// An IPFS-faithful side effect matters here: connections opened to serve
// DHT lookups are ordinary overlay connections and *persist*. This is how
// nodes end up with far more connections than their k-buckets hold — the
// property the paper's monitoring approach exploits.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "dht/message.hpp"
#include "dht/provider_store.hpp"
#include "dht/routing_table.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace ipfsmon::dht {

struct DhtConfig {
  bool server_mode = true;
  std::size_t bucket_size = kBucketSize;
  std::size_t alpha = 3;  // lookup parallelism
  std::size_t k = 20;     // closest-set size
  util::SimDuration rpc_timeout = 10 * util::kSecond;
  util::SimDuration refresh_interval = 10 * util::kMinute;
  util::SimDuration provider_ttl = 24 * util::kHour;
};

class DhtNode {
 public:
  using LookupCallback = std::function<void(std::vector<PeerRecord>)>;

  DhtNode(net::Network& network, const crypto::PeerId& self, DhtConfig config,
          util::RngStream rng);

  /// Starts the periodic refresh cycle. Call when the owner comes online.
  void start();

  /// Cancels timers and fails all pending queries. Call on churn-down.
  void stop();

  bool running() const { return running_; }
  bool is_server() const { return config_.server_mode; }
  const crypto::PeerId& self() const { return self_; }

  /// Dials the seeds and performs a self-lookup to populate the table.
  void bootstrap(const std::vector<crypto::PeerId>& seeds);

  /// Out-of-band insertion of a peer known to be a DHT server — used to
  /// seed remote monitors into bootstrap tables in sharded runs (DESIGN.md
  /// Sec. 12). From there records spread via FIND_NODE like any other.
  void learn_server(const crypto::PeerId& peer);

  /// Inbound DHT message from the owning host's demultiplexer.
  void handle_message(net::ConnectionId conn, const crypto::PeerId& from,
                      const DhtMessage& msg);

  /// A connection closed; drop the peer from the routing table if present
  /// only transiently. (Kademlia keeps entries across disconnects; we only
  /// remove on RPC failure.)
  void on_peer_disconnected(const crypto::PeerId& peer);

  /// Iterative lookup of the k closest reachable servers to `target`.
  void find_closest(const Key& target, LookupCallback on_done);

  /// Looks up providers for a CID. Yields every provider record learned by
  /// the time the lookup converges (possibly empty).
  void find_providers(const cid::Cid& content, LookupCallback on_done);

  /// Announces the owner as provider of `content` to the k closest servers.
  /// `address` is the owner's dialable address, stored in the records.
  void provide(const cid::Cid& content, const net::Address& address);

  RoutingTable& routing_table() { return table_; }
  const RoutingTable& routing_table() const { return table_; }
  ProviderStore& providers() { return provider_store_; }

  /// Lookup statistics for benches.
  std::uint64_t lookups_started() const { return lookups_started_; }
  std::uint64_t rpcs_sent() const { return rpcs_sent_; }

 private:
  struct LookupState;
  using ReplyCallback = std::function<void(const DhtMessage*)>;

  PeerRecord self_record() const;
  PeerRecord record_for(const crypto::PeerId& peer) const;

  /// Sends a request, dialing if necessary; `on_reply` receives nullptr on
  /// dial failure or timeout.
  void send_request(const crypto::PeerId& to, std::shared_ptr<DhtMessage> msg,
                    ReplyCallback on_reply);
  void send_reply(net::ConnectionId conn, std::shared_ptr<DhtMessage> msg);
  void fail_pending(std::uint64_t request_id);

  void start_lookup(const Key& target, bool collect_providers,
                    LookupCallback on_done);
  void seed_local_providers(const std::shared_ptr<LookupState>& state);
  void lookup_step(const std::shared_ptr<LookupState>& state);
  void finish_lookup(const std::shared_ptr<LookupState>& state);

  void schedule_refresh();
  void do_refresh();

  net::Network& network_;
  crypto::PeerId self_;
  DhtConfig config_;
  util::RngStream rng_;
  RoutingTable table_;
  ProviderStore provider_store_;

  struct Pending {
    ReplyCallback callback;
    sim::EventHandle timeout;
    crypto::PeerId peer;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_request_id_ = 1;

  sim::EventHandle refresh_timer_;
  bool running_ = false;
  std::uint64_t lookups_started_ = 0;
  std::uint64_t rpcs_sent_ = 0;

  // Network-wide obs instruments (shared across all DHT nodes on the same
  // network; grabbed once at construction, bumped inline on hot paths).
  struct Instruments {
    obs::Counter* lookups = nullptr;
    obs::Counter* rpcs = nullptr;
    obs::Counter* rpc_timeouts = nullptr;
    obs::Gauge* table_entries = nullptr;
  } metrics_;

  /// Applies a routing-table mutation and mirrors the size delta into the
  /// network-wide table-entries gauge.
  template <typename Fn>
  void mutate_table(Fn&& fn) {
    const auto before = table_.size();
    fn();
    metrics_.table_entries->add(static_cast<double>(table_.size()) -
                                static_cast<double>(before));
  }
};

}  // namespace ipfsmon::dht
