#include "dht/provider_store.hpp"

#include <algorithm>

namespace ipfsmon::dht {

void ProviderStore::add(const Key& key, const PeerRecord& provider,
                        util::SimTime now) {
  auto& entries = records_[key];
  for (auto& entry : entries) {
    if (entry.provider.id == provider.id) {
      entry.provider = provider;
      entry.expires = now + ttl_;
      return;
    }
  }
  entries.push_back(Entry{provider, now + ttl_});
}

std::vector<PeerRecord> ProviderStore::get(const Key& key,
                                           util::SimTime now) const {
  std::vector<PeerRecord> out;
  const auto it = records_.find(key);
  if (it == records_.end()) return out;
  for (const auto& entry : it->second) {
    if (entry.expires > now) out.push_back(entry.provider);
  }
  return out;
}

void ProviderStore::sweep(util::SimTime now) {
  for (auto it = records_.begin(); it != records_.end();) {
    auto& entries = it->second;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [now](const Entry& e) {
                                   return e.expires <= now;
                                 }),
                  entries.end());
    if (entries.empty()) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ipfsmon::dht
