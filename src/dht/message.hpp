// DHT wire messages. Modeled on the libp2p Kademlia protobuf RPCs; carried
// over the simulated overlay as net::Payload subclasses.
#pragma once

#include <cstdint>
#include <vector>

#include "cid/cid.hpp"
#include "crypto/keys.hpp"
#include "net/address.hpp"
#include "net/network.hpp"

namespace ipfsmon::dht {

/// Contact info exchanged in replies; lets the querier dial closer peers.
struct PeerRecord {
  crypto::PeerId id;
  net::Address address;
};

struct DhtMessage : net::Payload {
  enum class Type : std::uint8_t {
    Ping,
    Pong,
    FindNode,           // target: key to approach
    FindNodeReply,      // closer: up to k closest known servers
    GetProviders,       // key: content key
    GetProvidersReply,  // providers + closer
    AddProvider,        // key + provider record (the sender)
  };

  Type type = Type::Ping;
  std::uint64_t request_id = 0;  // matches replies to requests
  std::array<std::uint8_t, 32> target{};  // FindNode / provider key
  std::vector<PeerRecord> closer;
  std::vector<PeerRecord> providers;
  /// Whether the sender operates in DHT server mode; clients are never
  /// added to routing tables (paper Sec. III-A).
  bool sender_is_server = false;

  std::size_t wire_size() const override {
    // Header + key, ~44 B per peer record (peer id + address).
    return 48 + (closer.size() + providers.size()) * 44;
  }
};

using DhtMessagePtr = std::shared_ptr<const DhtMessage>;

}  // namespace ipfsmon::dht
