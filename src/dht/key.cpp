#include "dht/key.hpp"

#include <bit>

namespace ipfsmon::dht {

Key key_of(const crypto::PeerId& peer) { return peer.digest(); }

Key key_of(const cid::Cid& cid) {
  const auto& digest = cid.hash().digest();
  if (digest.size() == 32) {
    Key key{};
    std::copy(digest.begin(), digest.end(), key.begin());
    return key;
  }
  // Non-32-byte digests (identity hashes) are re-hashed into the keyspace.
  return crypto::sha256(digest);
}

Key xor_distance(const Key& a, const Key& b) {
  Key out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool closer(const Key& a, const Key& b, const Key& target) {
  for (std::size_t i = 0; i < target.size(); ++i) {
    const std::uint8_t da = a[i] ^ target[i];
    const std::uint8_t db = b[i] ^ target[i];
    if (da != db) return da < db;
  }
  return false;
}

int common_prefix_length(const Key& a, const Key& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint8_t x = a[i] ^ b[i];
    if (x != 0) {
      return static_cast<int>(i) * 8 + std::countl_zero(x);
    }
  }
  return 256;
}

}  // namespace ipfsmon::dht
