#include "dht/crawler.hpp"

namespace ipfsmon::dht {

DhtCrawler::DhtCrawler(net::Network& network, const crypto::PeerId& self,
                       const net::Address& address, const std::string& country,
                       CrawlerConfig config, util::RngStream rng)
    : network_(network), self_(self), config_(config), rng_(std::move(rng)) {
  network_.register_node(self_, address, country, /*nat=*/false, this);
  network_.set_online(self_, true);
}

bool DhtCrawler::accept_inbound(const crypto::PeerId& /*from*/) { return true; }

void DhtCrawler::on_connection(net::ConnectionId, const crypto::PeerId&, bool) {}

void DhtCrawler::on_disconnect(net::ConnectionId, const crypto::PeerId&) {}

void DhtCrawler::on_message(net::ConnectionId /*conn*/,
                            const crypto::PeerId& from,
                            const net::PayloadPtr& payload) {
  const auto* msg = dynamic_cast<const DhtMessage*>(payload.get());
  if (msg == nullptr) return;
  if (msg->type != DhtMessage::Type::FindNodeReply) return;
  const auto it = pending_.find(msg->request_id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  pending.timeout.cancel();
  on_reply(from, msg);
}

void DhtCrawler::crawl(const std::vector<crypto::PeerId>& seeds,
                       std::function<void(CrawlResult)> on_done) {
  on_done_ = std::move(on_done);
  started_ = true;
  for (const auto& seed : seeds) enqueue(seed);
  pump();
  maybe_finish();
}

void DhtCrawler::enqueue(const crypto::PeerId& peer) {
  if (peer == self_) return;
  if (!result_.discovered.insert(peer).second) return;
  frontier_.push_back(peer);
}

void DhtCrawler::pump() {
  while (!frontier_.empty() && pending_.size() < config_.max_in_flight) {
    const crypto::PeerId peer = frontier_.back();
    frontier_.pop_back();
    if (!queried_.insert(peer).second) continue;
    // Enumerate the peer's table: its own neighborhood plus random probes.
    query(peer, key_of(peer));
    for (std::size_t i = 1; i < config_.queries_per_peer; ++i) {
      Key target;
      rng_.fill_bytes(target.data(), target.size());
      query(peer, target);
    }
  }
}

void DhtCrawler::query(const crypto::PeerId& peer, const Key& target) {
  auto msg = std::make_shared<DhtMessage>();
  msg->type = DhtMessage::Type::FindNode;
  msg->target = target;
  msg->request_id = next_request_id_++;
  msg->sender_is_server = false;  // the crawler stays out of routing tables
  const std::uint64_t id = msg->request_id;
  ++result_.rpcs_sent;

  sim::EventHandle timeout = network_.scheduler().schedule_after(
      config_.rpc_timeout, [this, id]() {
        const auto it = pending_.find(id);
        if (it == pending_.end()) return;
        pending_.erase(it);
        pump();
        maybe_finish();
      });
  pending_[id] = Pending{timeout, peer};

  const auto existing = network_.connection_between(self_, peer);
  if (existing) {
    network_.send(*existing, self_, std::move(msg));
    return;
  }
  network_.dial(self_, peer,
                [this, id, msg = std::move(msg)](
                    std::optional<net::ConnectionId> conn) {
                  const auto it = pending_.find(id);
                  if (it == pending_.end()) return;
                  if (!conn) {
                    it->second.timeout.cancel();
                    pending_.erase(it);
                    pump();
                    maybe_finish();
                    return;
                  }
                  network_.send(*conn, self_, msg);
                });
}

void DhtCrawler::on_reply(const crypto::PeerId& peer, const DhtMessage* reply) {
  result_.responsive.insert(peer);
  for (const auto& learned : reply->closer) enqueue(learned.id);
  pump();
  maybe_finish();
}

void DhtCrawler::maybe_finish() {
  if (!started_ || !on_done_) return;
  if (!frontier_.empty() || !pending_.empty()) return;
  auto done = std::move(on_done_);
  on_done_ = nullptr;
  done(std::move(result_));
}

}  // namespace ipfsmon::dht
