// Provider records held by DHT servers: which peers claim to have which
// content keys. Records expire (go-ipfs default: 24h).
#pragma once

#include <unordered_map>
#include <vector>

#include "dht/key.hpp"
#include "dht/message.hpp"
#include "util/time.hpp"

namespace ipfsmon::dht {

class ProviderStore {
 public:
  explicit ProviderStore(util::SimDuration ttl = 24 * util::kHour)
      : ttl_(ttl) {}

  /// Registers `provider` for `key` at time `now` (refreshes expiry).
  void add(const Key& key, const PeerRecord& provider, util::SimTime now);

  /// All unexpired providers for `key`.
  std::vector<PeerRecord> get(const Key& key, util::SimTime now) const;

  /// Drops expired records (called opportunistically).
  void sweep(util::SimTime now);

  std::size_t key_count() const { return records_.size(); }

 private:
  struct Entry {
    PeerRecord provider;
    util::SimTime expires;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | k[static_cast<std::size_t>(i)];
      return h;
    }
  };

  util::SimDuration ttl_;
  std::unordered_map<Key, std::vector<Entry>, KeyHash> records_;
};

}  // namespace ipfsmon::dht
