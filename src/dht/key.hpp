// Kademlia keyspace: 256-bit keys under the XOR metric. Node keys are the
// peer's digest; content keys are the CID's sha2-256 digest.
#pragma once

#include <array>
#include <cstdint>

#include "cid/cid.hpp"
#include "crypto/keys.hpp"

namespace ipfsmon::dht {

using Key = std::array<std::uint8_t, 32>;

/// A node's position in the keyspace.
Key key_of(const crypto::PeerId& peer);

/// A content item's position in the keyspace.
Key key_of(const cid::Cid& cid);

/// XOR distance between two keys.
Key xor_distance(const Key& a, const Key& b);

/// True if distance(a, target) < distance(b, target).
bool closer(const Key& a, const Key& b, const Key& target);

/// Number of leading zero bits of the XOR distance — i.e. the length of
/// the common prefix; determines the k-bucket index.
int common_prefix_length(const Key& a, const Key& b);

}  // namespace ipfsmon::dht
