#include "dht/dht_node.hpp"

#include <algorithm>
#include <unordered_set>

namespace ipfsmon::dht {

namespace {
struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | k[static_cast<std::size_t>(i)];
    return h;
  }
};
}  // namespace

/// Tracks one iterative lookup: a shortlist of candidates ordered by XOR
/// distance, with per-peer query status.
struct DhtNode::LookupState {
  Key target{};
  bool collect_providers = false;
  LookupCallback on_done;

  enum class Status { Candidate, InFlight, Responded, Failed };
  struct Entry {
    PeerRecord record;
    Status status = Status::Candidate;
  };
  // Sorted by distance to target, closest first.
  std::vector<Entry> shortlist;
  std::unordered_set<crypto::PeerId> known;
  std::vector<PeerRecord> providers_found;
  std::unordered_set<crypto::PeerId> provider_ids;
  std::size_t in_flight = 0;
  bool finished = false;
  /// Lookup-lifetime span. Only requests with a caller context are traced
  /// (e.g. a Bitswap provider search); periodic refresh lookups have none
  /// and stay untraced.
  obs::Span span;
};

DhtNode::DhtNode(net::Network& network, const crypto::PeerId& self,
                 DhtConfig config, util::RngStream rng)
    : network_(network),
      self_(self),
      config_(config),
      rng_(std::move(rng)),
      table_(self, config.bucket_size),
      provider_store_(config.provider_ttl) {
  auto& reg = network_.obs().metrics;
  metrics_.lookups = &reg.counter("ipfsmon_dht_lookups_total",
                                  "Iterative DHT lookups started");
  metrics_.rpcs =
      &reg.counter("ipfsmon_dht_rpcs_sent_total", "DHT request RPCs sent");
  metrics_.rpc_timeouts = &reg.counter("ipfsmon_dht_rpc_timeouts_total",
                                       "DHT RPCs that expired unanswered");
  metrics_.table_entries =
      &reg.gauge("ipfsmon_dht_routing_table_entries",
                 "Routing-table entries summed over all DHT nodes");
}

void DhtNode::start() {
  if (running_) return;
  running_ = true;
  schedule_refresh();
}

void DhtNode::stop() {
  running_ = false;
  refresh_timer_.cancel();
  // Fail all pending RPCs; their lookups unwind via the nullptr path.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) ids.push_back(id);
  for (const std::uint64_t id : ids) fail_pending(id);
}

void DhtNode::learn_server(const crypto::PeerId& peer) {
  if (peer == self_) return;
  mutate_table([&] { table_.add(peer); });
}

PeerRecord DhtNode::self_record() const { return record_for(self_); }

PeerRecord DhtNode::record_for(const crypto::PeerId& peer) const {
  const net::NodeRecord* rec = network_.record(peer);
  return PeerRecord{peer, rec != nullptr ? rec->address : net::Address{}};
}

void DhtNode::bootstrap(const std::vector<crypto::PeerId>& seeds) {
  for (const auto& seed : seeds) {
    if (seed == self_) continue;
    network_.dial(self_, seed, [this, seed](std::optional<net::ConnectionId> c) {
      if (!c || !running_) return;
      // Probe the seed so it lands in our table and we in its (if server).
      auto msg = std::make_shared<DhtMessage>();
      msg->type = DhtMessage::Type::FindNode;
      msg->target = key_of(self_);
      send_request(seed, std::move(msg), [this](const DhtMessage* reply) {
        if (reply == nullptr || !running_) return;
        // Kick a proper self-lookup once we know anyone.
        find_closest(key_of(self_), nullptr);
      });
    });
  }
}

void DhtNode::handle_message(net::ConnectionId conn, const crypto::PeerId& from,
                             const DhtMessage& msg) {
  if (!running_) return;
  if (msg.sender_is_server) mutate_table([&] { table_.add(from); });

  switch (msg.type) {
    case DhtMessage::Type::Ping: {
      auto reply = std::make_shared<DhtMessage>();
      reply->type = DhtMessage::Type::Pong;
      reply->request_id = msg.request_id;
      send_reply(conn, std::move(reply));
      return;
    }
    case DhtMessage::Type::FindNode: {
      if (!config_.server_mode) return;  // clients do not serve the DHT
      auto reply = std::make_shared<DhtMessage>();
      reply->type = DhtMessage::Type::FindNodeReply;
      reply->request_id = msg.request_id;
      for (const auto& peer : table_.closest(msg.target, config_.k)) {
        reply->closer.push_back(record_for(peer));
      }
      send_reply(conn, std::move(reply));
      return;
    }
    case DhtMessage::Type::GetProviders: {
      if (!config_.server_mode) return;
      auto reply = std::make_shared<DhtMessage>();
      reply->type = DhtMessage::Type::GetProvidersReply;
      reply->request_id = msg.request_id;
      reply->providers =
          provider_store_.get(msg.target, network_.scheduler().now());
      for (const auto& peer : table_.closest(msg.target, config_.k)) {
        reply->closer.push_back(record_for(peer));
      }
      send_reply(conn, std::move(reply));
      return;
    }
    case DhtMessage::Type::AddProvider: {
      if (!config_.server_mode) return;
      for (const auto& provider : msg.providers) {
        provider_store_.add(msg.target, provider, network_.scheduler().now());
      }
      return;
    }
    case DhtMessage::Type::Pong:
    case DhtMessage::Type::FindNodeReply:
    case DhtMessage::Type::GetProvidersReply: {
      const auto it = pending_.find(msg.request_id);
      if (it == pending_.end()) return;  // late reply after timeout
      Pending pending = std::move(it->second);
      pending_.erase(it);
      pending.timeout.cancel();
      if (pending.callback) pending.callback(&msg);
      return;
    }
  }
}

void DhtNode::on_peer_disconnected(const crypto::PeerId& /*peer*/) {
  // Kademlia tables deliberately retain entries across disconnects;
  // removal happens on RPC failure (see send_request timeout path).
}

void DhtNode::send_request(const crypto::PeerId& to,
                           std::shared_ptr<DhtMessage> msg,
                           ReplyCallback on_reply) {
  msg->request_id = next_request_id_++;
  msg->sender_is_server = config_.server_mode;
  const std::uint64_t id = msg->request_id;
  ++rpcs_sent_;
  metrics_.rpcs->inc();

  sim::EventHandle timeout = network_.scheduler().schedule_after(
      config_.rpc_timeout, [this, id]() {
        metrics_.rpc_timeouts->inc();
        if (auto& events = network_.obs().events; events.active()) {
          const auto it = pending_.find(id);
          if (it != pending_.end()) {
            events.emit(network_.scheduler().now(), obs::Severity::kDebug,
                        "dht", "rpc timeout to " + it->second.peer.short_hex());
          }
        }
        fail_pending(id);
      });
  pending_[id] = Pending{std::move(on_reply), timeout, to};

  const auto existing = network_.connection_between(self_, to);
  if (existing) {
    network_.send(*existing, self_, std::move(msg));
    return;
  }
  network_.dial(self_, to,
                [this, id, msg = std::move(msg)](
                    std::optional<net::ConnectionId> conn) {
                  if (!conn) {
                    // Unreachable peer: fail fast and drop it from the table.
                    const auto it = pending_.find(id);
                    if (it != pending_.end()) {
                      mutate_table([&] { table_.remove(it->second.peer); });
                    }
                    fail_pending(id);
                    return;
                  }
                  if (pending_.count(id) == 0) return;  // already timed out
                  network_.send(*conn, self_, msg);
                });
}

void DhtNode::send_reply(net::ConnectionId conn,
                         std::shared_ptr<DhtMessage> msg) {
  msg->sender_is_server = config_.server_mode;
  network_.send(conn, self_, std::move(msg));
}

void DhtNode::fail_pending(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  pending.timeout.cancel();
  mutate_table([&] { table_.remove(pending.peer); });  // unresponsive: evict
  if (pending.callback) pending.callback(nullptr);
}

void DhtNode::find_closest(const Key& target, LookupCallback on_done) {
  start_lookup(target, /*collect_providers=*/false, std::move(on_done));
}

void DhtNode::find_providers(const cid::Cid& content, LookupCallback on_done) {
  start_lookup(key_of(content), /*collect_providers=*/true, std::move(on_done));
}

void DhtNode::seed_local_providers(const std::shared_ptr<LookupState>& state) {
  // A server near the key may already hold records locally (including ones
  // it stored about itself when providing).
  if (!config_.server_mode) return;
  for (const auto& provider :
       provider_store_.get(state->target, network_.scheduler().now())) {
    if (state->provider_ids.insert(provider.id).second) {
      state->providers_found.push_back(provider);
    }
  }
}

void DhtNode::provide(const cid::Cid& content, const net::Address& address) {
  const Key key = key_of(content);
  const PeerRecord self_rec{self_, address};
  // Servers also store the record locally — they may themselves be among
  // the k closest nodes to the key.
  if (config_.server_mode) {
    provider_store_.add(key, self_rec, network_.scheduler().now());
  }
  find_closest(key, [this, key, self_rec](std::vector<PeerRecord> closest) {
    for (const auto& peer : closest) {
      auto msg = std::make_shared<DhtMessage>();
      msg->type = DhtMessage::Type::AddProvider;
      msg->target = key;
      msg->providers.push_back(self_rec);
      // AddProvider is fire-and-forget; register no reply expectation.
      msg->request_id = next_request_id_++;
      msg->sender_is_server = config_.server_mode;
      ++rpcs_sent_;
      metrics_.rpcs->inc();
      const auto existing = network_.connection_between(self_, peer.id);
      if (existing) {
        network_.send(*existing, self_, std::move(msg));
      } else {
        network_.dial(self_, peer.id,
                      [this, msg = std::move(msg)](
                          std::optional<net::ConnectionId> conn) {
                        if (conn) network_.send(*conn, self_, msg);
                      });
      }
    }
  });
}

void DhtNode::start_lookup(const Key& target, bool collect_providers,
                           LookupCallback on_done) {
  ++lookups_started_;
  metrics_.lookups->inc();
  auto state = std::make_shared<LookupState>();
  state->target = target;
  state->collect_providers = collect_providers;
  state->on_done = std::move(on_done);
  auto& tracer = network_.obs().tracer;
  state->span = tracer.start_span(
      collect_providers ? "dht.find_providers" : "dht.find_closest",
      tracer.current());
  if (collect_providers) seed_local_providers(state);

  for (const auto& peer : table_.closest(target, config_.k)) {
    state->shortlist.push_back({record_for(peer), LookupState::Status::Candidate});
    state->known.insert(peer);
  }
  if (state->shortlist.empty()) {
    finish_lookup(state);
    return;
  }
  lookup_step(state);
}

void DhtNode::lookup_step(const std::shared_ptr<LookupState>& state) {
  if (state->finished) return;
  if (!running_) {
    finish_lookup(state);
    return;
  }

  // Convergence: the k closest known peers have all been queried (or
  // failed) and nothing is in flight.
  std::size_t examined = 0;
  bool all_settled = true;
  for (const auto& entry : state->shortlist) {
    if (examined >= config_.k) break;
    if (entry.status == LookupState::Status::Candidate ||
        entry.status == LookupState::Status::InFlight) {
      all_settled = false;
      break;
    }
    ++examined;
  }
  if (all_settled && state->in_flight == 0) {
    finish_lookup(state);
    return;
  }

  // Launch queries up to alpha, closest candidates first, but only within
  // the k-best window (classic Kademlia pruning).
  std::size_t position = 0;
  for (auto& entry : state->shortlist) {
    if (state->in_flight >= config_.alpha) break;
    if (position >= config_.k) break;
    ++position;
    if (entry.status != LookupState::Status::Candidate) continue;
    entry.status = LookupState::Status::InFlight;
    ++state->in_flight;

    auto msg = std::make_shared<DhtMessage>();
    msg->type = state->collect_providers ? DhtMessage::Type::GetProviders
                                         : DhtMessage::Type::FindNode;
    msg->target = state->target;
    const crypto::PeerId peer = entry.record.id;
    std::shared_ptr<obs::Span> rpc_span;
    if (state->span.active()) {
      rpc_span = std::make_shared<obs::Span>(network_.obs().tracer.start_span(
          "dht.rpc", state->span.context()));
      rpc_span->set_attr("peer", peer.short_hex());
      msg->trace = rpc_span->context();
    }
    send_request(peer, std::move(msg),
                 [this, state, peer, rpc_span](const DhtMessage* reply) {
                   if (rpc_span) {
                     rpc_span->set_attr("ok", reply != nullptr ? "1" : "0");
                     rpc_span->end();
                   }
                   --state->in_flight;
                   for (auto& e : state->shortlist) {
                     if (e.record.id == peer) {
                       e.status = reply != nullptr
                                      ? LookupState::Status::Responded
                                      : LookupState::Status::Failed;
                       break;
                     }
                   }
                   if (reply != nullptr) {
                     if (state->collect_providers) {
                       for (const auto& provider : reply->providers) {
                         if (state->provider_ids.insert(provider.id).second) {
                           state->providers_found.push_back(provider);
                         }
                       }
                     }
                     for (const auto& learned : reply->closer) {
                       if (learned.id == self_) continue;
                       if (!state->known.insert(learned.id).second) continue;
                       // Insert keeping the shortlist distance-sorted.
                       const Key ck = key_of(learned.id);
                       auto it = std::find_if(
                           state->shortlist.begin(), state->shortlist.end(),
                           [&](const LookupState::Entry& e) {
                             return closer(ck, key_of(e.record.id),
                                           state->target);
                           });
                       state->shortlist.insert(
                           it, {learned, LookupState::Status::Candidate});
                     }
                   }
                   lookup_step(state);
                 });
  }

  if (state->in_flight == 0) {
    // Nothing launchable (all candidates outside the window): done.
    finish_lookup(state);
  }
}

void DhtNode::finish_lookup(const std::shared_ptr<LookupState>& state) {
  if (state->finished) return;
  state->finished = true;
  if (state->span.active()) {
    if (state->collect_providers) {
      state->span.set_attr(
          "providers",
          static_cast<std::uint64_t>(state->providers_found.size()));
    }
    state->span.set_attr("shortlist",
                         static_cast<std::uint64_t>(state->shortlist.size()));
    state->span.end();
  }
  LookupCallback cb = std::move(state->on_done);
  if (!cb) return;
  std::vector<PeerRecord> result;
  if (state->collect_providers) {
    result = std::move(state->providers_found);
  } else {
    for (const auto& entry : state->shortlist) {
      if (entry.status == LookupState::Status::Responded) {
        result.push_back(entry.record);
        if (result.size() >= config_.k) break;
      }
    }
  }
  cb(std::move(result));
}

void DhtNode::schedule_refresh() {
  if (!running_) return;
  // Jittered interval so the population's refreshes don't phase-lock.
  const auto jitter = static_cast<util::SimDuration>(
      rng_.uniform(0.5, 1.5) * static_cast<double>(config_.refresh_interval));
  refresh_timer_ = network_.scheduler().schedule_after(jitter, [this]() {
    do_refresh();
    schedule_refresh();
  });
}

void DhtNode::do_refresh() {
  if (!running_) return;
  // Self-lookup keeps our neighborhood fresh...
  find_closest(key_of(self_), nullptr);
  // ...and a random-target lookup explores the wider keyspace.
  Key random_target;
  rng_.fill_bytes(random_target.data(), random_target.size());
  find_closest(random_target, nullptr);
  provider_store_.sweep(network_.scheduler().now());
}

}  // namespace ipfsmon::dht
