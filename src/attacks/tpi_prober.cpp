#include "attacks/tpi_prober.hpp"

namespace ipfsmon::attacks {

std::string_view tpi_outcome_name(TpiOutcome outcome) {
  switch (outcome) {
    case TpiOutcome::Have:
      return "HAVE";
    case TpiOutcome::DontHave:
      return "DONT_HAVE";
    case TpiOutcome::Timeout:
      return "TIMEOUT";
    case TpiOutcome::Unreachable:
      return "UNREACHABLE";
  }
  return "UNKNOWN";
}

TpiProber::TpiProber(net::Network& network, const crypto::PeerId& self,
                     const net::Address& address, const std::string& country,
                     util::SimDuration timeout)
    : network_(network), self_(self), timeout_(timeout) {
  network_.register_node(self_, address, country, /*nat=*/false, this);
  network_.set_online(self_, true);
}

void TpiProber::probe(const crypto::PeerId& target, const cid::Cid& cid,
                      ProbeCallback on_done) {
  const Key key{target, cid};
  if (pending_.count(key) != 0) {
    if (on_done) on_done(TpiOutcome::Timeout);  // probe already running
    return;
  }
  sim::EventHandle timeout = network_.scheduler().schedule_after(
      timeout_, [this, key]() { finish(key, TpiOutcome::Timeout); });
  pending_[key] = Pending{std::move(on_done), timeout};

  auto send_probe = [this, key](net::ConnectionId conn) {
    auto msg = std::make_shared<bitswap::BitswapMessage>();
    bitswap::WantEntry entry;
    entry.cid = key.cid;
    entry.type = bitswap::WantType::WantHave;
    entry.send_dont_have = true;
    msg->entries.push_back(std::move(entry));
    network_.send(conn, self_, std::move(msg));
  };

  const auto existing = network_.connection_between(self_, target);
  if (existing) {
    send_probe(*existing);
    return;
  }
  network_.dial(self_, target,
                [this, key, send_probe](std::optional<net::ConnectionId> conn) {
                  if (!conn) {
                    finish(key, TpiOutcome::Unreachable);
                    return;
                  }
                  if (pending_.count(key) == 0) return;  // timed out already
                  send_probe(*conn);
                });
}

void TpiProber::finish(const Key& key, TpiOutcome outcome) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  pending.timeout.cancel();
  if (pending.callback) pending.callback(outcome);
}

bool TpiProber::accept_inbound(const crypto::PeerId& /*from*/) { return true; }

void TpiProber::on_connection(net::ConnectionId, const crypto::PeerId&, bool) {}

void TpiProber::on_disconnect(net::ConnectionId, const crypto::PeerId&) {}

void TpiProber::on_message(net::ConnectionId /*conn*/,
                           const crypto::PeerId& from,
                           const net::PayloadPtr& payload) {
  const auto* msg = dynamic_cast<const bitswap::BitswapMessage*>(payload.get());
  if (msg == nullptr) return;
  for (const auto& presence : msg->presences) {
    finish(Key{from, presence.cid},
           presence.have ? TpiOutcome::Have : TpiOutcome::DontHave);
  }
  for (const auto& block : msg->blocks) {
    if (block != nullptr) finish(Key{from, block->id()}, TpiOutcome::Have);
  }
}

}  // namespace ipfsmon::attacks
