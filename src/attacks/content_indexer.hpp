// Content indexing (paper Sec. IV: "in order to investigate stored content
// one must first learn about valid CIDs — which can be done by observing
// data requests", and Sec. IV-A: what a CID references "can be determined
// by downloading and indexing d"; the paper leaves filesystem-layer
// analyses as future work). The ContentIndexer closes that loop: it rides
// an ordinary node, fetches CIDs harvested from monitor traces, and
// classifies what they reference.
#pragma once

#include <functional>
#include <string>

#include "node/ipfs_node.hpp"
#include "trace/trace.hpp"

namespace ipfsmon::attacks {

/// What a harvested CID turned out to reference. (Note: the synthetic
/// catalog's single-block DagProtobuf items carry opaque payloads rather
/// than real dag-pb encodings, so they classify as OtherIpld; real file
/// and directory DAGs classify as File/Directory.)
enum class ContentKind {
  RawData,       // raw-codec leaf (unstructured bytes)
  File,          // dag-pb file (possibly chunked)
  Directory,     // dag-pb directory with named entries
  OtherIpld,     // DagCBOR/DagJSON/Git/chain objects
  Unresolvable,  // no provider answered
};

std::string_view content_kind_name(ContentKind kind);

struct IndexedContent {
  cid::Cid cid;
  ContentKind kind = ContentKind::Unresolvable;
  /// Blocks fetched for this item (1 for leaves, DAG size for files).
  std::size_t block_count = 0;
  std::size_t total_bytes = 0;
  /// Directory entry names (Directory only).
  std::vector<std::string> entries;
};

/// Aggregate report over a batch of harvested CIDs.
struct IndexReport {
  std::vector<IndexedContent> items;

  std::size_t count_of(ContentKind kind) const;
  double resolvable_share() const;
  std::size_t total_bytes() const;
};

class ContentIndexer {
 public:
  /// The indexer fetches through `fetcher` — typically a dedicated node the
  /// adversary controls (downloads show up as ordinary Bitswap traffic).
  explicit ContentIndexer(node::IpfsNode& fetcher) : fetcher_(fetcher) {}

  /// Indexes one CID; the callback fires when classification completes
  /// (or the fetch deadline gives up).
  void index(const cid::Cid& target,
             std::function<void(IndexedContent)> on_done);

  /// Harvests the distinct CIDs from a trace (requests only, first
  /// `max_items` by first appearance) and indexes them all.
  void index_trace(const trace::Trace& trace, std::size_t max_items,
                   std::function<void(IndexReport)> on_done);

  std::uint64_t fetches_issued() const { return fetches_issued_; }

 private:
  void classify_dag_pb(const cid::Cid& target, const dag::BlockPtr& root,
                       std::function<void(IndexedContent)> on_done);

  node::IpfsNode& fetcher_;
  std::uint64_t fetches_issued_ = 0;
};

}  // namespace ipfsmon::attacks
