// Gateway probing (paper Sec. VI-B1): link a public HTTP gateway to its
// hidden IPFS node ID by
//   1. generating a unique random block (unique CID c),
//   2. announcing the monitoring nodes as providers of c in the DHT,
//   3. requesting c through the gateway's HTTP side,
//   4. watching which IPFS node then asks for c over Bitswap — that node
//      IS the gateway's IPFS side.
// Repeated probes cross-referenced with peer lists expose multi-node
// gateway operators (the paper found one operator with 13 nodes, 93
// gateway node IDs in total).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "monitor/passive_monitor.hpp"
#include "node/gateway.hpp"
#include "util/rng.hpp"

namespace ipfsmon::attacks {

struct GatewayProbeResult {
  std::string gateway_name;
  cid::Cid probe_cid;
  bool http_ok = false;
  /// IPFS node IDs observed requesting the probe CID (normally exactly the
  /// gateway's node; may be non-empty even when HTTP failed — the paper's
  /// "misconfigured HTTP end" cases).
  std::vector<crypto::PeerId> discovered_nodes;
  /// IPs those nodes were seen with.
  std::vector<net::Address> discovered_addresses;
};

struct GatewayProbeConfig {
  /// How long to wait for Bitswap messages after the HTTP request.
  util::SimDuration observation_window = 30 * util::kSecond;
  std::size_t probe_block_size = 64;
};

/// Probes gateways through the given monitors. The monitors act as bait
/// providers: the probe block is placed in their blockstores and announced
/// in the DHT under their addresses.
class GatewayProber {
 public:
  GatewayProber(net::Network& network,
                std::vector<monitor::PassiveMonitor*> monitors,
                GatewayProbeConfig config, util::RngStream rng);

  /// Probes one gateway; `on_done` fires after the observation window.
  void probe(const std::string& gateway_name, node::GatewayNode& gateway,
             std::function<void(GatewayProbeResult)> on_done);

  /// Probes a gateway whose HTTP side is broken (request never reaches the
  /// HTTP handler) — used to reproduce the paper's observation that some
  /// broken gateways still reveal their node IDs via Bitswap. The node's
  /// Bitswap side is exercised by `trigger`, a stand-in for whatever
  /// internal process still requests the CID.
  void probe_with_trigger(const std::string& gateway_name,
                          const std::function<void(const cid::Cid&)>& trigger,
                          std::function<void(GatewayProbeResult)> on_done);

 private:
  cid::Cid plant_probe_block();
  void collect(GatewayProbeResult result,
               std::vector<std::size_t> trace_offsets,
               std::function<void(GatewayProbeResult)> on_done);

  net::Network& network_;
  std::vector<monitor::PassiveMonitor*> monitors_;
  GatewayProbeConfig config_;
  util::RngStream rng_;
};

/// Aggregates probe results into an operator census: node IDs and IPs per
/// gateway name, merging repeated runs.
class GatewayCensus {
 public:
  void record(const GatewayProbeResult& result);

  std::size_t total_gateway_nodes() const;
  std::vector<crypto::PeerId> nodes_of(const std::string& gateway_name) const;
  std::vector<std::string> gateway_names() const;

  /// Gateways backed by more than one IPFS node.
  std::vector<std::pair<std::string, std::size_t>> multi_node_gateways() const;

 private:
  std::map<std::string, std::set<crypto::PeerId>> nodes_;
  std::map<std::string, std::set<net::Address>> addresses_;
};

}  // namespace ipfsmon::attacks
