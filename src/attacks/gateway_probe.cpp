#include "attacks/gateway_probe.hpp"

#include <set>
#include <unordered_set>

namespace ipfsmon::attacks {

GatewayProber::GatewayProber(net::Network& network,
                             std::vector<monitor::PassiveMonitor*> monitors,
                             GatewayProbeConfig config, util::RngStream rng)
    : network_(network),
      monitors_(std::move(monitors)),
      config_(config),
      rng_(std::move(rng)) {}

cid::Cid GatewayProber::plant_probe_block() {
  // A block of fresh random bytes: its CID is unique with overwhelming
  // probability, so any request for it is attributable to our probe.
  util::Bytes data(config_.probe_block_size);
  rng_.fill_bytes(data.data(), data.size());
  auto block =
      std::make_shared<dag::Block>(dag::Block::raw(std::move(data)));
  const cid::Cid probe_cid = block->id();
  for (monitor::PassiveMonitor* m : monitors_) {
    m->blockstore().put(block);
    m->dht().provide(probe_cid, m->address());
  }
  return probe_cid;
}

void GatewayProber::collect(GatewayProbeResult result,
                            std::vector<std::size_t> trace_offsets,
                            std::function<void(GatewayProbeResult)> on_done) {
  std::unordered_set<crypto::PeerId> nodes;
  std::set<net::Address> addresses;
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    const auto& entries = monitors_[i]->recorded().entries();
    for (std::size_t j = trace_offsets[i]; j < entries.size(); ++j) {
      const auto& e = entries[j];
      if (e.cid != result.probe_cid || !e.is_request()) continue;
      if (nodes.insert(e.peer).second) {
        result.discovered_nodes.push_back(e.peer);
      }
      addresses.insert(e.address);
    }
  }
  result.discovered_addresses.assign(addresses.begin(), addresses.end());
  if (on_done) on_done(std::move(result));
}

void GatewayProber::probe(const std::string& gateway_name,
                          node::GatewayNode& gateway,
                          std::function<void(GatewayProbeResult)> on_done) {
  GatewayProbeResult result;
  result.gateway_name = gateway_name;
  result.probe_cid = plant_probe_block();

  std::vector<std::size_t> offsets;
  offsets.reserve(monitors_.size());
  for (const monitor::PassiveMonitor* m : monitors_) {
    offsets.push_back(m->recorded().size());
  }

  auto shared = std::make_shared<GatewayProbeResult>(std::move(result));
  gateway.handle_http_request(
      shared->probe_cid,
      [shared](bool ok, bool /*cache_hit*/) { shared->http_ok = ok; });

  network_.scheduler().schedule_after(
      config_.observation_window,
      [this, shared, offsets = std::move(offsets),
       on_done = std::move(on_done)]() mutable {
        collect(std::move(*shared), std::move(offsets), std::move(on_done));
      });
}

void GatewayProber::probe_with_trigger(
    const std::string& gateway_name,
    const std::function<void(const cid::Cid&)>& trigger,
    std::function<void(GatewayProbeResult)> on_done) {
  GatewayProbeResult result;
  result.gateway_name = gateway_name;
  result.probe_cid = plant_probe_block();
  result.http_ok = false;  // the HTTP side never answers

  std::vector<std::size_t> offsets;
  offsets.reserve(monitors_.size());
  for (const monitor::PassiveMonitor* m : monitors_) {
    offsets.push_back(m->recorded().size());
  }
  if (trigger) trigger(result.probe_cid);

  auto shared = std::make_shared<GatewayProbeResult>(std::move(result));
  network_.scheduler().schedule_after(
      config_.observation_window,
      [this, shared, offsets = std::move(offsets),
       on_done = std::move(on_done)]() mutable {
        collect(std::move(*shared), std::move(offsets), std::move(on_done));
      });
}

void GatewayCensus::record(const GatewayProbeResult& result) {
  auto& nodes = nodes_[result.gateway_name];
  nodes.insert(result.discovered_nodes.begin(), result.discovered_nodes.end());
  auto& addrs = addresses_[result.gateway_name];
  addrs.insert(result.discovered_addresses.begin(),
               result.discovered_addresses.end());
}

std::size_t GatewayCensus::total_gateway_nodes() const {
  std::set<crypto::PeerId> all;
  for (const auto& [name, nodes] : nodes_) {
    all.insert(nodes.begin(), nodes.end());
  }
  return all.size();
}

std::vector<crypto::PeerId> GatewayCensus::nodes_of(
    const std::string& gateway_name) const {
  const auto it = nodes_.find(gateway_name);
  if (it == nodes_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> GatewayCensus::gateway_names() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, nodes] : nodes_) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, std::size_t>>
GatewayCensus::multi_node_gateways() const {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const auto& [name, nodes] : nodes_) {
    if (nodes.size() > 1) out.emplace_back(name, nodes.size());
  }
  return out;
}

}  // namespace ipfsmon::attacks
