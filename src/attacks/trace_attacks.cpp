#include "attacks/trace_attacks.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace ipfsmon::attacks {

std::vector<IdwHit> identify_data_wanters(const trace::Trace& unified,
                                          const cid::Cid& target) {
  std::unordered_map<crypto::PeerId, IdwHit> hits;
  for (const auto& e : unified.entries()) {
    if (e.cid != target) continue;
    if (e.type == bitswap::WantType::Cancel) {
      const auto it = hits.find(e.peer);
      if (it != hits.end()) it->second.cancelled = true;
      continue;
    }
    if (!e.is_clean()) continue;
    auto& hit = hits[e.peer];
    hit.peer = e.peer;
    hit.address = e.address;
    hit.request_times.push_back(e.timestamp);
  }
  std::vector<IdwHit> out;
  out.reserve(hits.size());
  for (auto& [peer, hit] : hits) out.push_back(std::move(hit));
  std::sort(out.begin(), out.end(), [](const IdwHit& a, const IdwHit& b) {
    const util::SimTime ta =
        a.request_times.empty() ? 0 : a.request_times.front();
    const util::SimTime tb =
        b.request_times.empty() ? 0 : b.request_times.front();
    if (ta != tb) return ta < tb;
    return a.peer < b.peer;
  });
  return out;
}

std::vector<TnwHit> track_node_wants(const trace::Trace& unified,
                                     const crypto::PeerId& target) {
  std::map<cid::Cid, TnwHit> hits;
  for (const auto& e : unified.entries()) {
    if (e.peer != target) continue;
    if (e.type == bitswap::WantType::Cancel) {
      const auto it = hits.find(e.cid);
      if (it != hits.end()) it->second.cancelled = true;
      continue;
    }
    auto [it, inserted] = hits.try_emplace(e.cid);
    TnwHit& hit = it->second;
    if (inserted) {
      hit.cid = e.cid;
      hit.first_type = e.type;
      hit.first_seen = e.timestamp;
    }
    hit.last_seen = std::max(hit.last_seen, e.timestamp);
    ++hit.observations;
  }
  std::vector<TnwHit> out;
  out.reserve(hits.size());
  for (auto& [cid, hit] : hits) out.push_back(std::move(hit));
  std::sort(out.begin(), out.end(), [](const TnwHit& a, const TnwHit& b) {
    if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
    return a.cid < b.cid;
  });
  return out;
}

std::vector<std::pair<crypto::PeerId, std::vector<net::Address>>>
peers_with_multiple_addresses(const trace::Trace& unified) {
  std::unordered_map<crypto::PeerId, std::set<net::Address>> seen;
  for (const auto& e : unified.entries()) {
    seen[e.peer].insert(e.address);
  }
  std::vector<std::pair<crypto::PeerId, std::vector<net::Address>>> out;
  for (auto& [peer, addrs] : seen) {
    if (addrs.size() > 1) {
      out.emplace_back(peer,
                       std::vector<net::Address>(addrs.begin(), addrs.end()));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace ipfsmon::attacks
