#include "attacks/trace_attacks.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace ipfsmon::attacks {

IdwAccumulator::IdwAccumulator(cid::Cid target) : target_(std::move(target)) {}

void IdwAccumulator::add(const trace::TraceEntry& e) {
  if (e.cid != target_) return;
  if (e.type == bitswap::WantType::Cancel) {
    const auto it = hits_.find(e.peer);
    if (it != hits_.end()) it->second.cancelled = true;
    return;
  }
  if (!e.is_clean()) return;
  auto& hit = hits_[e.peer];
  hit.peer = e.peer;
  hit.address = e.address;
  hit.request_times.push_back(e.timestamp);
}

std::vector<IdwHit> IdwAccumulator::hits() const {
  std::vector<IdwHit> out;
  out.reserve(hits_.size());
  for (const auto& [peer, hit] : hits_) out.push_back(hit);
  std::sort(out.begin(), out.end(), [](const IdwHit& a, const IdwHit& b) {
    const util::SimTime ta =
        a.request_times.empty() ? 0 : a.request_times.front();
    const util::SimTime tb =
        b.request_times.empty() ? 0 : b.request_times.front();
    if (ta != tb) return ta < tb;
    return a.peer < b.peer;
  });
  return out;
}

std::vector<IdwHit> identify_data_wanters(const trace::Trace& unified,
                                          const cid::Cid& target) {
  IdwAccumulator acc(target);
  for (const auto& e : unified.entries()) acc.add(e);
  return acc.hits();
}

TnwAccumulator::TnwAccumulator(crypto::PeerId target)
    : target_(std::move(target)) {}

void TnwAccumulator::add(const trace::TraceEntry& e) {
  if (e.peer != target_) return;
  if (e.type == bitswap::WantType::Cancel) {
    const auto it = hits_.find(e.cid);
    if (it != hits_.end()) it->second.cancelled = true;
    return;
  }
  auto [it, inserted] = hits_.try_emplace(e.cid);
  TnwHit& hit = it->second;
  if (inserted) {
    hit.cid = e.cid;
    hit.first_type = e.type;
    hit.first_seen = e.timestamp;
  }
  hit.last_seen = std::max(hit.last_seen, e.timestamp);
  ++hit.observations;
}

std::vector<TnwHit> TnwAccumulator::hits() const {
  std::vector<TnwHit> out;
  out.reserve(hits_.size());
  for (const auto& [cid, hit] : hits_) out.push_back(hit);
  std::sort(out.begin(), out.end(), [](const TnwHit& a, const TnwHit& b) {
    if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
    return a.cid < b.cid;
  });
  return out;
}

std::vector<TnwHit> track_node_wants(const trace::Trace& unified,
                                     const crypto::PeerId& target) {
  TnwAccumulator acc(target);
  for (const auto& e : unified.entries()) acc.add(e);
  return acc.hits();
}

std::vector<std::pair<crypto::PeerId, std::vector<net::Address>>>
peers_with_multiple_addresses(const trace::Trace& unified) {
  std::unordered_map<crypto::PeerId, std::set<net::Address>> seen;
  for (const auto& e : unified.entries()) {
    seen[e.peer].insert(e.address);
  }
  std::vector<std::pair<crypto::PeerId, std::vector<net::Address>>> out;
  for (auto& [peer, addrs] : seen) {
    if (addrs.size() > 1) {
      out.emplace_back(peer,
                       std::vector<net::Address>(addrs.begin(), addrs.end()));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace ipfsmon::attacks
