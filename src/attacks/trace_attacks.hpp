// Passive privacy attacks on collected traces (paper Sec. VI-A):
//  * IDW — Identifying Data Wanters: who asked for a given CID?
//  * TNW — Tracking Node Wants: what did a given node ask for?
// Both are pure queries over the monitoring dataset; the monitoring setup
// *is* the attack infrastructure.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace ipfsmon::attacks {

/// One node observed requesting the target CID.
struct IdwHit {
  crypto::PeerId peer;
  net::Address address;
  std::vector<util::SimTime> request_times;
  bool cancelled = false;  // a CANCEL followed — likely completed download
};

/// IDW: every peer that requested `target`, with request times. Uses clean
/// (deduplicated) request entries for times; CANCELs flag completion.
std::vector<IdwHit> identify_data_wanters(const trace::Trace& unified,
                                          const cid::Cid& target);

/// One CID a tracked node was observed wanting.
struct TnwHit {
  cid::Cid cid;
  bitswap::WantType first_type = bitswap::WantType::WantHave;
  util::SimTime first_seen = 0;
  util::SimTime last_seen = 0;
  std::size_t observations = 0;
  bool cancelled = false;
};

/// TNW: the full observed interest history of `target`, one row per CID,
/// ordered by first observation.
std::vector<TnwHit> track_node_wants(const trace::Trace& unified,
                                     const crypto::PeerId& target);

/// Node IDs observed using more than one IP address (the cross-referencing
/// step of the gateway investigation, Sec. VI-B2).
std::vector<std::pair<crypto::PeerId, std::vector<net::Address>>>
peers_with_multiple_addresses(const trace::Trace& unified);

/// Streaming IDW: feed unified entries (e.g. from a Bloom-pruned store
/// scan on the target CID) and collect the same hits as
/// identify_data_wanters without materializing the trace.
class IdwAccumulator {
 public:
  explicit IdwAccumulator(cid::Cid target);

  void add(const trace::TraceEntry& entry);
  std::vector<IdwHit> hits() const;

 private:
  cid::Cid target_;
  std::unordered_map<crypto::PeerId, IdwHit> hits_;
};

/// Streaming TNW: the same rows as track_node_wants, fed entry by entry.
class TnwAccumulator {
 public:
  explicit TnwAccumulator(crypto::PeerId target);

  void add(const trace::TraceEntry& entry);
  std::vector<TnwHit> hits() const;

 private:
  crypto::PeerId target_;
  std::map<cid::Cid, TnwHit> hits_;
};

}  // namespace ipfsmon::attacks
