// TPI — Testing for Past Interests (paper Sec. VI-A3): an active probe that
// asks a target node whether a CID sits in its cache. Because IPFS nodes
// cache downloaded data and serve it cooperatively, a HAVE answer implies
// the target requested (or authored) the data in the recent past.
#pragma once

#include <functional>
#include <unordered_map>

#include "bitswap/message.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace ipfsmon::attacks {

enum class TpiOutcome {
  Have,         // target has the block cached — past interest confirmed
  DontHave,     // target answered negatively
  Timeout,      // no answer (treat as not cached)
  Unreachable,  // could not connect to target
};

std::string_view tpi_outcome_name(TpiOutcome outcome);

/// A minimal adversary node that joins the overlay just to send WANT_HAVE
/// probes. Register once, probe many targets.
class TpiProber : public net::Host {
 public:
  using ProbeCallback = std::function<void(TpiOutcome)>;

  TpiProber(net::Network& network, const crypto::PeerId& self,
            const net::Address& address, const std::string& country,
            util::SimDuration timeout = 10 * util::kSecond);

  /// Probes `target` for `cid`. Multiple probes may run concurrently
  /// (keyed by target+cid).
  void probe(const crypto::PeerId& target, const cid::Cid& cid,
             ProbeCallback on_done);

  // net::Host
  bool accept_inbound(const crypto::PeerId& from) override;
  void on_connection(net::ConnectionId, const crypto::PeerId&, bool) override;
  void on_disconnect(net::ConnectionId, const crypto::PeerId&) override;
  void on_message(net::ConnectionId conn, const crypto::PeerId& from,
                  const net::PayloadPtr& payload) override;

 private:
  struct Key {
    crypto::PeerId target;
    cid::Cid cid;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<crypto::PeerId>{}(k.target) ^
             (std::hash<cid::Cid>{}(k.cid) * 0x9e3779b97f4a7c15ull);
    }
  };
  struct Pending {
    ProbeCallback callback;
    sim::EventHandle timeout;
  };

  void finish(const Key& key, TpiOutcome outcome);

  net::Network& network_;
  crypto::PeerId self_;
  util::SimDuration timeout_;
  std::unordered_map<Key, Pending, KeyHash> pending_;
};

}  // namespace ipfsmon::attacks
