#include "attacks/content_indexer.hpp"

#include <unordered_set>

#include "dag/dag_node.hpp"

namespace ipfsmon::attacks {

std::string_view content_kind_name(ContentKind kind) {
  switch (kind) {
    case ContentKind::RawData:
      return "raw-data";
    case ContentKind::File:
      return "file";
    case ContentKind::Directory:
      return "directory";
    case ContentKind::OtherIpld:
      return "other-ipld";
    case ContentKind::Unresolvable:
      return "unresolvable";
  }
  return "unknown";
}

std::size_t IndexReport::count_of(ContentKind kind) const {
  std::size_t count = 0;
  for (const auto& item : items) {
    if (item.kind == kind) ++count;
  }
  return count;
}

double IndexReport::resolvable_share() const {
  if (items.empty()) return 0.0;
  return 1.0 - static_cast<double>(count_of(ContentKind::Unresolvable)) /
                   static_cast<double>(items.size());
}

std::size_t IndexReport::total_bytes() const {
  std::size_t bytes = 0;
  for (const auto& item : items) bytes += item.total_bytes;
  return bytes;
}

void ContentIndexer::index(const cid::Cid& target,
                           std::function<void(IndexedContent)> on_done) {
  ++fetches_issued_;
  fetcher_.fetch(target, [this, target, on_done = std::move(on_done)](
                             dag::BlockPtr root) {
    IndexedContent result;
    result.cid = target;
    if (root == nullptr) {
      result.kind = ContentKind::Unresolvable;
      if (on_done) on_done(std::move(result));
      return;
    }
    result.block_count = 1;
    result.total_bytes = root->size();

    switch (target.codec()) {
      case cid::Multicodec::Raw:
        result.kind = ContentKind::RawData;
        if (on_done) on_done(std::move(result));
        return;
      case cid::Multicodec::DagProtobuf:
        classify_dag_pb(target, root, std::move(on_done));
        return;
      default:
        result.kind = ContentKind::OtherIpld;
        if (on_done) on_done(std::move(result));
        return;
    }
  });
}

void ContentIndexer::classify_dag_pb(
    const cid::Cid& target, const dag::BlockPtr& root,
    std::function<void(IndexedContent)> on_done) {
  IndexedContent result;
  result.cid = target;
  const auto node = dag::DagNode::from_bytes(root->data());
  if (!node) {
    // dag-pb codec but unparseable payload: treat as opaque IPLD.
    result.kind = ContentKind::OtherIpld;
    result.block_count = 1;
    result.total_bytes = root->size();
    if (on_done) on_done(std::move(result));
    return;
  }

  if (node->kind == dag::DagNodeKind::Directory) {
    result.kind = ContentKind::Directory;
    result.block_count = 1;
    result.total_bytes = root->size();
    for (const auto& link : node->links) result.entries.push_back(link.name);
    if (on_done) on_done(std::move(result));
    return;
  }

  // A file: pull the whole DAG to size it (this is what "downloading and
  // indexing" costs the adversary).
  ++fetches_issued_;
  fetcher_.fetch_dag(target, [this, target, on_done = std::move(on_done)](
                                 std::size_t blocks, bool complete) {
    IndexedContent result;
    result.cid = target;
    result.kind = complete ? ContentKind::File : ContentKind::Unresolvable;
    result.block_count = blocks;
    // Sum the actual bytes now present in the fetcher's blockstore.
    std::size_t bytes = 0;
    const auto order = dag::traverse_bfs(target, [&](const cid::Cid& c) {
      return fetcher_.blockstore().get(c).get();
    });
    for (const auto& c : order) {
      if (const auto block = fetcher_.blockstore().get(c)) {
        bytes += block->size();
      }
    }
    result.total_bytes = bytes;
    if (on_done) on_done(std::move(result));
  });
}

void ContentIndexer::index_trace(const trace::Trace& trace,
                                 std::size_t max_items,
                                 std::function<void(IndexReport)> on_done) {
  // Harvest distinct request CIDs in order of first appearance.
  std::vector<cid::Cid> targets;
  std::unordered_set<cid::Cid> seen;
  for (const auto& e : trace.entries()) {
    if (!e.is_request()) continue;
    if (targets.size() >= max_items) break;
    if (seen.insert(e.cid).second) targets.push_back(e.cid);
  }

  auto report = std::make_shared<IndexReport>();
  auto remaining = std::make_shared<std::size_t>(targets.size());
  if (targets.empty()) {
    if (on_done) on_done(std::move(*report));
    return;
  }
  auto done = std::make_shared<std::function<void(IndexReport)>>(
      std::move(on_done));
  for (const auto& target : targets) {
    index(target, [report, remaining, done](IndexedContent item) {
      report->items.push_back(std::move(item));
      if (--*remaining == 0 && *done) (*done)(std::move(*report));
    });
  }
}

}  // namespace ipfsmon::attacks
