// A small embedded HTTP/1.1 server over POSIX sockets: one acceptor thread
// feeding a bounded connection queue drained by a fixed worker pool. Built
// for the query daemon, so the priorities are predictability and clean
// shutdown rather than raw connection volume:
//
//  * bounded accept queue — when all workers are busy and the queue is
//    full, new connections are refused with 503 instead of queueing
//    without limit;
//  * per-connection read/write timeouts (SO_RCVTIMEO/SO_SNDTIMEO), so a
//    stalled client cannot pin a worker;
//  * request-size limits enforced by the parser (431/413 responses);
//  * keep-alive with pipelining support, capped per connection;
//  * graceful drain: stop() closes the listener, lets workers finish the
//    queued and in-flight connections, then joins every thread.
//
// Counters are plain atomics (workers are concurrent); the query service
// mirrors them into the obs registry when rendering /metrics so they share
// the Prometheus endpoint with sim and scan metrics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "query/http.hpp"

namespace ipfsmon::query {

struct ServerOptions {
  /// Bind address; the daemon serves loopback by default.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (see HttpServer::port() after start()).
  std::uint16_t port = 0;
  std::size_t worker_threads = 4;
  /// Connections admitted but not yet picked up by a worker.
  std::size_t accept_queue_limit = 128;
  /// SO_RCVTIMEO / SO_SNDTIMEO per connection, milliseconds.
  int io_timeout_ms = 5000;
  /// Keep-alive requests served on one connection before closing.
  std::size_t max_requests_per_connection = 256;
  HttpLimits limits;
};

/// Monotonic server counters (snapshot via HttpServer::counters()).
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // accept queue full
  std::uint64_t requests = 0;              // requests answered (any status)
  std::uint64_t parse_errors = 0;          // 400/413/431/501 responses
  std::uint64_t timeouts = 0;              // read timed out mid-request
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(ServerOptions options, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns acceptor + workers. False on socket errors.
  bool start(std::string* error = nullptr);

  /// The bound port (resolves ephemeral port 0); valid after start().
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Graceful drain; idempotent, also called by the destructor.
  void stop();

  ServerCounters counters() const;
  /// Connections queued or being served right now.
  std::size_t in_flight() const { return in_flight_.load(); }

 private:
  /// An accepted connection plus its accept timestamp, which seeds the
  /// HttpRequest accepted_us/parsed_us metadata (span tracing).
  struct PendingConn {
    int fd = -1;
    std::int64_t accepted_us = 0;
  };

  void accept_loop();
  void worker_loop();
  void serve_connection(PendingConn conn);

  ServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_ready_;
  std::deque<PendingConn> pending_;  // accepted fds awaiting a worker

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace ipfsmon::query
