// A tiny blocking HTTP client for loopback use: the query tests drive the
// daemon end-to-end with it, and the throughput bench uses it as the load
// generator. One request per call, "Connection: close" framing.
//
// Connects carry a real timeout (non-blocking connect + poll — SO_SNDTIMEO
// does not bound connect()), and reads/writes are bounded by
// SO_RCVTIMEO/SNDTIMEO. http_get_retry() adds capped exponential-backoff
// retries mirroring net::BackoffPolicy / churn's dial_with_backoff
// discipline in wall-clock time, so shippers and bench harnesses survive a
// coordinator or daemon that is not up yet.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "query/http.hpp"

namespace ipfsmon::query {

/// Wall-clock twin of net::BackoffPolicy (same shape and defaults scaled
/// to milliseconds; jitter is omitted — a blocking client retries alone,
/// there is no thundering herd to spread).
struct HttpRetryPolicy {
  int initial_delay_ms = 100;
  double multiplier = 2.0;
  int max_delay_ms = 2000;
  /// Total attempts (first try included). 0 behaves like 1.
  std::size_t max_attempts = 6;
};

/// GET `target` from host:port; nullopt on connect/IO/parse failure.
/// `timeout_ms` bounds the connect and each read/write.
std::optional<HttpResponse> http_get(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& target,
                                     int timeout_ms = 5000,
                                     std::string* error = nullptr);

/// http_get with capped exponential-backoff retries: a failed connect or
/// exchange sleeps initial_delay_ms, then multiplier× (capped at
/// max_delay_ms) before the next attempt, up to max_attempts total.
/// `error` reports the last attempt's failure.
std::optional<HttpResponse> http_get_retry(const std::string& host,
                                           std::uint16_t port,
                                           const std::string& target,
                                           const HttpRetryPolicy& policy = {},
                                           int timeout_ms = 5000,
                                           std::string* error = nullptr);

/// Sends `bytes` verbatim and returns everything the server answers until
/// it closes (or the timeout hits). For malformed-request tests. When
/// `half_close` is set the write side shuts down after sending, signalling
/// an early client disconnect.
std::optional<std::string> raw_exchange(const std::string& host,
                                        std::uint16_t port,
                                        const std::string& bytes,
                                        int timeout_ms = 5000,
                                        bool half_close = false,
                                        std::string* error = nullptr);

}  // namespace ipfsmon::query
