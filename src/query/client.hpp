// A tiny blocking HTTP client for loopback use: the query tests drive the
// daemon end-to-end with it, and the throughput bench uses it as the load
// generator. One request per call, "Connection: close" framing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "query/http.hpp"

namespace ipfsmon::query {

/// GET `target` from host:port; nullopt on connect/IO/parse failure.
std::optional<HttpResponse> http_get(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& target,
                                     int timeout_ms = 5000,
                                     std::string* error = nullptr);

/// Sends `bytes` verbatim and returns everything the server answers until
/// it closes (or the timeout hits). For malformed-request tests. When
/// `half_close` is set the write side shuts down after sending, signalling
/// an early client disconnect.
std::optional<std::string> raw_exchange(const std::string& host,
                                        std::uint16_t port,
                                        const std::string& bytes,
                                        int timeout_ms = 5000,
                                        bool half_close = false,
                                        std::string* error = nullptr);

}  // namespace ipfsmon::query
