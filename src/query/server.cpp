#include "query/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/span.hpp"

namespace ipfsmon::query {

namespace {

void set_io_timeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Sends the whole buffer; false on error/timeout.
bool send_all(int fd, std::string_view data, std::atomic<std::uint64_t>* sent) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
    sent->fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("inet_pton " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) return fail("pipe");

  stopping_.store(false);
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  const std::size_t workers = std::max<std::size_t>(1, options_.worker_threads);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Wake the acceptor's poll(); it closes the listener on exit.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();
  // Workers drain whatever the acceptor already admitted, then exit.
  queue_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (int* fd : {&wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

ServerCounters HttpServer::counters() const {
  ServerCounters c;
  c.connections_accepted = connections_accepted_.load();
  c.connections_rejected = connections_rejected_.load();
  c.requests = requests_.load();
  c.parse_errors = parse_errors_.load();
  c.timeouts = timeouts_.load();
  c.bytes_read = bytes_read_.load();
  c.bytes_written = bytes_written_.load();
  return c;
}

void HttpServer::accept_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (stopping_.load()) break;
    if (ready <= 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() < options_.accept_queue_limit) {
        pending_.push_back(PendingConn{fd, obs::wall_micros_now()});
        in_flight_.fetch_add(1);
        admitted = true;
      }
    }
    if (admitted) {
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      queue_ready_.notify_one();
    } else {
      // Shed load visibly: a one-shot 503 instead of an unbounded queue.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      set_io_timeouts(fd, options_.io_timeout_ms);
      const std::string payload = serialize_response(
          error_response(503, "server overloaded"), /*keep_alive=*/false);
      send_all(fd, payload, &bytes_written_);
      ::close(fd);
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::worker_loop() {
  for (;;) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_ready_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load();
      });
      if (pending_.empty()) return;  // stopping and drained
      conn = pending_.front();
      pending_.pop_front();
    }
    serve_connection(conn);
    in_flight_.fetch_sub(1);
  }
}

void HttpServer::serve_connection(PendingConn conn) {
  const int fd = conn.fd;
  // First request on the connection dates from accept; each keep-alive
  // successor dates from the end of the previous response.
  std::int64_t request_epoch_us = conn.accepted_us;
  set_io_timeouts(fd, options_.io_timeout_ms);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  std::size_t served = 0;
  char chunk[8192];
  bool mid_request = false;  // bytes of an unfinished request are buffered
  for (;;) {
    // Drain every complete (possibly pipelined) request already buffered.
    bool close_connection = false;
    for (;;) {
      if (buffer.empty()) break;
      HttpRequest request;
      std::size_t consumed = 0;
      const ParseStatus status =
          parse_request(buffer, options_.limits, &request, &consumed);
      if (status == ParseStatus::kNeedMore) {
        mid_request = true;
        break;
      }
      mid_request = false;
      if (status != ParseStatus::kDone) {
        const int code = status == ParseStatus::kTooLarge      ? 431
                         : status == ParseStatus::kUnsupported ? 501
                                                               : 400;
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        requests_.fetch_add(1, std::memory_order_relaxed);
        send_all(fd,
                 serialize_response(error_response(code, "malformed request"),
                                    /*keep_alive=*/false),
                 &bytes_written_);
        close_connection = true;
        break;
      }
      buffer.erase(0, consumed);
      request.accepted_us = request_epoch_us;
      request.parsed_us = obs::wall_micros_now();
      const HttpResponse response = handler_(request);
      const bool keep_alive = request.keep_alive() &&
                              ++served < options_.max_requests_per_connection &&
                              !stopping_.load();
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (!send_all(fd, serialize_response(response, keep_alive),
                    &bytes_written_)) {
        close_connection = true;
        break;
      }
      if (!keep_alive) {
        close_connection = true;
        break;
      }
      request_epoch_us = obs::wall_micros_now();
    }
    if (close_connection) break;

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // client closed (possibly mid-request: just drop it)
    if (n < 0) {
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && mid_request) {
        // Read timeout with half a request buffered: tell the client.
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        send_all(fd,
                 serialize_response(error_response(408, "request timeout"),
                                    /*keep_alive=*/false),
                 &bytes_written_);
      }
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    bytes_read_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
  }
  ::close(fd);
}

}  // namespace ipfsmon::query
