#include "query/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ipfsmon::query {

namespace {

int connect_to(const std::string& host, std::uint16_t port, int timeout_ms,
               std::string* error) {
  auto fail = [&](const char* what, int fd) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (fd >= 0) ::close(fd);
    return -1;
  };

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket", fd);
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton", fd);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("connect", fd);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string recv_until_close(int fd) {
  std::string out;
  char chunk[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // closed, error, or timeout — return what we have
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace

std::optional<HttpResponse> http_get(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& target, int timeout_ms,
                                     std::string* error) {
  const int fd = connect_to(host, port, timeout_ms, error);
  if (fd < 0) return std::nullopt;
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    if (error != nullptr) *error = "send failed";
    ::close(fd);
    return std::nullopt;
  }
  const std::string raw = recv_until_close(fd);
  ::close(fd);
  auto response = parse_response(raw);
  if (!response && error != nullptr) *error = "unparseable response";
  return response;
}

std::optional<std::string> raw_exchange(const std::string& host,
                                        std::uint16_t port,
                                        const std::string& bytes,
                                        int timeout_ms, bool half_close,
                                        std::string* error) {
  const int fd = connect_to(host, port, timeout_ms, error);
  if (fd < 0) return std::nullopt;
  if (!bytes.empty() && !send_all(fd, bytes)) {
    if (error != nullptr) *error = "send failed";
    ::close(fd);
    return std::nullopt;
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  const std::string raw = recv_until_close(fd);
  ::close(fd);
  return raw;
}

}  // namespace ipfsmon::query
