#include "query/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ipfsmon::query {

namespace {

int connect_to(const std::string& host, std::uint16_t port, int timeout_ms,
               std::string* error) {
  auto fail = [&](const char* what, int fd) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (fd >= 0) ::close(fd);
    return -1;
  };

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket", fd);
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton", fd);
  }
  // SO_SNDTIMEO does not bound connect(); a daemon that is down but
  // dropping SYNs would block for the kernel's default (minutes). Connect
  // non-blocking and poll with the caller's timeout instead.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (timeout_ms > 0 && flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) return fail("connect", fd);
      pollfd pfd{fd, POLLOUT, 0};
      int ready = 0;
      do {
        ready = ::poll(&pfd, 1, timeout_ms);
      } while (ready < 0 && errno == EINTR);
      if (ready <= 0) {
        errno = ready == 0 ? ETIMEDOUT : errno;
        return fail("connect", fd);
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        errno = so_error != 0 ? so_error : errno;
        return fail("connect", fd);
      }
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    return fail("connect", fd);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string recv_until_close(int fd) {
  std::string out;
  char chunk[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // closed, error, or timeout — return what we have
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace

std::optional<HttpResponse> http_get(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& target, int timeout_ms,
                                     std::string* error) {
  const int fd = connect_to(host, port, timeout_ms, error);
  if (fd < 0) return std::nullopt;
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    if (error != nullptr) *error = "send failed";
    ::close(fd);
    return std::nullopt;
  }
  const std::string raw = recv_until_close(fd);
  ::close(fd);
  auto response = parse_response(raw);
  if (!response && error != nullptr) *error = "unparseable response";
  return response;
}

std::optional<HttpResponse> http_get_retry(const std::string& host,
                                           std::uint16_t port,
                                           const std::string& target,
                                           const HttpRetryPolicy& policy,
                                           int timeout_ms, std::string* error) {
  const std::size_t attempts = std::max<std::size_t>(1, policy.max_attempts);
  int delay_ms = policy.initial_delay_ms;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      delay_ms = std::min(policy.max_delay_ms,
                          static_cast<int>(delay_ms * policy.multiplier));
    }
    auto response = http_get(host, port, target, timeout_ms, error);
    if (response) return response;
  }
  return std::nullopt;
}

std::optional<std::string> raw_exchange(const std::string& host,
                                        std::uint16_t port,
                                        const std::string& bytes,
                                        int timeout_ms, bool half_close,
                                        std::string* error) {
  const int fd = connect_to(host, port, timeout_ms, error);
  if (fd < 0) return std::nullopt;
  if (!bytes.empty() && !send_all(fd, bytes)) {
    if (error != nullptr) *error = "send failed";
    ::close(fd);
    return std::nullopt;
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  const std::string raw = recv_until_close(fd);
  ::close(fd);
  return raw;
}

}  // namespace ipfsmon::query
