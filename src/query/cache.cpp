#include "query/cache.hpp"

namespace ipfsmon::query {

bool LruCache::get(const std::string& key, CachedResponse* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  ++hits_;
  *out = it->second->value;
  return true;
}

void LruCache::put(const std::string& key, CachedResponse value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(Entry{key, std::move(value)});
  index_[key] = order_.begin();
  if (index_.size() > capacity_) {
    index_.erase(order_.back().key);
    order_.pop_back();
    ++evictions_;
  }
}

void LruCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  order_.clear();
  index_.clear();
}

std::size_t LruCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::uint64_t LruCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t LruCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t LruCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace ipfsmon::query
