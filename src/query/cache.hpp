// A thread-safe LRU cache for rendered query responses. Keys embed the
// store's manifest fingerprint (see QueryService), so a store reload
// naturally invalidates every stale entry without a flush broadcast —
// stale keys simply stop being asked for and age out of the LRU order.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ipfsmon::query {

struct CachedResponse {
  std::string body;
  std::string content_type = "application/json";
  std::string source;  // "rollup" | "scan" | "mixed" provenance header
};

class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// True and fills `out` on a hit (the entry becomes most-recent).
  bool get(const std::string& key, CachedResponse* out);

  void put(const std::string& key, CachedResponse value);

  void clear();

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    CachedResponse value;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ipfsmon::query
