// Minimal HTTP/1.1 message handling for the query daemon: a request parser
// with hard size limits (the server never buffers an unbounded request), a
// response serializer, and a response parser for the loopback client the
// tests and benches use. No external dependencies — plain strings over
// POSIX sockets (see server.hpp / client.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ipfsmon::query {

/// Buffering limits enforced while parsing a request. Oversized input is
/// rejected deterministically instead of growing the connection buffer.
struct HttpLimits {
  std::size_t max_request_line = 4096;
  std::size_t max_header_bytes = 8192;  // all header lines together
  std::size_t max_body_bytes = 64 * 1024;
};

struct HttpRequest {
  std::string method;
  std::string target;  // raw request target ("/v1/stats?min_t=0")
  std::string path;    // decoded path without the query string
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  // names lowercased
  std::map<std::string, std::string> params;  // decoded query parameters
  std::string body;

  /// Socket-layer timing metadata in obs::wall_micros_now() microseconds,
  /// filled by the server (not the parser): when the connection/request
  /// was accepted and when parsing completed. 0 = unknown (requests built
  /// directly by tests/benches). Feeds the http.ingest span.
  std::int64_t accepted_us = 0;
  std::int64_t parsed_us = 0;

  /// First header value by lowercase name; nullptr when absent.
  const std::string* header(std::string_view name) const;
  /// HTTP/1.1 defaults to keep-alive; "Connection: close" (or 1.0) opts out.
  bool keep_alive() const;
};

enum class ParseStatus {
  kNeedMore,     // incomplete — read more bytes and retry
  kDone,         // one full request parsed; `consumed` bytes used
  kBadRequest,   // malformed request line / headers / body framing
  kTooLarge,     // a HttpLimits cap was exceeded
  kUnsupported,  // not an HTTP/1.x request we can answer
};

/// Attempts to parse one request from the front of `buffer`. On kDone,
/// `*consumed` is the byte count of the request (the caller erases it and
/// may find a pipelined successor behind it). kNeedMore never consumes.
ParseStatus parse_request(std::string_view buffer, const HttpLimits& limits,
                          HttpRequest* out, std::size_t* consumed);

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;  // extra headers
  std::string body;
};

std::string_view status_reason(int status);

/// Serializes status line + headers + body; Content-Length always present,
/// Connection echoes `keep_alive`.
std::string serialize_response(const HttpResponse& response, bool keep_alive);

/// Convenience JSON error body ({"error":"..."}).
HttpResponse error_response(int status, std::string_view message);

/// Parses a complete response (as read until EOF by the client); nullopt on
/// malformed input.
std::optional<HttpResponse> parse_response(std::string_view data);

/// Percent-decodes %XX sequences (and '+' as space in query strings).
std::string url_decode(std::string_view text, bool plus_as_space = false);

}  // namespace ipfsmon::query
