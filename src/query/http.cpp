#include "query/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/strings.hpp"

namespace ipfsmon::query {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_token(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_')) {
      return false;
    }
  }
  return true;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void parse_query_params(std::string_view query,
                        std::map<std::string, std::string>* out) {
  std::size_t pos = 0;
  while (pos <= query.size()) {
    const std::size_t amp = std::min(query.find('&', pos), query.size());
    const std::string_view pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        (*out)[url_decode(pair, true)] = "";
      } else {
        (*out)[url_decode(pair.substr(0, eq), true)] =
            url_decode(pair.substr(eq + 1), true);
      }
    }
    if (amp == query.size()) break;
    pos = amp + 1;
  }
}

/// Splits headers text (between request line and blank line) into
/// lowercase-name/value pairs. Returns false on malformed lines.
bool parse_header_lines(std::string_view text,
                        std::vector<std::pair<std::string, std::string>>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol == text.size() ? text.size() : eol + 2;
    if (line.empty()) continue;
    // No obs-fold continuation lines; a leading blank is malformed.
    if (line.front() == ' ' || line.front() == '\t') return false;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    const std::string_view name = line.substr(0, colon);
    if (!is_token(name)) return false;
    out->emplace_back(to_lower(name), std::string(trim(line.substr(colon + 1))));
  }
  return true;
}

}  // namespace

std::string url_decode(std::string_view text, bool plus_as_space) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '%' && i + 2 < text.size()) {
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    if (plus_as_space && c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const std::string* HttpRequest::header(std::string_view name) const {
  const std::string lower = to_lower(name);
  for (const auto& [key, value] : headers) {
    if (key == lower) return &value;
  }
  return nullptr;
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("connection");
  if (connection != nullptr) {
    const std::string value = to_lower(*connection);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  return version == "HTTP/1.1";
}

ParseStatus parse_request(std::string_view buffer, const HttpLimits& limits,
                          HttpRequest* out, std::size_t* consumed) {
  // --- Request line --------------------------------------------------------
  const std::size_t line_end = buffer.find("\r\n");
  if (line_end == std::string_view::npos) {
    return buffer.size() > limits.max_request_line ? ParseStatus::kTooLarge
                                                   : ParseStatus::kNeedMore;
  }
  if (line_end > limits.max_request_line) return ParseStatus::kTooLarge;
  const std::string_view request_line = buffer.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return ParseStatus::kBadRequest;
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  // Methods are upper-case tokens; anything else is not an HTTP verb.
  if (!is_token(method) ||
      std::any_of(method.begin(), method.end(), [](unsigned char c) {
        return std::islower(c) != 0;
      })) {
    return ParseStatus::kBadRequest;
  }
  if (target.empty() || target.front() != '/') return ParseStatus::kBadRequest;
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return ParseStatus::kUnsupported;
  }

  // --- Headers -------------------------------------------------------------
  const std::size_t headers_begin = line_end + 2;
  const std::size_t blank = buffer.find("\r\n\r\n", line_end);
  if (blank == std::string_view::npos) {
    return buffer.size() - headers_begin > limits.max_header_bytes
               ? ParseStatus::kTooLarge
               : ParseStatus::kNeedMore;
  }
  const std::size_t headers_end = blank + 2;  // keep the final CRLF pair off
  if (headers_end - headers_begin > limits.max_header_bytes) {
    return ParseStatus::kTooLarge;
  }

  HttpRequest request;
  request.method = std::string(method);
  request.target = std::string(target);
  request.version = std::string(version);
  if (!parse_header_lines(
          buffer.substr(headers_begin, headers_end - headers_begin),
          &request.headers)) {
    return ParseStatus::kBadRequest;
  }

  // --- Body framing (Content-Length only; no chunked support) --------------
  std::size_t body_len = 0;
  if (const std::string* te = request.header("transfer-encoding");
      te != nullptr) {
    return ParseStatus::kUnsupported;
  }
  if (const std::string* cl = request.header("content-length");
      cl != nullptr) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') return ParseStatus::kBadRequest;
    if (parsed > limits.max_body_bytes) return ParseStatus::kTooLarge;
    body_len = static_cast<std::size_t>(parsed);
  }
  const std::size_t body_begin = blank + 4;
  if (buffer.size() - body_begin < body_len) return ParseStatus::kNeedMore;
  request.body = std::string(buffer.substr(body_begin, body_len));

  // --- Target decomposition ------------------------------------------------
  const std::size_t qmark = request.target.find('?');
  request.path = url_decode(request.target.substr(0, qmark));
  if (qmark != std::string::npos) {
    parse_query_params(
        std::string_view(request.target).substr(qmark + 1), &request.params);
  }

  *out = std::move(request);
  *consumed = body_begin + body_len;
  return ParseStatus::kDone;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response, bool keep_alive) {
  std::string out = util::format("HTTP/1.1 %d ", response.status);
  out += status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += util::format("\r\nContent-Length: %zu", response.body.size());
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  for (const auto& [name, value] : response.headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse error_response(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":\"" + std::string(message) + "\"}";
  return response;
}

std::optional<HttpResponse> parse_response(std::string_view data) {
  const std::size_t line_end = data.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  const std::string_view status_line = data.substr(0, line_end);
  if (status_line.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    return std::nullopt;
  }
  HttpResponse response;
  response.status =
      std::atoi(std::string(status_line.substr(sp + 1, 3)).c_str());
  const std::size_t blank = data.find("\r\n\r\n");
  if (blank == std::string_view::npos) return std::nullopt;
  std::vector<std::pair<std::string, std::string>> headers;
  if (!parse_header_lines(data.substr(line_end + 2, blank - line_end),
                          &headers)) {
    return std::nullopt;
  }
  std::size_t body_len = data.size() - (blank + 4);
  for (const auto& [name, value] : headers) {
    if (name == "content-type") {
      response.content_type = value;
    } else if (name == "content-length") {
      body_len = std::min<std::size_t>(
          body_len, std::strtoull(value.c_str(), nullptr, 10));
    } else {
      response.headers.emplace_back(name, value);
    }
  }
  response.body = std::string(data.substr(blank + 4, body_len));
  return response;
}

}  // namespace ipfsmon::query
