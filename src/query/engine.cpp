#include "query/engine.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "analysis/popularity.hpp"
#include "obs/exporters.hpp"
#include "obs/span_export.hpp"
#include "tracestore/bloom.hpp"
#include "util/strings.hpp"

namespace ipfsmon::query {

namespace {

void add_entry(RangeStats* out, const trace::TraceEntry& entry) {
  ++out->total;
  switch (entry.type) {
    case bitswap::WantType::WantHave: ++out->want_have; break;
    case bitswap::WantType::WantBlock: ++out->want_block; break;
    case bitswap::WantType::Cancel: ++out->cancels; break;
  }
  if (entry.is_duplicate()) ++out->duplicates;
  if (entry.is_rebroadcast()) ++out->rebroadcasts;
  if (entry.is_clean()) ++out->clean;
}

void add_bucket(RangeStats* out, const tracestore::RollupBucket& bucket) {
  out->total += bucket.entries();
  out->want_have += bucket.want_have;
  out->want_block += bucket.want_block;
  out->cancels += bucket.cancels;
  out->duplicates += bucket.duplicates;
  out->rebroadcasts += bucket.rebroadcasts;
  out->clean += bucket.clean;
}

bool parse_i64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.front() == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

/// Reads an optional int64 query param; false only on a malformed value.
bool read_time_param(const HttpRequest& request, const char* name,
                     util::SimTime* inout) {
  const auto it = request.params.find(name);
  if (it == request.params.end()) return true;
  std::int64_t value = 0;
  if (!parse_i64(it->second, &value)) return false;
  *inout = value;
  return true;
}

/// Wall-clock fields for stores ingested from real captures (STOREMETA
/// present): the epoch anchoring SimTime 0 plus the queried range rendered
/// as ISO 8601. Empty for simulated stores, so their JSON is unchanged.
std::string render_wall_fields(const tracestore::TraceStore& store,
                               util::SimTime min_t, util::SimTime max_t) {
  if (!store.meta()) return {};
  const util::WallNanos epoch = store.meta()->wall_epoch_ns;
  return util::format(
      ",\"wall_epoch_ns\":%lld,\"wall_min\":\"%s\",\"wall_max\":\"%s\"",
      static_cast<long long>(epoch),
      util::format_wall_time(epoch + min_t).c_str(),
      util::format_wall_time(epoch + max_t).c_str());
}

std::string render_stats_json(const tracestore::TraceStore& store,
                              const RangeStats& stats, util::SimTime min_t,
                              util::SimTime max_t) {
  return util::format(
      "{\"min_time\":%lld,\"max_time\":%lld,\"total\":%llu,"
      "\"requests\":%llu,\"want_have\":%llu,\"want_block\":%llu,"
      "\"cancels\":%llu,\"duplicates\":%llu,\"rebroadcasts\":%llu,"
      "\"clean\":%llu%s}",
      static_cast<long long>(min_t), static_cast<long long>(max_t),
      static_cast<unsigned long long>(stats.total),
      static_cast<unsigned long long>(stats.want_have + stats.want_block),
      static_cast<unsigned long long>(stats.want_have),
      static_cast<unsigned long long>(stats.want_block),
      static_cast<unsigned long long>(stats.cancels),
      static_cast<unsigned long long>(stats.duplicates),
      static_cast<unsigned long long>(stats.rebroadcasts),
      static_cast<unsigned long long>(stats.clean),
      render_wall_fields(store, min_t, max_t).c_str());
}

std::string_view json_want_type(bitswap::WantType type) {
  switch (type) {
    case bitswap::WantType::WantHave: return "want_have";
    case bitswap::WantType::WantBlock: return "want_block";
    case bitswap::WantType::Cancel: return "cancel";
  }
  return "unknown";
}

std::uint64_t hash_u64(std::uint64_t seed, std::uint64_t value) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return tracestore::fnv1a64(util::BytesView(bytes, 8), seed);
}

std::uint64_t hash_str(std::uint64_t seed, std::string_view text) {
  return tracestore::fnv1a64(
      util::BytesView(reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size()),
      seed);
}

/// Collapses request paths onto a bounded label set for the per-endpoint
/// latency histograms (peer ids would explode the cardinality).
std::string endpoint_label(const std::string& path) {
  if (path == "/healthz" || path == "/metrics" || path == "/v1/stats" ||
      path == "/v1/popularity" || path == "/v1/segments" ||
      path == "/v1/monitors" || path == "/debug/spans") {
    return path;
  }
  const std::string_view prefix = "/v1/peers/";
  if (path.compare(0, std::min(path.size(), prefix.size()), prefix) == 0) {
    return "/v1/peers/*";
  }
  return "other";
}

}  // namespace

std::string_view to_string(StatsSource source) {
  switch (source) {
    case StatsSource::kRollup: return "rollup";
    case StatsSource::kMixed: return "mixed";
    case StatsSource::kScan: return "scan";
  }
  return "unknown";
}

QueryService::QueryService(QueryOptions options)
    : options_(std::move(options)),
      executor_(options_.scan_threads),
      cache_(options_.cache_capacity) {
  options_.store.obs = &obs_;
  // The executor shares the store's persistent pool when scan_threads is
  // 0; size that pool from the same knob so one setting governs both.
  options_.store.scan_threads = options_.scan_threads;
  obs_.tracer.configure(options_.tracing);
}

std::unique_ptr<QueryService> QueryService::open(const std::string& dir,
                                                 QueryOptions options,
                                                 std::string* error) {
  std::unique_ptr<QueryService> service(new QueryService(std::move(options)));
  std::lock_guard<std::mutex> lock(service->mu_);
  if (!service->open_store(dir, error)) return nullptr;
  return service;
}

bool QueryService::open_store(const std::string& dir, std::string* error) {
  auto store = tracestore::TraceStore::open(dir, options_.store, error);
  if (!store) return false;
  dir_ = dir;
  store_ = std::move(store);

  rollups_.clear();
  rollups_.resize(store_->segments().size());
  std::uint64_t fp = hash_str(0xcbf29ce484222325ull, "ipfsmon-query-v1");
  for (std::size_t i = 0; i < store_->segments().size(); ++i) {
    const auto& segment = store_->segments()[i];
    fp = hash_str(fp, segment.file);
    fp = hash_u64(fp, segment.footer.entry_count);
    fp = hash_u64(fp, static_cast<std::uint64_t>(segment.footer.min_time));
    fp = hash_u64(fp, static_cast<std::uint64_t>(segment.footer.max_time));
    fp = hash_u64(fp, segment.footer.body_checksum);

    auto rollup = tracestore::read_rollup_file(
        tracestore::rollup_path_for(store_->segment_path(i)));
    // A sidecar disagreeing with its segment's footer is as good as absent.
    if (rollup && (rollup->entry_count != segment.footer.entry_count ||
                   rollup->bucket_width <= 0)) {
      store_->warn("rollup sidecar mismatch for " + segment.file);
      rollup.reset();
    }
    rollups_[i] = std::move(rollup);
  }
  fingerprint_ = fp;
  obs_.metrics
      .gauge("ipfsmon_query_store_segments", "segments in the served store")
      .set(static_cast<double>(store_->segments().size()));
  obs_.metrics
      .gauge("ipfsmon_query_store_rollups", "segments with a valid rollup")
      .set(static_cast<double>(rollups_loaded_locked()));
  return true;
}

bool QueryService::reload(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  obs_.metrics
      .counter("ipfsmon_query_reloads_total", "store reloads served")
      .inc();
  return open_store(dir_, error);
}

void QueryService::attach_server(const HttpServer* server) {
  std::lock_guard<std::mutex> lock(mu_);
  server_ = server;
  mirrored_ = ServerCounters{};
}

void QueryService::attach_federation(FederationSource* source) {
  std::lock_guard<std::mutex> lock(mu_);
  federation_ = source;
}

std::size_t QueryService::rollups_loaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rollups_loaded_locked();
}

std::size_t QueryService::rollups_loaded_locked() const {
  std::size_t n = 0;
  for (const auto& rollup : rollups_) {
    if (rollup.has_value()) ++n;
  }
  return n;
}

RangeStats QueryService::stats_between(util::SimTime min_t, util::SimTime max_t,
                                       StatsSource* source) {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_between_locked(min_t, max_t, source);
}

RangeStats QueryService::stats_by_scan(util::SimTime min_t,
                                       util::SimTime max_t) {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_by_scan_locked(min_t, max_t);
}

RangeStats QueryService::stats_by_scan_locked(util::SimTime min_t,
                                              util::SimTime max_t) {
  RangeStats out;
  tracestore::ScanQuery scan_query;
  scan_query.min_time = min_t;
  scan_query.max_time = max_t;
  run_scan(scan_query, [&out](const trace::TraceEntry& entry) {
    add_entry(&out, entry);
  });
  return out;
}

tracestore::ScanStats QueryService::run_scan(
    const tracestore::ScanQuery& query,
    const std::function<void(const trace::TraceEntry&)>& visit) {
  obs::Span span = obs_.tracer.start_span("query.scan", obs_.tracer.current());
  tracestore::ScanProfile profile;
  const bool profiled = span.active();
  const tracestore::ScanStats stats =
      executor_.scan(*store_, query, visit, profiled ? &profile : nullptr);
  if (profiled) {
    span.set_attr("segments_total",
                  static_cast<std::uint64_t>(stats.segments_total));
    span.set_attr("segments_scanned",
                  static_cast<std::uint64_t>(stats.segments_scanned));
    span.set_attr("pruned_time",
                  static_cast<std::uint64_t>(stats.segments_pruned_time));
    span.set_attr("pruned_bloom",
                  static_cast<std::uint64_t>(stats.segments_pruned_bloom));
    span.set_attr("entries_matched", stats.entries_matched);
    obs_.tracer.add_span(
        "scan.prune", span.context(), 0, 0,
        {{"segments", std::to_string(stats.segments_total)},
         {"pruned", std::to_string(stats.segments_pruned_time +
                                   stats.segments_pruned_bloom)}},
        profile.prune_start_us, profile.prune_end_us);
    for (const auto& seg : profile.segments) {
      obs_.tracer.add_span(
          "scan.segment", span.context(), 0, 0,
          {{"file", seg.file},
           {"decode_us", std::to_string(seg.decode_us)},
           {"match_us", std::to_string(seg.match_us)},
           {"entries", std::to_string(seg.entries)},
           {"matched", std::to_string(seg.matched)}},
          seg.start_us, seg.end_us);
    }
  }
  return stats;
}

RangeStats QueryService::stats_between_locked(util::SimTime min_t,
                                              util::SimTime max_t,
                                              StatsSource* source) {
  RangeStats out;
  bool used_rollup = false;
  bool used_decode = false;
  auto& rollup_segments = obs_.metrics.counter(
      "ipfsmon_query_stats_rollup_segments_total",
      "segments answered from rollup sidecars");
  auto& decoded_segments = obs_.metrics.counter(
      "ipfsmon_query_stats_decoded_segments_total",
      "segments needing entry decode (boundary buckets or missing rollup)");

  // Counts entries of segment `index` whose timestamps fall in any of
  // `windows` (inclusive bounds) — the boundary-bucket / no-rollup path.
  auto decode_windows =
      [&](std::size_t index,
          const std::vector<std::pair<util::SimTime, util::SimTime>>&
              windows) {
        obs::Span dspan =
            obs_.tracer.start_span("segment.decode", obs_.tracer.current());
        if (dspan.active()) {
          dspan.set_attr("file", store_->segments()[index].file);
          dspan.set_attr("windows",
                         static_cast<std::uint64_t>(windows.size()));
        }
        auto reader = tracestore::SegmentReader::open(
            store_->segment_path(index), store_->open_options());
        if (!reader) {
          // Mirror ScanExecutor: a corrupt segment is skipped, loudly.
          store_->warn("skipping unreadable segment " +
                       store_->segments()[index].file);
          return;
        }
        trace::TraceEntry entry;
        while (reader->next(entry)) {
          for (const auto& [lo, hi] : windows) {
            if (entry.timestamp >= lo && entry.timestamp <= hi) {
              add_entry(&out, entry);
              break;
            }
          }
        }
        used_decode = true;
        decoded_segments.inc();
      };

  for (std::size_t i = 0; i < store_->segments().size(); ++i) {
    const auto& footer = store_->segments()[i].footer;
    if (!footer.overlaps(min_t, max_t)) continue;
    const auto& rollup = rollups_[i];
    if (!options_.use_rollups || !rollup) {
      decode_windows(i, {{min_t, max_t}});
      continue;
    }
    if (footer.min_time >= min_t && footer.max_time <= max_t) {
      // Whole segment inside the range: rollup totals are exact.
      for (const auto& bucket : rollup->buckets) add_bucket(&out, bucket);
      used_rollup = true;
      rollup_segments.inc();
      continue;
    }
    // Partial overlap: fully-covered buckets come from the rollup; only the
    // boundary buckets (the ones the range cuts through) need entries.
    std::vector<std::pair<util::SimTime, util::SimTime>> windows;
    bool bucket_from_rollup = false;
    for (const auto& bucket : rollup->buckets) {
      const util::SimTime lo = bucket.start;
      const util::SimTime hi = bucket.start + rollup->bucket_width - 1;
      if (hi < min_t || lo > max_t) continue;
      if (lo >= min_t && hi <= max_t) {
        add_bucket(&out, bucket);
        bucket_from_rollup = true;
      } else {
        windows.emplace_back(std::max(lo, min_t), std::min(hi, max_t));
      }
    }
    if (bucket_from_rollup) {
      used_rollup = true;
      rollup_segments.inc();
    }
    if (!windows.empty()) decode_windows(i, windows);
  }

  if (source != nullptr) {
    *source = used_decode
                  ? (used_rollup ? StatsSource::kMixed : StatsSource::kScan)
                  : StatsSource::kRollup;
  }
  return out;
}

HttpResponse QueryService::handle(const HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  obs_.metrics
      .counter("ipfsmon_query_http_requests_total", "HTTP requests routed")
      .inc();
  const std::int64_t started_us = obs::wall_micros_now();
  // Root of the request's trace; cache/scan/segment spans parent here via
  // the scoped implicit context (safe: everything below holds mu_).
  obs::Span span = obs_.tracer.start_trace("http.request");
  HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response = error_response(405, "only GET is supported");
  } else {
    if (span.active()) {
      span.set_attr("method", request.method);
      span.set_attr("path", request.path);
      if (request.accepted_us > 0 && request.parsed_us >= request.accepted_us) {
        // Accept→parse happened in the socket layer, before this span
        // existed; attach it retroactively with the measured timestamps.
        obs_.tracer.add_span("http.ingest", span.context(), 0, 0, {},
                             request.accepted_us, request.parsed_us);
      }
    }
    obs::ScopedContext scope(obs_.tracer, span.context());
    response = route(request);
  }
  const std::int64_t duration_us = obs::wall_micros_now() - started_us;
  const std::string endpoint = endpoint_label(request.path);
  obs_.metrics
      .histogram("ipfsmon_query_http_duration_micros",
                 obs::exponential_buckets(25.0, 2.0, 14),
                 "request handling latency in microseconds, per endpoint",
                 "endpoint=\"" + endpoint + "\"")
      .observe(static_cast<double>(duration_us));
  response.headers.emplace_back("X-Duration-Micros",
                                std::to_string(duration_us));
  if (span.active()) {
    span.set_attr("endpoint", endpoint);
    span.set_attr("status", static_cast<std::uint64_t>(response.status));
  }
  return response;
}

HttpResponse QueryService::route(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/healthz") return handle_healthz();
  if (path == "/metrics") return handle_metrics();
  if (path == "/v1/stats") return handle_stats(request);
  if (path == "/v1/popularity") return handle_popularity(request);
  if (path == "/v1/segments") return handle_segments();
  if (path == "/v1/monitors") return handle_monitors();
  if (path == "/debug/spans") return handle_debug_spans(request);
  const std::string_view prefix = "/v1/peers/";
  const std::string_view suffix = "/wants";
  if (path.size() > prefix.size() + suffix.size() &&
      path.compare(0, prefix.size(), prefix) == 0 &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return handle_peer_wants(
        request, path.substr(prefix.size(),
                             path.size() - prefix.size() - suffix.size()));
  }
  return error_response(404, "no such endpoint");
}

HttpResponse QueryService::handle_healthz() {
  std::string ingested;
  if (store_->meta()) {
    ingested = util::format(
        ",\"wall_epoch\":\"%s\",\"capture\":\"%s\"",
        util::format_wall_time(store_->meta()->wall_epoch_ns).c_str(),
        store_->meta()->source.c_str());
  }
  HttpResponse response;
  response.body = util::format(
      "{\"status\":\"ok\",\"segments\":%zu,\"entries\":%llu,"
      "\"rollups\":%zu,\"warnings\":%zu%s}",
      store_->segments().size(),
      static_cast<unsigned long long>(store_->total_entries()),
      rollups_loaded_locked(), store_->warnings().size(), ingested.c_str());
  return response;
}

HttpResponse QueryService::handle_metrics() {
  // Fold the socket-layer atomics and the cache counters into the registry
  // by delta, so one Prometheus page covers serving + scanning + any sim
  // metrics recorded into the same registry.
  if (server_ != nullptr) {
    const ServerCounters now = server_->counters();
    auto mirror = [this](const char* name, const char* help,
                         std::uint64_t now_value, std::uint64_t* last) {
      obs_.metrics.counter(name, help).inc(now_value - *last);
      *last = now_value;
    };
    mirror("ipfsmon_query_server_connections_total", "connections accepted",
           now.connections_accepted, &mirrored_.connections_accepted);
    mirror("ipfsmon_query_server_rejected_total",
           "connections refused with 503 (accept queue full)",
           now.connections_rejected, &mirrored_.connections_rejected);
    mirror("ipfsmon_query_server_requests_total", "HTTP requests answered",
           now.requests, &mirrored_.requests);
    mirror("ipfsmon_query_server_parse_errors_total",
           "malformed requests rejected", now.parse_errors,
           &mirrored_.parse_errors);
    mirror("ipfsmon_query_server_timeouts_total",
           "reads timed out mid-request", now.timeouts, &mirrored_.timeouts);
    mirror("ipfsmon_query_server_bytes_read_total", "bytes received",
           now.bytes_read, &mirrored_.bytes_read);
    mirror("ipfsmon_query_server_bytes_written_total", "bytes sent",
           now.bytes_written, &mirrored_.bytes_written);
  }
  const std::uint64_t hits = cache_.hits();
  const std::uint64_t misses = cache_.misses();
  obs_.metrics
      .counter("ipfsmon_query_cache_hits_total", "result cache hits")
      .inc(hits - mirrored_cache_hits_);
  obs_.metrics
      .counter("ipfsmon_query_cache_misses_total", "result cache misses")
      .inc(misses - mirrored_cache_misses_);
  mirrored_cache_hits_ = hits;
  mirrored_cache_misses_ = misses;

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = obs::to_prometheus(obs_.metrics);
  // The coordinator's registry is separate (it is written from connection
  // threads, which the engine's single-threaded registry cannot host), so
  // its rendered snapshot is appended to make one Prometheus page.
  if (federation_ != nullptr) response.body += federation_->metrics_text();
  return response;
}

HttpResponse QueryService::cached(
    const HttpRequest& request,
    const std::function<CachedResponse()>& render) {
  // Canonical key: store fingerprint + decoded path + the (already sorted)
  // param map. A reload changes the fingerprint, so stale entries are
  // simply never asked for again and age out of the LRU.
  std::string key = util::format("%016llx|",
                                 static_cast<unsigned long long>(fingerprint_));
  key += request.path;
  for (const auto& [name, value] : request.params) {
    key += '&';
    key += name;
    key += '=';
    key += value;
  }

  CachedResponse entry;
  bool hit = cache_.get(key, &entry);
  if (obs_.tracer.current().valid()) {
    obs_.tracer.add_span("query.cache", obs_.tracer.current(), 0, 0,
                         {{"hit", hit ? "1" : "0"}});
  }
  if (!hit) {
    obs::Span render_span =
        obs_.tracer.start_span("query.render", obs_.tracer.current());
    obs::ScopedContext scope(obs_.tracer, render_span.context());
    entry = render();
    cache_.put(key, entry);
  }
  HttpResponse response;
  response.body = entry.body;
  response.content_type = entry.content_type;
  if (!entry.source.empty()) {
    response.headers.emplace_back("X-Source", entry.source);
  }
  response.headers.emplace_back("X-Cache", hit ? "hit" : "miss");
  return response;
}

HttpResponse QueryService::handle_stats(const HttpRequest& request) {
  util::SimTime min_t = store_->min_time();
  util::SimTime max_t = store_->max_time();
  if (!read_time_param(request, "min_t", &min_t) ||
      !read_time_param(request, "max_t", &max_t)) {
    return error_response(400, "min_t/max_t must be integer nanoseconds");
  }
  bool force_scan = false;
  if (const auto it = request.params.find("force");
      it != request.params.end()) {
    if (it->second != "scan") return error_response(400, "force=scan only");
    force_scan = true;
  }
  return cached(request, [&]() {
    StatsSource source = StatsSource::kScan;
    const RangeStats stats =
        force_scan ? stats_by_scan_locked(min_t, max_t)
                   : stats_between_locked(min_t, max_t, &source);
    if (obs_.tracer.current().valid()) {
      // The rollup-vs-scan decision, visible inside the trace.
      obs_.tracer.add_span("query.stats_source", obs_.tracer.current(), 0, 0,
                           {{"source", std::string(to_string(source))},
                            {"forced", force_scan ? "1" : "0"}});
    }
    return CachedResponse{render_stats_json(*store_, stats, min_t, max_t),
                          "application/json",
                          std::string(to_string(source))};
  });
}

HttpResponse QueryService::handle_popularity(const HttpRequest& request) {
  util::SimTime min_t = store_->min_time();
  util::SimTime max_t = store_->max_time();
  if (!read_time_param(request, "min_t", &min_t) ||
      !read_time_param(request, "max_t", &max_t)) {
    return error_response(400, "min_t/max_t must be integer nanoseconds");
  }
  std::uint64_t k = 10;
  if (const auto it = request.params.find("k"); it != request.params.end()) {
    if (!parse_u64(it->second, &k) || k == 0 || k > 10000) {
      return error_response(400, "k must be in [1, 10000]");
    }
  }
  bool clean_only = true;
  if (const auto it = request.params.find("clean_only");
      it != request.params.end()) {
    if (it->second != "0" && it->second != "1") {
      return error_response(400, "clean_only must be 0 or 1");
    }
    clean_only = it->second == "1";
  }

  return cached(request, [&]() {
    analysis::PopularityAccumulator accumulator(clean_only);
    tracestore::ScanQuery scan_query;
    scan_query.min_time = min_t;
    scan_query.max_time = max_t;
    run_scan(scan_query, [&accumulator](const trace::TraceEntry& entry) {
      accumulator.add(entry);
    });
    const analysis::PopularityScores scores = accumulator.scores();

    auto render_top =
        [](const std::vector<std::pair<cid::Cid, std::uint64_t>>& top) {
          std::string out = "[";
          for (std::size_t i = 0; i < top.size(); ++i) {
            if (i != 0) out += ',';
            out += util::format(
                "{\"cid\":\"%s\",\"count\":%llu}",
                top[i].first.to_string().c_str(),
                static_cast<unsigned long long>(top[i].second));
          }
          out += ']';
          return out;
        };
    std::string body = util::format(
        "{\"min_time\":%lld,\"max_time\":%lld,\"clean_only\":%s,"
        "\"cids\":%zu,\"single_requester_share\":%.6f,",
        static_cast<long long>(min_t), static_cast<long long>(max_t),
        clean_only ? "true" : "false", scores.rrp.size(),
        scores.single_requester_share());
    body += "\"top_rrp\":" +
            render_top(scores.top_rrp(static_cast<std::size_t>(k)));
    body += ",\"top_urp\":" +
            render_top(scores.top_urp(static_cast<std::size_t>(k)));
    body += '}';
    return CachedResponse{std::move(body), "application/json", "scan"};
  });
}

HttpResponse QueryService::handle_peer_wants(const HttpRequest& request,
                                             const std::string& peer_text) {
  const auto peer = crypto::PeerId::from_base58(peer_text);
  if (!peer) return error_response(400, "invalid peer id");
  util::SimTime min_t = store_->min_time();
  util::SimTime max_t = store_->max_time();
  if (!read_time_param(request, "min_t", &min_t) ||
      !read_time_param(request, "max_t", &max_t)) {
    return error_response(400, "min_t/max_t must be integer nanoseconds");
  }
  std::uint64_t limit = 1000;
  if (const auto it = request.params.find("limit");
      it != request.params.end()) {
    if (!parse_u64(it->second, &limit) || limit == 0 || limit > 100000) {
      return error_response(400, "limit must be in [1, 100000]");
    }
  }

  return cached(request, [&]() {
    tracestore::ScanQuery scan_query;
    scan_query.min_time = min_t;
    scan_query.max_time = max_t;
    scan_query.peers = {*peer};
    std::uint64_t total = 0;
    std::string wants = "[";
    run_scan(scan_query, [&](const trace::TraceEntry& entry) {
                     if (total++ >= limit) return;
                     if (wants.size() > 1) wants += ',';
                     wants += util::format(
                         "{\"t\":%lld,\"type\":\"%s\",\"cid\":\"%s\","
                         "\"flags\":%u}",
                         static_cast<long long>(entry.timestamp),
                         std::string(json_want_type(entry.type)).c_str(),
                         entry.cid.to_string().c_str(), entry.flags);
                   });
    wants += ']';
    std::string body = util::format(
        "{\"peer\":\"%s\",\"total\":%llu,\"returned\":%llu,\"wants\":",
        peer->to_base58().c_str(), static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(std::min<std::uint64_t>(total, limit)));
    body += wants;
    body += '}';
    return CachedResponse{std::move(body), "application/json", "scan"};
  });
}

HttpResponse QueryService::handle_segments() {
  std::string body = util::format(
      "{\"dir\":\"%s\",\"fingerprint\":\"%016llx\",\"segments\":[",
      dir_.c_str(), static_cast<unsigned long long>(fingerprint_));
  for (std::size_t i = 0; i < store_->segments().size(); ++i) {
    const auto& segment = store_->segments()[i];
    if (i != 0) body += ',';
    body += util::format(
        "{\"file\":\"%s\",\"entries\":%llu,\"min_time\":%lld,"
        "\"max_time\":%lld,\"bytes\":%llu,\"rollup\":%s",
        segment.file.c_str(),
        static_cast<unsigned long long>(segment.footer.entry_count),
        static_cast<long long>(segment.footer.min_time),
        static_cast<long long>(segment.footer.max_time),
        static_cast<unsigned long long>(segment.file_bytes),
        rollups_[i] ? "true" : "false");
    if (rollups_[i]) {
      body += util::format(
          ",\"distinct_peers\":%llu,\"distinct_cids\":%llu,\"buckets\":%zu",
          static_cast<unsigned long long>(rollups_[i]->distinct_peers),
          static_cast<unsigned long long>(rollups_[i]->distinct_cids),
          rollups_[i]->buckets.size());
    }
    body += '}';
  }
  body += ']';
  if (federation_ != nullptr) {
    // Provenance: the served (unified) segments above are merged data;
    // the sources array ties them back to the vantage-point segments that
    // were shipped in, with monitor id + vantage per row.
    body += ",\"federated\":true,\"sources\":[";
    const auto sources = federation_->segment_sources();
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const auto& source = sources[i];
      if (i != 0) body += ',';
      body += util::format(
          "{\"monitor\":%u,\"vantage\":\"%s\",\"file\":\"%s\","
          "\"entries\":%llu,\"min_time\":%lld,\"max_time\":%lld,"
          "\"checksum\":\"%016llx\"}",
          source.monitor_id, source.vantage.c_str(), source.file.c_str(),
          static_cast<unsigned long long>(source.entries),
          static_cast<long long>(source.min_time),
          static_cast<long long>(source.max_time),
          static_cast<unsigned long long>(source.checksum));
    }
    body += ']';
  }
  body += '}';
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse QueryService::handle_monitors() {
  // Deliberately uncached: the ship/ack watermarks move with every landed
  // segment, independent of the served store's fingerprint.
  if (federation_ == nullptr) {
    // Not federated — but an ingested store still knows its vantage
    // points (STOREMETA), so serve the static mapping.
    if (store_->meta() && !store_->meta()->monitors.empty()) {
      std::string body = "{\"monitors\":[";
      const auto& monitors = store_->meta()->monitors;
      for (std::size_t i = 0; i < monitors.size(); ++i) {
        if (i != 0) body += ',';
        body += util::format("{\"id\":%u,\"vantage\":\"%s\"}",
                             monitors[i].second, monitors[i].first.c_str());
      }
      body += util::format("],\"capture\":\"%s\"}",
                           store_->meta()->source.c_str());
      HttpResponse response;
      response.body = std::move(body);
      return response;
    }
    return error_response(404, "not serving a federated store");
  }
  std::string body = "{\"monitors\":[";
  const auto monitors = federation_->monitors();
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    const auto& monitor = monitors[i];
    if (i != 0) body += ',';
    body += util::format(
        "{\"id\":%u,\"vantage\":\"%s\",\"segments\":%llu,"
        "\"entries\":%llu,\"bytes\":%llu,\"last_ship_wall_us\":%lld,"
        "\"last_lag_us\":%lld}",
        monitor.id, monitor.vantage.c_str(),
        static_cast<unsigned long long>(monitor.segments),
        static_cast<unsigned long long>(monitor.entries),
        static_cast<unsigned long long>(monitor.bytes),
        static_cast<long long>(monitor.last_ship_wall_us),
        static_cast<long long>(monitor.last_lag_us));
  }
  body += "]}";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse QueryService::handle_debug_spans(const HttpRequest& request) {
  // Deliberately uncached: the span buffer changes with every request.
  std::uint64_t k = options_.debug_span_limit;
  if (const auto it = request.params.find("k"); it != request.params.end()) {
    if (!parse_u64(it->second, &k) || k == 0 || k > 1000) {
      return error_response(400, "k must be in [1, 1000]");
    }
  }
  HttpResponse response;
  if (const auto it = request.params.find("format");
      it != request.params.end()) {
    if (it->second == "perfetto") {
      const auto spans = obs_.tracer.snapshot();
      response.body = obs::to_perfetto_json(spans, obs::has_sim_times(spans));
    } else if (it->second == "jsonl") {
      response.body = obs::to_spans_jsonl(obs_.tracer.snapshot());
      response.content_type = "application/x-ndjson";
    } else {
      return error_response(400, "format must be perfetto or jsonl");
    }
    return response;
  }
  response.body =
      obs::to_debug_json(obs_.tracer, static_cast<std::size_t>(k));
  return response;
}

}  // namespace ipfsmon::query
