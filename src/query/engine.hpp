// The query engine behind ipfsmon-queryd: routes HTTP requests over a
// tracestore::TraceStore and answers them rollup-first.
//
//  * GET /healthz                     liveness + store summary
//  * GET /metrics                     Prometheus text (obs registry; the
//                                     server/cache counters are mirrored in,
//                                     so sim, scan, and serving metrics share
//                                     one endpoint)
//  * GET /v1/stats                    request-type/flag counts in a range
//  * GET /v1/popularity               top-K CIDs by RRP/URP + summary
//  * GET /v1/peers/<base58>/wants     one peer's want history (Bloom-pruned)
//  * GET /v1/segments                 per-segment metadata incl. rollup
//                                     distinct counts
//  * GET /debug/spans                 recent + slowest request traces
//                                     (?format=perfetto|jsonl for export);
//                                     uncached, empty unless tracing is on
//
// Serving strategy for /v1/stats: segments fully inside the requested range
// are answered from their rollup sidecar totals; partially covered segments
// sum their fully-covered minute buckets and decode entries only inside the
// boundary buckets; segments without a (valid) sidecar fall back to a full
// decode. The result is byte-identical to an entry-level scan — provenance
// is reported in the X-Source response header, never in the body.
//
// Results of the /v1/* endpoints are cached in an LRU keyed by
// (manifest fingerprint, canonical query), so reload() after the store
// changed invalidates every cached answer implicitly.
//
// Thread-safety: handle() may be called from many server workers, but the
// obs::MetricsRegistry is deliberately lock-free single-threaded code, so
// the whole service serializes on one mutex. Queries over a finished store
// are short; the daemon's concurrency lives in the socket layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "query/cache.hpp"
#include "query/http.hpp"
#include "query/server.hpp"
#include "tracestore/rollup.hpp"
#include "tracestore/scan.hpp"
#include "tracestore/store.hpp"

namespace ipfsmon::query {

struct QueryOptions {
  /// Store open options; `store.obs` is ignored — the service wires its
  /// own obs context in so scans and serving share one registry.
  tracestore::StoreOptions store;
  /// Cached rendered responses (0 disables caching).
  std::size_t cache_capacity = 128;
  /// When false, /v1/stats always takes the entry-level scan path (the
  /// property tests force this to compare against the rollup path).
  bool use_rollups = true;
  /// ScanExecutor threads; 0 = hardware concurrency.
  std::size_t scan_threads = 0;
  /// Span tracing for served requests (inert by default). When enabled,
  /// every sampled request produces an http.request trace with cache,
  /// rollup/scan, and per-segment child spans, served on /debug/spans.
  obs::TracerConfig tracing;
  /// Default trace count for /debug/spans recent/slowest lists.
  std::size_t debug_span_limit = 20;
};

/// Request-type/flag counts over a time range — the /v1/stats payload.
/// Mirrors trace::TraceStats minus the distinct-peer/CID counts, which
/// cannot be combined across rollups exactly (they live in /v1/segments).
struct RangeStats {
  std::uint64_t total = 0;
  std::uint64_t want_have = 0;
  std::uint64_t want_block = 0;
  std::uint64_t cancels = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t rebroadcasts = 0;
  std::uint64_t clean = 0;

  bool operator==(const RangeStats&) const = default;
};

/// How an answer was produced (the X-Source header).
enum class StatsSource { kRollup, kMixed, kScan };
std::string_view to_string(StatsSource source);

/// What a federation coordinator exposes to the engine. Implemented by
/// src/federation (FederatedService); declared here so query never depends
/// on the federation layer. All methods are called under the service mutex
/// and must be safe against concurrent coordinator activity.
class FederationSource {
 public:
  /// One vantage-point monitor's provenance row (/v1/monitors).
  struct Monitor {
    std::uint32_t id = 0;
    std::string vantage;
    std::uint64_t segments = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    std::int64_t last_ship_wall_us = 0;  // ship/ack watermark (unix µs)
    std::int64_t last_lag_us = 0;        // latest replication lag (µs)
  };
  /// One landed per-monitor segment — the /v1/segments "sources" rows
  /// tying unified data back to the vantage point that shipped it.
  struct SegmentSource {
    std::uint32_t monitor_id = 0;
    std::string vantage;
    std::string file;
    std::uint64_t entries = 0;
    util::SimTime min_time = 0;
    util::SimTime max_time = 0;
    std::uint64_t checksum = 0;
  };

  virtual ~FederationSource() = default;
  virtual std::vector<Monitor> monitors() = 0;
  virtual std::vector<SegmentSource> segment_sources() = 0;
  /// Prometheus text appended to /metrics (the coordinator owns its own
  /// registry — obs registries are single-threaded by design).
  virtual std::string metrics_text() = 0;
};

class QueryService {
 public:
  /// Opens the store in `dir` and loads every rollup sidecar. Returns
  /// nullptr when the store itself is unusable.
  static std::unique_ptr<QueryService> open(const std::string& dir,
                                            QueryOptions options = {},
                                            std::string* error = nullptr);

  /// Routes one request; safe to call from concurrent server workers.
  HttpResponse handle(const HttpRequest& request);

  /// Re-opens the store (picks up new/pruned segments). The manifest
  /// fingerprint changes with the segment set, invalidating cached results.
  bool reload(std::string* error = nullptr);

  /// Rollup-first range stats; `source` reports the serving path taken.
  RangeStats stats_between(util::SimTime min_t, util::SimTime max_t,
                           StatsSource* source = nullptr);

  /// Ground truth: the same range answered by a full entry-level scan.
  RangeStats stats_by_scan(util::SimTime min_t, util::SimTime max_t);

  /// Mirror `server`'s counters into the obs registry at /metrics render
  /// time (optional; the daemon wires this after start()).
  void attach_server(const HttpServer* server);

  /// Serve in federated mode: enables /v1/monitors, provenance sources on
  /// /v1/segments, and appends the coordinator's metrics to /metrics.
  /// `source` must outlive the service.
  void attach_federation(FederationSource* source);

  const tracestore::TraceStore& store() const { return *store_; }
  obs::Obs& obs() { return obs_; }
  LruCache& cache() { return cache_; }
  /// FNV-1a over the manifest's segment identities (file, count, range,
  /// checksum) — the cache-key prefix.
  std::uint64_t fingerprint() const { return fingerprint_; }
  /// Segments whose rollup sidecar loaded and validated.
  std::size_t rollups_loaded() const;

 private:
  QueryService(QueryOptions options);

  bool open_store(const std::string& dir, std::string* error);
  std::size_t rollups_loaded_locked() const;
  RangeStats stats_between_locked(util::SimTime min_t, util::SimTime max_t,
                                  StatsSource* source);
  RangeStats stats_by_scan_locked(util::SimTime min_t, util::SimTime max_t);

  HttpResponse route(const HttpRequest& request);
  HttpResponse handle_healthz();
  HttpResponse handle_metrics();
  HttpResponse handle_stats(const HttpRequest& request);
  HttpResponse handle_popularity(const HttpRequest& request);
  HttpResponse handle_peer_wants(const HttpRequest& request,
                                 const std::string& peer_text);
  HttpResponse handle_segments();
  HttpResponse handle_monitors();
  HttpResponse handle_debug_spans(const HttpRequest& request);

  /// Runs a scan under a "query.scan" span; when the current request is
  /// sampled, collects a ScanProfile and emits scan.prune / scan.segment
  /// child spans with decode/match sub-timings.
  tracestore::ScanStats run_scan(
      const tracestore::ScanQuery& query,
      const std::function<void(const trace::TraceEntry&)>& visit);

  /// Serves from cache or renders via `render` and caches the result.
  HttpResponse cached(const HttpRequest& request,
                      const std::function<CachedResponse()>& render);

  QueryOptions options_;
  obs::Obs obs_;
  mutable std::mutex mu_;  // guards store_, rollups_, obs_, mirror state
  std::string dir_;
  std::optional<tracestore::TraceStore> store_;
  std::vector<std::optional<tracestore::SegmentRollup>> rollups_;
  tracestore::ScanExecutor executor_;
  LruCache cache_;
  std::uint64_t fingerprint_ = 0;

  const HttpServer* server_ = nullptr;  // counters mirrored at /metrics
  FederationSource* federation_ = nullptr;  // federated mode when set
  ServerCounters mirrored_;             // last values pushed into obs_
  std::uint64_t mirrored_cache_hits_ = 0;
  std::uint64_t mirrored_cache_misses_ = 0;
};

}  // namespace ipfsmon::query
