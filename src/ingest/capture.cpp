#include "ingest/capture.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace ipfsmon::ingest {

namespace {

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

void skip_ws(std::string_view text, std::size_t* pos) {
  while (*pos < text.size() && is_ws(text[*pos])) ++*pos;
}

void append_utf8(std::string* out, unsigned code) {
  if (code < 0x80) {
    out->push_back(static_cast<char>(code));
  } else if (code < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code >> 6)));
    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xE0 | (code >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
  }
}

/// Parses a JSON string starting at the opening quote; advances past the
/// closing quote.
bool parse_json_string(std::string_view text, std::size_t* pos,
                       std::string* out) {
  if (*pos >= text.size() || text[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= text.size()) return false;
      const char esc = text[*pos + 1];
      *pos += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (*pos + 4 > text.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[*pos + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          *pos += 4;
          append_utf8(out, code);
          break;
        }
        default:
          return false;
      }
      continue;
    }
    out->push_back(c);
    ++*pos;
  }
  return false;  // unterminated
}

/// A bare JSON token: number, true, false, or null.
bool parse_json_literal(std::string_view text, std::size_t* pos,
                        std::string* out) {
  const std::size_t start = *pos;
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (is_ws(c) || c == ',' || c == '}' || c == ']') break;
    ++*pos;
  }
  if (*pos == start) return false;
  *out = std::string(text.substr(start, *pos - start));
  return true;
}

/// Skips a balanced object/array (strings handled, so braces inside
/// strings don't count).
bool skip_json_compound(std::string_view text, std::size_t* pos) {
  int depth = 0;
  std::string scratch;
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == '"') {
      if (!parse_json_string(text, pos, &scratch)) return false;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ++*pos;
    if (depth == 0) return true;
  }
  return false;
}

/// A nested object that is exactly a dag-json link ({"/": "Qm..."}) yields
/// the link string; anything else reports handled=false and is skipped.
bool parse_json_link(std::string_view text, std::size_t* pos,
                     std::string* out, bool* handled) {
  const std::size_t start = *pos;
  ++*pos;  // '{'
  skip_ws(text, pos);
  std::string key;
  if (*pos < text.size() && text[*pos] == '"' &&
      parse_json_string(text, pos, &key) && key == "/") {
    skip_ws(text, pos);
    if (*pos < text.size() && text[*pos] == ':') {
      ++*pos;
      skip_ws(text, pos);
      if (*pos < text.size() && text[*pos] == '"' &&
          parse_json_string(text, pos, out)) {
        skip_ws(text, pos);
        if (*pos < text.size() && text[*pos] == '}') {
          ++*pos;
          *handled = true;
          return true;
        }
      }
    }
  }
  *pos = start;
  *handled = false;
  return skip_json_compound(text, pos);
}

std::string lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Field-name aliases, normalized to the canonical capture field.
enum class Field { kTimestamp, kPeer, kAddress, kType, kCancel, kCid,
                   kVantage, kOther };

Field field_for(std::string_view key) {
  const std::string k = lower(key);
  if (k == "timestamp" || k == "ts" || k == "time" || k == "timestamp_ns") {
    return Field::kTimestamp;
  }
  if (k == "peer" || k == "peer_id" || k == "peerid") return Field::kPeer;
  if (k == "address" || k == "addr" || k == "multiaddr") {
    return Field::kAddress;
  }
  if (k == "type" || k == "entry_type" || k == "want_type") {
    return Field::kType;
  }
  if (k == "cancel") return Field::kCancel;
  if (k == "cid") return Field::kCid;
  if (k == "monitor" || k == "vantage") return Field::kVantage;
  return Field::kOther;
}

bool parse_bool(std::string_view text, bool* out) {
  if (text == "true" || text == "1") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    *out = false;
    return true;
  }
  return false;
}

/// Assembles a CaptureRecord from (field, text) pairs shared by the NDJSON
/// and CSV parsers. Empty CSV cells arrive as empty strings and count as
/// absent for the optional fields.
struct RecordBuilder {
  std::string timestamp, peer, address, type, cancel, cid, vantage;

  bool set(Field field, std::string value) {
    switch (field) {
      case Field::kTimestamp: timestamp = std::move(value); return true;
      case Field::kPeer: peer = std::move(value); return true;
      case Field::kAddress: address = std::move(value); return true;
      case Field::kType: type = std::move(value); return true;
      case Field::kCancel: cancel = std::move(value); return true;
      case Field::kCid: cid = std::move(value); return true;
      case Field::kVantage: vantage = std::move(value); return true;
      case Field::kOther: return false;
    }
    return false;
  }

  bool build(CaptureRecord* out, std::string* error) const {
    if (timestamp.empty()) {
      *error = "missing timestamp";
      return false;
    }
    const auto wall = util::parse_wall_time(timestamp);
    if (!wall) {
      *error = "bad timestamp '" + timestamp + "'";
      return false;
    }
    if (peer.empty()) {
      *error = "missing peer";
      return false;
    }
    const auto peer_id = crypto::PeerId::from_base58(peer);
    if (!peer_id) {
      *error = "bad peer id '" + peer + "'";
      return false;
    }
    if (cid.empty()) {
      *error = "missing cid";
      return false;
    }
    const auto parsed_cid = cid::Cid::from_string(cid);
    if (!parsed_cid) {
      *error = "bad cid '" + cid + "'";
      return false;
    }
    bool cancel_flag = false;
    if (!cancel.empty() && !parse_bool(cancel, &cancel_flag)) {
      *error = "bad cancel flag '" + cancel + "'";
      return false;
    }
    if (type.empty()) {
      *error = "missing type";
      return false;
    }
    const auto want = parse_want_type(type, cancel_flag);
    if (!want) {
      *error = "bad want type '" + type + "'";
      return false;
    }
    out->wall_ns = *wall;
    out->peer = *peer_id;
    out->type = *want;
    out->cid = *parsed_cid;
    out->vantage = vantage;
    out->address = net::Address{};
    if (!address.empty()) {
      const auto addr = net::Address::from_string(address);
      if (!addr) {
        *error = "bad address '" + address + "'";
        return false;
      }
      out->address = *addr;
    }
    return true;
  }
};

}  // namespace

std::string_view capture_format_name(CaptureFormat format) {
  switch (format) {
    case CaptureFormat::kAuto: return "auto";
    case CaptureFormat::kNdjson: return "ndjson";
    case CaptureFormat::kCsv: return "csv";
  }
  return "?";
}

bool scan_json_object(std::string_view line, std::vector<JsonField>* fields) {
  fields->clear();
  std::size_t pos = 0;
  skip_ws(line, &pos);
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  skip_ws(line, &pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
    skip_ws(line, &pos);
    return pos == line.size();
  }
  while (true) {
    skip_ws(line, &pos);
    JsonField field;
    if (!parse_json_string(line, &pos, &field.key)) return false;
    skip_ws(line, &pos);
    if (pos >= line.size() || line[pos] != ':') return false;
    ++pos;
    skip_ws(line, &pos);
    if (pos >= line.size()) return false;
    bool keep = true;
    if (line[pos] == '"') {
      if (!parse_json_string(line, &pos, &field.value)) return false;
      field.is_string = true;
    } else if (line[pos] == '{') {
      bool handled = false;
      if (!parse_json_link(line, &pos, &field.value, &handled)) return false;
      field.is_string = true;
      keep = handled;
    } else if (line[pos] == '[') {
      if (!skip_json_compound(line, &pos)) return false;
      keep = false;
    } else {
      if (!parse_json_literal(line, &pos, &field.value)) return false;
    }
    if (keep) fields->push_back(std::move(field));
    skip_ws(line, &pos);
    if (pos >= line.size()) return false;
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    if (line[pos] == '}') {
      ++pos;
      skip_ws(line, &pos);
      return pos == line.size();
    }
    return false;
  }
}

std::optional<bitswap::WantType> parse_want_type(std::string_view text,
                                                 bool cancel) {
  if (cancel) return bitswap::WantType::Cancel;
  std::string k = lower(text);
  for (char& c : k) {
    if (c == '-') c = '_';
  }
  if (k == "want_have" || k == "have") return bitswap::WantType::WantHave;
  if (k == "want_block" || k == "block") return bitswap::WantType::WantBlock;
  if (k == "cancel") return bitswap::WantType::Cancel;
  // metric-exporter numeric convention: 0 = WANT_BLOCK, 1 = WANT_HAVE.
  if (k == "0") return bitswap::WantType::WantBlock;
  if (k == "1") return bitswap::WantType::WantHave;
  return std::nullopt;
}

bool parse_ndjson_record(std::string_view line, CaptureRecord* out,
                         std::string* error) {
  std::vector<JsonField> fields;
  if (!scan_json_object(line, &fields)) {
    *error = "malformed json";
    return false;
  }
  RecordBuilder builder;
  for (auto& field : fields) {
    builder.set(field_for(field.key), std::move(field.value));
  }
  return builder.build(out, error);
}

std::optional<CsvLayout> CsvLayout::from_header(std::string_view header,
                                                std::string* error) {
  CsvLayout layout;
  const auto columns = util::split(header, ',');
  layout.columns_ = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const int index = static_cast<int>(i);
    switch (field_for(columns[i])) {
      case Field::kTimestamp: layout.timestamp_ = index; break;
      case Field::kPeer: layout.peer_ = index; break;
      case Field::kAddress: layout.address_ = index; break;
      case Field::kType: layout.type_ = index; break;
      case Field::kCancel: layout.cancel_ = index; break;
      case Field::kCid: layout.cid_ = index; break;
      case Field::kVantage: layout.vantage_ = index; break;
      case Field::kOther: break;
    }
  }
  if (layout.timestamp_ < 0 || layout.peer_ < 0 || layout.type_ < 0 ||
      layout.cid_ < 0) {
    if (error != nullptr) {
      *error = "csv header missing a required column "
               "(timestamp, peer, type, cid): '" + std::string(header) + "'";
    }
    return std::nullopt;
  }
  return layout;
}

bool CsvLayout::parse(std::string_view line, CaptureRecord* out,
                      std::string* error) const {
  const auto cells = util::split(line, ',');
  if (cells.size() != columns_) {
    *error = util::format("expected %zu csv columns, got %zu", columns_,
                          cells.size());
    return false;
  }
  RecordBuilder builder;
  const auto take = [&](int index, Field field) {
    if (index >= 0) builder.set(field, cells[static_cast<std::size_t>(index)]);
  };
  take(timestamp_, Field::kTimestamp);
  take(peer_, Field::kPeer);
  take(address_, Field::kAddress);
  take(type_, Field::kType);
  take(cancel_, Field::kCancel);
  take(cid_, Field::kCid);
  take(vantage_, Field::kVantage);
  return builder.build(out, error);
}

std::string format_ndjson_record(const CaptureRecord& record) {
  // Every emitted value is base58/base32/multiaddr/ISO text — no JSON
  // metacharacters — so plain concatenation is already valid JSON.
  std::string out = "{\"timestamp\":\"";
  out += util::format_wall_time(record.wall_ns);
  out += "\",\"peer\":\"";
  out += record.peer.to_base58();
  out += "\",\"address\":\"";
  out += record.address.to_string();
  out += "\",\"type\":\"";
  out += bitswap::want_type_name(record.type);
  out += "\",\"cid\":\"";
  out += record.cid.to_string();
  out += '"';
  if (!record.vantage.empty()) {
    out += ",\"monitor\":\"";
    out += record.vantage;
    out += '"';
  }
  out += '}';
  return out;
}

std::string csv_capture_header() {
  return "timestamp,peer,address,type,cid,monitor";
}

std::string format_csv_record(const CaptureRecord& record) {
  std::string out = util::format_wall_time(record.wall_ns);
  out += ',';
  out += record.peer.to_base58();
  out += ',';
  out += record.address.to_string();
  out += ',';
  out += bitswap::want_type_name(record.type);
  out += ',';
  out += record.cid.to_string();
  out += ',';
  out += record.vantage;
  return out;
}

}  // namespace ipfsmon::ingest
