// Capture export: the inverse of ingest. Streams a trace store back out as
// an NDJSON or CSV capture file (optionally gzip-compressed), restoring
// wall-clock timestamps from the store's STOREMETA epoch (SimTime 0 for
// simulated stores without one) and vantage names from its monitor map.
// Used to build test/bench fixtures from simulated runs and to prove the
// ingest round-trip: export(ingest(capture)) reproduces the capture's
// records exactly.
#pragma once

#include <optional>
#include <string>

#include "ingest/capture.hpp"
#include "tracestore/store.hpp"

namespace ipfsmon::ingest {

struct ExportOptions {
  CaptureFormat format = CaptureFormat::kNdjson;  // kAuto = kNdjson
  bool gzip = false;
};

struct ExportStats {
  std::uint64_t entries = 0;
  util::WallNanos wall_epoch_ns = 0;
};

/// Writes every entry of `store` (in time order, all monitors merged) to
/// `path` as capture lines. Returns nullopt on IO failure.
std::optional<ExportStats> export_capture(const tracestore::TraceStore& store,
                                          const std::string& path,
                                          const ExportOptions& options = {},
                                          std::string* error = nullptr);

}  // namespace ipfsmon::ingest
