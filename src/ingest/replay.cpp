#include "ingest/replay.hpp"

#include <chrono>
#include <thread>

#include "tracestore/bloom.hpp"
#include "util/bytes.hpp"

namespace ipfsmon::ingest {

namespace {

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

}  // namespace

std::uint64_t fold_entry_checksum(std::uint64_t seed,
                                  const trace::TraceEntry& entry) {
  // Canonical little-endian rendering of every field; the CID's binary
  // encoding is length-prefixed so adjacent fields can't alias.
  std::uint8_t fixed[8 + 32 + 4 + 2 + 1 + 4 + 4];
  std::uint8_t* p = fixed;
  put_u64(p, static_cast<std::uint64_t>(entry.timestamp));
  p += 8;
  for (const auto byte : entry.peer.digest()) *p++ = byte;
  put_u32(p, entry.address.ip);
  p += 4;
  *p++ = static_cast<std::uint8_t>(entry.address.port & 0xff);
  *p++ = static_cast<std::uint8_t>(entry.address.port >> 8);
  *p++ = static_cast<std::uint8_t>(entry.type);
  put_u32(p, entry.monitor);
  p += 4;
  put_u32(p, entry.flags);
  p += 4;
  std::uint64_t h = tracestore::fnv1a64(
      util::BytesView(fixed, sizeof(fixed)), seed);
  const util::Bytes cid = entry.cid.encode();
  std::uint8_t len[4];
  put_u32(len, static_cast<std::uint32_t>(cid.size()));
  h = tracestore::fnv1a64(util::BytesView(len, 4), h);
  return tracestore::fnv1a64(util::BytesView(cid.data(), cid.size()), h);
}

ReplayDriver::ReplayDriver(sim::Scheduler& scheduler,
                           const tracestore::TraceStore& store,
                           ReplayOptions options)
    : scheduler_(scheduler),
      options_(options),
      cursor_(store),
      flagger_(options.preprocess) {}

void ReplayDriver::start(Sink sink) {
  sink_ = std::move(sink);
  // Advance to the first entry inside [start, stop).
  trace::TraceEntry entry;
  while (cursor_.next(entry)) {
    if (entry.timestamp < options_.start) continue;
    if (options_.stop && entry.timestamp >= *options_.stop) break;
    pending_ = entry;
    have_pending_ = true;
    break;
  }
  if (!have_pending_) {
    stats_.done = true;
    return;
  }
  stats_.first = pending_.timestamp;
  if (options_.speedup > 0) {
    pace_origin_us_ = wall_now_us();
    pace_sim_origin_ = pending_.timestamp;
  }
  schedule_next();
}

void ReplayDriver::schedule_next() {
  scheduler_.schedule_at(pending_.timestamp, [this] { pump(); });
}

void ReplayDriver::pump() {
  if (options_.speedup > 0) {
    // Sleep until this batch's wall-clock due time. Pacing shapes wall
    // time only — delivery order, SimTimes, and checksums are identical
    // at every speedup.
    const double sim_elapsed_s =
        static_cast<double>(pending_.timestamp - pace_sim_origin_) / 1e9;
    const std::int64_t due_us =
        pace_origin_us_ +
        static_cast<std::int64_t>(sim_elapsed_s / options_.speedup * 1e6);
    const std::int64_t now_us = wall_now_us();
    if (due_us > now_us) {
      std::this_thread::sleep_for(std::chrono::microseconds(due_us - now_us));
    }
  }

  // Deliver every entry sharing this timestamp, then park on the next one.
  const util::SimTime batch_time = pending_.timestamp;
  ++stats_.batches;
  while (have_pending_ && pending_.timestamp == batch_time) {
    trace::TraceEntry entry = pending_;
    if (options_.remark_flags) flagger_.mark(entry);
    ++stats_.entries;
    stats_.last = entry.timestamp;
    stats_.checksum = fold_entry_checksum(stats_.checksum, entry);
    if (sink_) sink_(entry);

    have_pending_ = false;
    trace::TraceEntry next;
    while (cursor_.next(next)) {
      if (next.timestamp < options_.start) continue;
      if (options_.stop && next.timestamp >= *options_.stop) break;
      pending_ = next;
      have_pending_ = true;
      break;
    }
  }
  if (have_pending_) {
    schedule_next();
  } else {
    stats_.done = true;
  }
}

ReplayStats replay_store(const tracestore::TraceStore& store,
                         const ReplayDriver::Sink& sink,
                         ReplayOptions options) {
  sim::Scheduler scheduler;
  ReplayDriver driver(scheduler, store, options);
  driver.start(sink);
  scheduler.run_all();
  return driver.stats();
}

}  // namespace ipfsmon::ingest
