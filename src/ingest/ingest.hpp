// Real-capture ingest: streams a Bitswap wantlist capture (NDJSON or CSV,
// plain or gzip) into an on-disk trace store, normalizing wall-clock
// timestamps onto the SimTime axis and vantage names onto MonitorIds.
// The produced store is indistinguishable from a simulated spill — same
// segments, Blooms, rollups, MANIFEST — plus a STOREMETA sidecar anchoring
// SimTime 0 back to the capture's wall-clock epoch, so every downstream
// consumer (scans, unify, federation, the query daemon, replay) runs
// unchanged over real data.
//
// Error handling is explicit, never silent:
//  * strict (default): the first malformed line or backwards timestamp
//    aborts the ingest with a line-numbered error;
//  * lenient: malformed lines are counted, quarantined verbatim into a
//    "<store>/rejects.rej" sidecar, and surfaced as
//    ipfsmon_ingest_rejected_lines_total; backwards timestamps are clamped
//    to the previous entry's time and counted as
//    ipfsmon_ingest_unordered_total.
//
// Multi-GB captures checkpoint: every checkpoint_every accepted entries
// the writer publishes its manifest and an "INGEST.ckpt" records the
// uncompressed byte offset reached. A re-run with resume = true recovers
// the store, validates the checkpoint against what actually survived on
// disk, and continues from that offset instead of starting over. Resume
// re-primes the duplicate-window flagger from every recovered entry within
// the widest preprocess window of the checkpoint (walking back across
// trailing segments as needed), so flags stay exact across the boundary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ingest/capture.hpp"
#include "obs/obs.hpp"
#include "tracestore/store.hpp"
#include "trace/preprocess.hpp"

namespace ipfsmon::ingest {

struct IngestOptions {
  CaptureFormat format = CaptureFormat::kAuto;
  /// false = strict: abort on the first malformed line or backwards
  /// timestamp. true = quarantine/clamp and count (see file comment).
  bool lenient = false;
  /// Wall-clock instant mapped to SimTime 0. Unset = the first accepted
  /// record's timestamp (so the store starts at SimTime 0 exactly).
  std::optional<util::WallNanos> epoch;
  /// Pre-assigned vantage -> MonitorId mappings. Vantages not listed get
  /// the next free id in order of first appearance (deterministic for a
  /// given capture). An empty vantage field maps to monitor 0.
  std::vector<std::pair<std::string, trace::MonitorId>> monitors;
  /// Mark kInterMonitorDuplicate / kRebroadcast flags while ingesting
  /// (the stream is time-ordered by construction, so the streaming
  /// flagger applies).
  bool mark_flags = true;
  trace::PreprocessOptions preprocess;
  /// Accepted entries between durability checkpoints; 0 = only the final
  /// finalize().
  std::uint64_t checkpoint_every = 1u << 20;
  /// Continue from an INGEST.ckpt left by a previous interrupted run. The
  /// checkpoint is trusted only if it matches this capture and the entry
  /// count recovered from disk; otherwise ingest restarts from scratch.
  bool resume = false;
  /// Stop after this many accepted entries (0 = unlimited), leaving a
  /// resumable checkpoint instead of a finalized store — for sampling the
  /// head of a huge capture, and how the tests exercise interruption.
  std::uint64_t max_entries = 0;
  /// Store tuning for the produced segments.
  tracestore::StoreOptions store;
  /// Counters/warnings sink (also handed to the segment writer).
  obs::Obs* obs = nullptr;
};

struct IngestStats {
  std::uint64_t lines = 0;           // non-blank lines consumed this run
  std::uint64_t entries = 0;         // entries in the store (incl. resumed)
  std::uint64_t resumed_entries = 0; // carried over by a checkpoint resume
  std::uint64_t rejected = 0;        // malformed lines (lenient)
  std::uint64_t unordered = 0;       // clamped backwards timestamps
  std::uint64_t bytes = 0;           // uncompressed capture bytes consumed
  std::uint64_t checkpoints = 0;     // durability points published
  bool resumed = false;              // this run continued a checkpoint
  /// Stopped at max_entries: the store is checkpointed, not finalized —
  /// re-run with resume = true to continue.
  bool truncated = false;
  CaptureFormat format = CaptureFormat::kAuto;  // detected format
  util::WallNanos wall_epoch_ns = 0;
  util::SimTime min_time = 0;
  util::SimTime max_time = 0;
  /// Vantage -> MonitorId map actually used, in id order.
  std::vector<std::pair<std::string, trace::MonitorId>> monitors;
};

/// Streams `capture_path` into a trace store at `store_dir`. Returns
/// nullopt on failure (error says why, with a line number for parse
/// failures in strict mode).
std::optional<IngestStats> ingest_capture(const std::string& capture_path,
                                          const std::string& store_dir,
                                          const IngestOptions& options = {},
                                          std::string* error = nullptr);

/// Name of the quarantine sidecar inside the store directory.
std::string rejects_path(const std::string& store_dir);

}  // namespace ipfsmon::ingest
