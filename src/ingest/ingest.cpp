#include "ingest/ingest.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "ingest/stream.hpp"
#include "tracestore/merge.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace ipfsmon::ingest {

namespace {

constexpr char kCheckpointName[] = "INGEST.ckpt";
constexpr char kCheckpointHeader[] = "ipfsmon-ingest-ckpt v1";
constexpr char kRejectsName[] = "rejects.rej";

/// Everything a resumed run needs to continue mid-capture.
struct Checkpoint {
  std::string source;       // capture file name the checkpoint belongs to
  std::uint64_t offset = 0; // uncompressed byte offset reached
  std::uint64_t lines = 0;
  std::uint64_t entries = 0;
  std::uint64_t rejected = 0;
  std::uint64_t unordered = 0;
  util::WallNanos epoch = 0;
  util::SimTime last_sim = 0;
  std::vector<std::pair<std::string, trace::MonitorId>> monitors;
};

bool parse_u64(const std::string& text, std::uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool parse_i64(const std::string& text, std::int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

std::string checkpoint_path(const std::string& dir) {
  return (fs::path(dir) / kCheckpointName).string();
}

bool write_checkpoint(const std::string& dir, const Checkpoint& ckpt,
                      std::string* error) {
  const fs::path tmp = fs::path(dir) / (std::string(kCheckpointName) + ".tmp");
  {
    std::ofstream out(tmp);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp.string();
      return false;
    }
    out << kCheckpointHeader << '\n'
        << "source=" << ckpt.source << '\n'
        << "offset=" << ckpt.offset << '\n'
        << "lines=" << ckpt.lines << '\n'
        << "entries=" << ckpt.entries << '\n'
        << "rejected=" << ckpt.rejected << '\n'
        << "unordered=" << ckpt.unordered << '\n'
        << "epoch=" << ckpt.epoch << '\n'
        << "last_sim=" << ckpt.last_sim << '\n';
    for (const auto& [name, id] : ckpt.monitors) {
      out << "monitor=" << id << ':' << name << '\n';
    }
    if (!out) {
      if (error != nullptr) *error = "short write to " + tmp.string();
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, checkpoint_path(dir), ec);
  if (ec) {
    if (error != nullptr) *error = "rename checkpoint: " + ec.message();
    return false;
  }
  return true;
}

std::optional<Checkpoint> read_checkpoint(const std::string& dir) {
  std::ifstream in(checkpoint_path(dir));
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointHeader) {
    return std::nullopt;
  }
  Checkpoint ckpt;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    bool ok = true;
    if (key == "source") {
      ckpt.source = value;
    } else if (key == "offset") {
      ok = parse_u64(value, &ckpt.offset);
    } else if (key == "lines") {
      ok = parse_u64(value, &ckpt.lines);
    } else if (key == "entries") {
      ok = parse_u64(value, &ckpt.entries);
    } else if (key == "rejected") {
      ok = parse_u64(value, &ckpt.rejected);
    } else if (key == "unordered") {
      ok = parse_u64(value, &ckpt.unordered);
    } else if (key == "epoch") {
      ok = parse_i64(value, &ckpt.epoch);
    } else if (key == "last_sim") {
      ok = parse_i64(value, &ckpt.last_sim);
    } else if (key == "monitor") {
      const auto colon = value.find(':');
      std::uint64_t id = 0;
      ok = colon != std::string::npos &&
           parse_u64(value.substr(0, colon), &id);
      if (ok) {
        ckpt.monitors.emplace_back(value.substr(colon + 1),
                                   static_cast<trace::MonitorId>(id));
      }
    }
    if (!ok) return std::nullopt;
  }
  return ckpt;
}

/// Deterministic vantage -> MonitorId assignment: pre-seeded ids first,
/// then first-appearance order.
class MonitorMap {
 public:
  explicit MonitorMap(
      const std::vector<std::pair<std::string, trace::MonitorId>>& seed) {
    for (const auto& [name, id] : seed) assign(name, id);
  }

  trace::MonitorId id_for(const std::string& vantage) {
    for (const auto& [name, id] : monitors_) {
      if (name == vantage) return id;
    }
    trace::MonitorId next = 0;
    for (const auto& [name, id] : monitors_) next = std::max(next, id + 1);
    assign(vantage, next);
    return next;
  }

  /// In id order, for STOREMETA and stats.
  std::vector<std::pair<std::string, trace::MonitorId>> sorted() const {
    auto out = monitors_;
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    return out;
  }

 private:
  void assign(const std::string& name, trace::MonitorId id) {
    for (const auto& [existing, _] : monitors_) {
      if (existing == name) return;
    }
    monitors_.emplace_back(name, id);
  }

  std::vector<std::pair<std::string, trace::MonitorId>> monitors_;
};

CaptureFormat sniff_format(std::string_view first_line) {
  std::size_t pos = 0;
  while (pos < first_line.size() &&
         (first_line[pos] == ' ' || first_line[pos] == '\t')) {
    ++pos;
  }
  return pos < first_line.size() && first_line[pos] == '{'
             ? CaptureFormat::kNdjson
             : CaptureFormat::kCsv;
}

}  // namespace

std::string rejects_path(const std::string& store_dir) {
  return (fs::path(store_dir) / kRejectsName).string();
}

std::optional<IngestStats> ingest_capture(const std::string& capture_path,
                                          const std::string& store_dir,
                                          const IngestOptions& options,
                                          std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  std::string io_error;
  auto reader = LineReader::open(capture_path, &io_error);
  if (reader == nullptr) return fail(io_error);

  const std::string source = fs::path(capture_path).filename().string();

  // --- Resume or start clean ------------------------------------------------
  tracestore::StoreOptions store_options = options.store;
  store_options.obs = options.obs;
  std::unique_ptr<tracestore::SegmentWriter> writer;
  std::optional<Checkpoint> resume_from;
  if (options.resume) {
    if (auto ckpt = read_checkpoint(store_dir);
        ckpt && ckpt->source == source) {
      tracestore::RecoveryReport report;
      std::string resume_error;
      auto resumed = tracestore::SegmentWriter::resume(
          store_dir, store_options, &report, &resume_error);
      // Trust the checkpoint only when the recovered store matches it
      // exactly — a torn tail segment past the checkpoint would otherwise
      // double-ingest its entries.
      if (resumed != nullptr && report.entries_recovered == ckpt->entries) {
        writer = std::move(resumed);
        resume_from = std::move(*ckpt);
      }
    }
  }
  if (writer == nullptr) {
    std::string create_error;
    writer = tracestore::SegmentWriter::create(store_dir, store_options,
                                               &create_error);
    if (writer == nullptr) return fail(create_error);
  }

  IngestStats stats;
  MonitorMap monitors(resume_from ? resume_from->monitors : options.monitors);
  trace::PreprocessOptions preprocess = options.preprocess;
  tracestore::StreamingFlagger flagger(preprocess);
  std::optional<util::WallNanos> epoch = options.epoch;
  util::SimTime last_sim = 0;
  bool have_last = false;

  if (resume_from) {
    if (!reader->skip_to(resume_from->offset)) {
      return fail("cannot seek capture to checkpoint offset " +
                  std::to_string(resume_from->offset) +
                  (reader->error().empty() ? "" : ": " + reader->error()));
    }
    stats.resumed = true;
    stats.resumed_entries = resume_from->entries;
    stats.lines = resume_from->lines;
    stats.rejected = resume_from->rejected;
    stats.unordered = resume_from->unordered;
    epoch = resume_from->epoch;
    last_sim = resume_from->last_sim;
    have_last = resume_from->entries > 0;
    // Re-prime the duplicate-window state from the recovered tail so flags
    // stay exact across the resume boundary: every recovered entry within
    // the widest window of the checkpoint must pass through the flagger.
    // Checkpoints seal segments, so the window can straddle several
    // trailing segments — walk back by footer max_time, then replay
    // forward in segment order.
    if (options.mark_flags && !writer->dir().empty()) {
      const auto widest = std::max(preprocess.inter_monitor_window,
                                   preprocess.rebroadcast_window);
      const util::SimTime horizon = last_sim - widest;
      if (auto store = tracestore::TraceStore::open(store_dir, store_options);
          store && !store->segments().empty()) {
        std::size_t first = store->segments().size();
        while (first > 0 &&
               store->segments()[first - 1].footer.max_time >= horizon) {
          --first;
        }
        for (std::size_t i = first; i < store->segments().size(); ++i) {
          if (auto seg =
                  tracestore::SegmentReader::open(store->segment_path(i))) {
            trace::TraceEntry entry;
            while (seg->next(entry)) {
              if (entry.timestamp >= horizon) flagger.mark(entry);
            }
          }
        }
      }
    }
  }

  // --- Reject sink (lenient mode) -------------------------------------------
  std::ofstream rejects;
  obs::Counter* rejected_counter = nullptr;
  obs::Counter* unordered_counter = nullptr;
  obs::Counter* entries_counter = nullptr;
  if (options.obs != nullptr) {
    rejected_counter = &options.obs->metrics.counter(
        "ipfsmon_ingest_rejected_lines_total",
        "Malformed capture lines quarantined during ingest");
    unordered_counter = &options.obs->metrics.counter(
        "ipfsmon_ingest_unordered_total",
        "Capture records with backwards timestamps clamped during ingest");
    entries_counter = &options.obs->metrics.counter(
        "ipfsmon_ingest_entries_total", "Capture records ingested");
  }
  const auto reject = [&](std::uint64_t line_number, const std::string& line,
                          const std::string& why) {
    ++stats.rejected;
    if (rejected_counter != nullptr) rejected_counter->inc();
    if (!rejects.is_open()) {
      rejects.open(rejects_path(store_dir),
                   stats.resumed ? std::ios::app : std::ios::trunc);
    }
    if (rejects.is_open()) {
      rejects << "# line " << line_number << ": " << why << '\n'
              << line << '\n';
    }
  };

  // --- Main loop ------------------------------------------------------------
  const auto publish_checkpoint = [&](std::uint64_t offset,
                                      IngestStats* s,
                                      std::string* ckpt_error) -> bool {
    if (!writer->checkpoint()) {
      *ckpt_error = "segment flush failed at checkpoint (see warnings)";
      return false;
    }
    Checkpoint ckpt;
    ckpt.source = source;
    ckpt.offset = offset;
    ckpt.lines = s->lines;
    ckpt.entries = writer->entries_written();
    ckpt.rejected = s->rejected;
    ckpt.unordered = s->unordered;
    ckpt.epoch = *epoch;
    ckpt.last_sim = last_sim;
    ckpt.monitors = monitors.sorted();
    if (!write_checkpoint(store_dir, ckpt, ckpt_error)) return false;
    ++s->checkpoints;
    return true;
  };

  CaptureFormat format = options.format;
  std::optional<CsvLayout> csv;
  std::string line;
  std::uint64_t since_checkpoint = 0;
  const std::uint64_t start_offset = reader->offset();
  bool first_record = !resume_from.has_value();

  while (reader->next(&line)) {
    const std::uint64_t line_end_offset = reader->offset();
    if (line.empty()) continue;
    ++stats.lines;

    if (format == CaptureFormat::kAuto) format = sniff_format(line);
    if (format == CaptureFormat::kCsv && !csv) {
      std::string header_error;
      csv = CsvLayout::from_header(line, &header_error);
      if (!csv) return fail(header_error);
      continue;  // header line carries no record
    }

    CaptureRecord record;
    std::string parse_error;
    const bool parsed =
        format == CaptureFormat::kNdjson
            ? parse_ndjson_record(line, &record, &parse_error)
            : csv->parse(line, &record, &parse_error);
    if (!parsed) {
      if (!options.lenient) {
        return fail(util::format("%s line %llu: %s", source.c_str(),
                                 static_cast<unsigned long long>(stats.lines),
                                 parse_error.c_str()));
      }
      reject(stats.lines, line, parse_error);
      continue;
    }

    if (!epoch) epoch = record.wall_ns;  // first accepted record anchors t=0
    util::SimTime sim = record.wall_ns - *epoch;
    if ((have_last && sim < last_sim) || sim < 0) {
      if (!options.lenient) {
        return fail(util::format(
            "%s line %llu: timestamp goes backwards (%s); re-run with "
            "--lenient to clamp",
            source.c_str(), static_cast<unsigned long long>(stats.lines),
            util::format_wall_time(record.wall_ns).c_str()));
      }
      ++stats.unordered;
      if (unordered_counter != nullptr) unordered_counter->inc();
      sim = have_last ? last_sim : 0;
    }
    last_sim = sim;
    have_last = true;

    trace::TraceEntry entry;
    entry.timestamp = sim;
    entry.peer = record.peer;
    entry.address = record.address;
    entry.type = record.type;
    entry.cid = record.cid;
    entry.monitor = monitors.id_for(record.vantage);
    if (options.mark_flags) flagger.mark(entry);
    writer->append(entry);
    if (entries_counter != nullptr) entries_counter->inc();
    if (first_record) {
      stats.min_time = sim;
      first_record = false;
    }
    stats.max_time = sim;

    // --- Durability checkpoint ---------------------------------------------
    ++since_checkpoint;
    if (options.checkpoint_every > 0 &&
        since_checkpoint >= options.checkpoint_every) {
      since_checkpoint = 0;
      std::string ckpt_error;
      if (!publish_checkpoint(line_end_offset, &stats, &ckpt_error)) {
        return fail(ckpt_error);
      }
    }

    // --- Bounded sample: stop resumable instead of finalizing --------------
    if (options.max_entries > 0 &&
        writer->entries_written() >= options.max_entries) {
      std::string ckpt_error;
      if (!publish_checkpoint(line_end_offset, &stats, &ckpt_error)) {
        return fail(ckpt_error);
      }
      writer->abandon();  // everything is flushed; suppress finalize()
      stats.truncated = true;
      stats.bytes = reader->offset() - start_offset;
      stats.format = format;
      stats.wall_epoch_ns = *epoch;
      stats.monitors = monitors.sorted();
      if (auto store =
              tracestore::TraceStore::open(store_dir, store_options)) {
        stats.min_time = store->min_time();
        stats.max_time = store->max_time();
        stats.entries = store->total_entries();
      }
      return stats;
    }
  }
  if (!reader->error().empty()) {
    return fail(capture_path + ": " + reader->error());
  }
  if (stats.lines == (resume_from ? resume_from->lines : 0) && !resume_from) {
    return fail(capture_path + ": empty capture");
  }

  stats.bytes = reader->offset() - start_offset;
  stats.format = format;
  stats.entries = writer->entries_written();
  stats.wall_epoch_ns = epoch.value_or(0);
  stats.monitors = monitors.sorted();
  if (resume_from && resume_from->entries > 0 &&
      stats.entries == resume_from->entries) {
    // Nothing new past the checkpoint; keep the recovered range.
  }

  if (!writer->finalize()) {
    return fail("finalize failed: a segment or manifest write failed");
  }

  tracestore::StoreMeta meta;
  meta.wall_epoch_ns = stats.wall_epoch_ns;
  meta.source = source;
  meta.format = std::string(capture_format_name(format));
  meta.monitors = stats.monitors;
  std::string meta_error;
  if (!tracestore::write_store_meta(store_dir, meta, &meta_error)) {
    return fail(meta_error);
  }

  // The store is complete; the checkpoint has served its purpose.
  std::error_code ec;
  fs::remove(checkpoint_path(store_dir), ec);

  // Recompute the full range for resumed runs (min_time predates us).
  if (auto store = tracestore::TraceStore::open(store_dir, store_options)) {
    stats.min_time = store->min_time();
    stats.max_time = store->max_time();
    stats.entries = store->total_entries();
  }
  return stats;
}

}  // namespace ipfsmon::ingest
