// Capture byte streams: line-oriented readers/writers over plain or
// gzip-compressed files. The reader sniffs the gzip magic, inflates
// incrementally (multi-member archives included — rotated captures are
// often concatenated), and tracks the *uncompressed* byte offset of every
// line so ingest checkpoints are meaningful for both encodings. gzip
// support is compiled in only when zlib is available (IPFSMON_HAVE_ZLIB);
// without it, opening a gzip capture fails with a clear error instead of
// garbage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace ipfsmon::ingest {

class LineReader {
 public:
  virtual ~LineReader() = default;

  /// Opens `path`, sniffing the two-byte gzip magic. Returns nullptr on
  /// open failure or when the file is gzip but zlib support is absent.
  static std::unique_ptr<LineReader> open(const std::string& path,
                                          std::string* error = nullptr);

  /// Reads the next line (without the trailing '\n'; a final unterminated
  /// line is returned too). False at end of input or after a stream error.
  virtual bool next(std::string* line) = 0;

  /// Uncompressed byte offset of the first unread byte — i.e. of the line
  /// the next next() call would return.
  virtual std::uint64_t offset() const = 0;

  /// Decompresses and discards bytes until `offset`; false when the stream
  /// ends (or errors) first. Only forward skips are supported.
  bool skip_to(std::uint64_t offset);

  /// Set when the underlying stream went bad mid-read (truncated gzip
  /// member, inflate error); empty after a clean end of input.
  const std::string& error() const { return error_; }

  virtual bool compressed() const = 0;

 protected:
  std::string error_;
};

/// Line-oriented writer, gzip-compressing when `gzip` is set (requires
/// zlib support; fails at open otherwise).
class LineWriter {
 public:
  virtual ~LineWriter() = default;

  static std::unique_ptr<LineWriter> open(const std::string& path, bool gzip,
                                          std::string* error = nullptr);

  /// Appends `line` plus '\n'. False on write failure.
  virtual bool write(std::string_view line) = 0;

  /// Flushes (and for gzip, finishes the member). False on failure; the
  /// destructor also closes, but silently.
  virtual bool close() = 0;
};

/// True when the build carries zlib (gzip captures readable/writable).
bool gzip_supported();

}  // namespace ipfsmon::ingest
