// Capture formats: the external Bitswap wantlist logs real deployments
// produce (ipfs-metric-exporter-style newline-delimited JSON, or CSV) and
// the streaming parsers that turn one line into one CaptureRecord. This is
// the only layer that knows wall-clock time and vantage names; everything
// past ingest::ingest_capture speaks SimTime and MonitorId.
//
// NDJSON grammar (one flat object per line; see DESIGN.md Sec. 11):
//   {"timestamp": <wall time>, "peer": "Qm...", "address": "/ip4/...",
//    "type": "WANT_HAVE" | "want_block" | ..., "cid": "Qm...|b...",
//    "monitor": "<vantage>"}
// Field aliases: ts/time for timestamp, peer_id for peer, addr/multiaddr
// for address, entry_type/want_type for type, vantage for monitor. The
// metric-exporter numeric convention is accepted too: want_type 0 =
// WANT_BLOCK, 1 = WANT_HAVE, with a separate boolean "cancel". CIDs may be
// dag-json links ({"/": "Qm..."}). address and monitor are optional.
//
// CSV: a header line naming the columns (same names/aliases as above,
// any order, extra columns ignored), then one record per line.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bitswap/message.hpp"
#include "cid/cid.hpp"
#include "crypto/keys.hpp"
#include "net/address.hpp"
#include "util/walltime.hpp"

namespace ipfsmon::ingest {

enum class CaptureFormat {
  kAuto,    // sniff from the first non-blank line ('{' => ndjson)
  kNdjson,
  kCsv,
};

std::string_view capture_format_name(CaptureFormat format);

/// One parsed capture line, still on the wall-clock axis.
struct CaptureRecord {
  util::WallNanos wall_ns = 0;
  crypto::PeerId peer;
  net::Address address;  // default-constructed when the capture omits it
  bitswap::WantType type = bitswap::WantType::WantHave;
  cid::Cid cid;
  std::string vantage;   // empty when the capture omits it
};

/// A scalar field pulled out of a flat JSON object.
struct JsonField {
  std::string key;
  std::string value;     // unescaped for strings, raw text otherwise
  bool is_string = false;
};

/// Minimal dependency-free scan of one flat JSON object. String values are
/// unescaped; numbers/booleans/null are kept as raw text; a nested object
/// holding only a dag-json link ({"/": "..."}) yields that link string;
/// any other nested object/array value is skipped balanced (the key is not
/// reported). Returns false on malformed JSON.
bool scan_json_object(std::string_view line, std::vector<JsonField>* fields);

/// Parses a Bitswap want type from any accepted spelling: the CSV names
/// ("WANT_HAVE"), lowercase/dashed variants ("want-have"), short forms
/// ("have", "block", "cancel"), or the metric-exporter numeric convention
/// (0 = block, 1 = have) combined with `cancel`.
std::optional<bitswap::WantType> parse_want_type(std::string_view text,
                                                 bool cancel);

/// Parses one NDJSON capture line. On failure returns false and sets
/// `error` to a short reason ("bad cid", "missing timestamp", ...).
bool parse_ndjson_record(std::string_view line, CaptureRecord* out,
                         std::string* error);

/// Column plan built from a CSV header line.
class CsvLayout {
 public:
  /// Maps header column names (with aliases) to record fields. Fails when
  /// a required column (timestamp, peer, type, cid) is missing.
  static std::optional<CsvLayout> from_header(std::string_view header,
                                              std::string* error);

  bool parse(std::string_view line, CaptureRecord* out,
             std::string* error) const;

 private:
  int timestamp_ = -1;
  int peer_ = -1;
  int address_ = -1;
  int type_ = -1;
  int cancel_ = -1;
  int cid_ = -1;
  int vantage_ = -1;
  std::size_t columns_ = 0;
};

/// Renders a record back into one NDJSON capture line (no trailing
/// newline) — the inverse of parse_ndjson_record, used by capture export
/// and the round-trip tests.
std::string format_ndjson_record(const CaptureRecord& record);

/// Same for the CSV form; `csv_capture_header()` is the matching header.
std::string csv_capture_header();
std::string format_csv_record(const CaptureRecord& record);

}  // namespace ipfsmon::ingest
