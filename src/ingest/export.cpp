#include "ingest/export.hpp"

#include "ingest/stream.hpp"
#include "tracestore/merge.hpp"
#include "util/strings.hpp"

namespace ipfsmon::ingest {

std::optional<ExportStats> export_capture(const tracestore::TraceStore& store,
                                          const std::string& path,
                                          const ExportOptions& options,
                                          std::string* error) {
  const CaptureFormat format = options.format == CaptureFormat::kAuto
                                   ? CaptureFormat::kNdjson
                                   : options.format;
  auto writer = LineWriter::open(path, options.gzip, error);
  if (writer == nullptr) return std::nullopt;

  ExportStats stats;
  std::vector<std::string> vantage_by_id;
  if (store.meta()) {
    stats.wall_epoch_ns = store.meta()->wall_epoch_ns;
    for (const auto& [name, id] : store.meta()->monitors) {
      if (id >= vantage_by_id.size()) vantage_by_id.resize(id + 1);
      vantage_by_id[id] = name;
    }
  }
  const auto vantage_for = [&](trace::MonitorId id) -> std::string {
    if (id < vantage_by_id.size() && !vantage_by_id[id].empty()) {
      return vantage_by_id[id];
    }
    return util::format("m%u", id);
  };

  bool ok = true;
  if (format == CaptureFormat::kCsv) ok = writer->write(csv_capture_header());
  tracestore::StoreCursor cursor(store);
  trace::TraceEntry entry;
  while (ok && cursor.next(entry)) {
    CaptureRecord record;
    record.wall_ns = stats.wall_epoch_ns + entry.timestamp;
    record.peer = entry.peer;
    record.address = entry.address;
    record.type = entry.type;
    record.cid = entry.cid;
    record.vantage = vantage_for(entry.monitor);
    ok = writer->write(format == CaptureFormat::kCsv
                           ? format_csv_record(record)
                           : format_ndjson_record(record));
    ++stats.entries;
  }
  if (!ok || !writer->close()) {
    if (error != nullptr) *error = "write failed: " + path;
    return std::nullopt;
  }
  return stats;
}

}  // namespace ipfsmon::ingest
