#include "ingest/stream.hpp"

#include <cstdio>
#include <vector>

#if defined(IPFSMON_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace ipfsmon::ingest {

namespace {

/// Shared line assembly over a "fill my buffer" primitive.
class BufferedLineReader : public LineReader {
 public:
  bool next(std::string* line) override {
    line->clear();
    if (!error_.empty()) return false;
    bool saw_any = false;
    while (true) {
      if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
        if (!fill(&buffer_) || buffer_.empty()) {
          // Clean EOF: hand out a final unterminated line if one is
          // pending.
          return saw_any && error_.empty();
        }
      }
      const std::size_t nl = buffer_.find('\n', pos_);
      if (nl == std::string::npos) {
        line->append(buffer_, pos_, buffer_.size() - pos_);
        offset_ += buffer_.size() - pos_;
        pos_ = buffer_.size();
        saw_any = true;
        continue;
      }
      line->append(buffer_, pos_, nl - pos_);
      offset_ += (nl - pos_) + 1;  // + the newline itself
      pos_ = nl + 1;
      return true;
    }
  }

  std::uint64_t offset() const override { return offset_; }

 protected:
  /// Appends the next chunk of decoded bytes; false on error (error_ set)
  /// or clean EOF (out left empty).
  virtual bool fill(std::string* out) = 0;

 private:
  std::string buffer_;
  std::size_t pos_ = 0;
  std::uint64_t offset_ = 0;
};

class PlainLineReader final : public BufferedLineReader {
 public:
  explicit PlainLineReader(std::FILE* file) : file_(file) {}
  ~PlainLineReader() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool compressed() const override { return false; }

 protected:
  bool fill(std::string* out) override {
    char chunk[1 << 16];
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), file_);
    if (n == 0) {
      if (std::ferror(file_)) {
        error_ = "read error";
        return false;
      }
      return true;  // EOF
    }
    out->append(chunk, n);
    return true;
  }

 private:
  std::FILE* file_;
};

#if defined(IPFSMON_HAVE_ZLIB)
class GzipLineReader final : public BufferedLineReader {
 public:
  explicit GzipLineReader(std::FILE* file) : file_(file) {
    stream_.zalloc = Z_NULL;
    stream_.zfree = Z_NULL;
    stream_.opaque = Z_NULL;
    // 15 window bits + 16: gzip wrapper only.
    ok_ = inflateInit2(&stream_, 15 + 16) == Z_OK;
  }
  ~GzipLineReader() override {
    if (ok_) inflateEnd(&stream_);
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return ok_; }
  bool compressed() const override { return true; }

 protected:
  bool fill(std::string* out) override {
    if (!ok_ || done_) return done_;
    char decoded[1 << 16];
    while (out->empty()) {
      if (stream_.avail_in == 0) {
        const std::size_t n = std::fread(input_, 1, sizeof(input_), file_);
        if (n == 0) {
          if (std::ferror(file_)) {
            error_ = "read error";
            return false;
          }
          if (member_open_) {
            error_ = "truncated gzip stream";
            return false;
          }
          done_ = true;
          return true;
        }
        stream_.next_in = reinterpret_cast<Bytef*>(input_);
        stream_.avail_in = static_cast<uInt>(n);
      }
      stream_.next_out = reinterpret_cast<Bytef*>(decoded);
      stream_.avail_out = sizeof(decoded);
      const int rc = inflate(&stream_, Z_NO_FLUSH);
      if (rc != Z_OK && rc != Z_STREAM_END) {
        error_ = std::string("inflate: ") +
                 (stream_.msg != nullptr ? stream_.msg : "corrupt gzip data");
        return false;
      }
      member_open_ = rc != Z_STREAM_END;
      out->append(decoded, sizeof(decoded) - stream_.avail_out);
      if (rc == Z_STREAM_END) {
        // Concatenated members: reset and keep going on remaining input.
        if (stream_.avail_in == 0 && std::feof(file_)) {
          done_ = true;
          return true;
        }
        if (inflateReset(&stream_) != Z_OK) {
          error_ = "inflate reset failed";
          return false;
        }
      }
    }
    return true;
  }

 private:
  std::FILE* file_;
  z_stream stream_{};
  char input_[1 << 16];
  bool ok_ = false;
  bool done_ = false;
  bool member_open_ = false;
};
#endif  // IPFSMON_HAVE_ZLIB

class PlainLineWriter final : public LineWriter {
 public:
  explicit PlainLineWriter(std::FILE* file) : file_(file) {}
  ~PlainLineWriter() override { close(); }

  bool write(std::string_view line) override {
    if (file_ == nullptr) return false;
    return std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
           std::fputc('\n', file_) != EOF;
  }

  bool close() override {
    if (file_ == nullptr) return true;
    const bool ok = std::fclose(file_) == 0;
    file_ = nullptr;
    return ok;
  }

 private:
  std::FILE* file_;
};

#if defined(IPFSMON_HAVE_ZLIB)
class GzipLineWriter final : public LineWriter {
 public:
  explicit GzipLineWriter(gzFile file) : file_(file) {}
  ~GzipLineWriter() override { close(); }

  bool write(std::string_view line) override {
    if (file_ == nullptr) return false;
    if (!line.empty() &&
        gzwrite(file_, line.data(), static_cast<unsigned>(line.size())) !=
            static_cast<int>(line.size())) {
      return false;
    }
    return gzputc(file_, '\n') != -1;
  }

  bool close() override {
    if (file_ == nullptr) return true;
    const bool ok = gzclose(file_) == Z_OK;
    file_ = nullptr;
    return ok;
  }

 private:
  gzFile file_;
};
#endif  // IPFSMON_HAVE_ZLIB

}  // namespace

bool gzip_supported() {
#if defined(IPFSMON_HAVE_ZLIB)
  return true;
#else
  return false;
#endif
}

std::unique_ptr<LineReader> LineReader::open(const std::string& path,
                                             std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  const int b0 = std::fgetc(file);
  const int b1 = std::fgetc(file);
  std::rewind(file);
  const bool gzip = b0 == 0x1f && b1 == 0x8b;
  if (!gzip) return std::make_unique<PlainLineReader>(file);
#if defined(IPFSMON_HAVE_ZLIB)
  auto reader = std::make_unique<GzipLineReader>(file);
  if (!reader->ok()) {
    if (error != nullptr) *error = "zlib init failed for " + path;
    return nullptr;
  }
  return reader;
#else
  std::fclose(file);
  if (error != nullptr) {
    *error = path + " is gzip-compressed but this build has no zlib";
  }
  return nullptr;
#endif
}

bool LineReader::skip_to(std::uint64_t target) {
  std::string line;
  while (offset() < target) {
    if (!next(&line)) return false;
  }
  return offset() == target;
}

std::unique_ptr<LineWriter> LineWriter::open(const std::string& path,
                                             bool gzip, std::string* error) {
  if (!gzip) {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      if (error != nullptr) *error = "cannot open " + path;
      return nullptr;
    }
    return std::make_unique<PlainLineWriter>(file);
  }
#if defined(IPFSMON_HAVE_ZLIB)
  gzFile file = gzopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  return std::make_unique<GzipLineWriter>(file);
#else
  if (error != nullptr) {
    *error = "gzip output requested but this build has no zlib";
  }
  return nullptr;
#endif
}

}  // namespace ipfsmon::ingest
