// Deterministic replay: feeds a trace store (ingested from a real capture
// or spilled by the simulator — replay cannot tell) back through the
// discrete-event scheduler as timed monitor-capture events. The driver
// keeps exactly one pending event: each firing delivers every entry
// sharing the current timestamp to the sink at that SimTime, then
// schedules the next batch — so the whole store streams through with O(1)
// scheduler footprint and analyses, attack estimators, federation, and the
// query daemon run over real data exactly as they do over simulated data.
//
// Determinism: outputs depend only on the store contents. The same store
// replays to the same entry sequence and the same FNV-1a stream checksum
// every time, at every speedup — pacing (speedup > 0) only inserts wall
// clock sleeps between batches and never reorders or drops entries.
// speedup 0 means as-fast-as-possible (no sleeping at all).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "ingest/capture.hpp"
#include "sim/scheduler.hpp"
#include "tracestore/merge.hpp"
#include "tracestore/store.hpp"

namespace ipfsmon::ingest {

struct ReplayOptions {
  /// 0 = as fast as possible; N > 0 = pace batches so N seconds of sim
  /// time pass per wall-clock second (1 = real time).
  double speedup = 0.0;
  /// Re-run the streaming duplicate/re-broadcast flagger instead of
  /// trusting the flags stored in the segments.
  bool remark_flags = false;
  trace::PreprocessOptions preprocess;
  /// Replay only entries with start <= timestamp (< stop when set).
  util::SimTime start = 0;
  std::optional<util::SimTime> stop;
};

struct ReplayStats {
  std::uint64_t entries = 0;
  std::uint64_t batches = 0;  // distinct timestamps delivered
  util::SimTime first = 0;
  util::SimTime last = 0;
  /// FNV-1a 64 over the canonical byte rendering of every delivered entry
  /// in order — byte-identical replays have byte-identical checksums.
  std::uint64_t checksum = 0;
  bool done = false;  // the store has been fully delivered
};

/// Folds one entry into a running replay checksum (exposed so tests and
/// sinks can checksum independent streams the same way).
std::uint64_t fold_entry_checksum(std::uint64_t seed,
                                  const trace::TraceEntry& entry);

class ReplayDriver {
 public:
  /// Called once per entry, at scheduler.now() == entry.timestamp.
  using Sink = std::function<void(const trace::TraceEntry&)>;

  /// The store must outlive the driver; the driver must outlive the last
  /// scheduled pump (destroy it only after the scheduler drains or stops).
  ReplayDriver(sim::Scheduler& scheduler, const tracestore::TraceStore& store,
               ReplayOptions options = {});

  /// Schedules the first batch. Entries then flow to `sink` as the caller
  /// runs the scheduler (run_all() drains the whole store; run_until()
  /// replays a prefix).
  void start(Sink sink);

  const ReplayStats& stats() const { return stats_; }

 private:
  void pump();
  void schedule_next();

  sim::Scheduler& scheduler_;
  ReplayOptions options_;
  tracestore::StoreCursor cursor_;
  tracestore::StreamingFlagger flagger_;
  Sink sink_;
  trace::TraceEntry pending_{};
  bool have_pending_ = false;
  ReplayStats stats_;
  /// Wall-clock pacing anchor (microseconds since an arbitrary origin),
  /// captured at start() when speedup > 0.
  std::int64_t pace_origin_us_ = 0;
  util::SimTime pace_sim_origin_ = 0;
};

/// Convenience: replays the whole store through a fresh scheduler and
/// returns the stats (the common "run analysis over real data" path).
ReplayStats replay_store(const tracestore::TraceStore& store,
                         const ReplayDriver::Sink& sink,
                         ReplayOptions options = {});

}  // namespace ipfsmon::ingest
