// The discrete-event simulation core: a single-threaded event queue over
// simulated time. All protocol behaviour (message delivery, Bitswap
// re-broadcast timers, churn, DHT refresh) runs as scheduled events, which
// makes multi-month "wall clock" studies tractable and exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace ipfsmon::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event; lets the owner cancel it. Copyable —
/// all copies refer to the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly
  /// and on default-constructed handles.
  void cancel();

  /// True if the event is still pending (scheduled, not fired/cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  util::SimTime now() const { return now_; }

  /// Installs a wrapper applied to every subsequently scheduled event at
  /// schedule time — the hook higher layers use to carry request context
  /// (e.g. tracing) across timers without the scheduler knowing about
  /// them. Events scheduled before installation run unwrapped; pass an
  /// empty function to remove.
  void set_event_wrapper(std::function<EventFn(EventFn)> wrapper) {
    wrapper_ = std::move(wrapper);
  }

  /// Schedules `fn` to run at absolute time `when` (clamped to now).
  EventHandle schedule_at(util::SimTime when, EventFn fn);

  /// Schedules `fn` to run after `delay`.
  EventHandle schedule_after(util::SimDuration delay, EventFn fn);

  /// Runs events until the queue is empty or `deadline` is reached.
  /// The clock is advanced to `deadline` at the end, so repeated calls
  /// simulate contiguous time slices.
  void run_until(util::SimTime deadline);

  /// Runs all pending events (use only in tests; protocols with periodic
  /// timers never drain).
  void run_all();

  std::size_t pending_events() const { return queue_.size(); }

  /// Timestamp of the earliest pending event (nullopt when the queue is
  /// empty). May point at a cancelled entry — callers using this as a
  /// lower bound (the sharded coordinator's window start) stay correct,
  /// just occasionally conservative.
  std::optional<util::SimTime> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.top().when;
  }

  /// Total events dispatched since construction (for stats/benchmarks).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Events found cancelled when their dispatch time arrived (cancellation
  /// itself is O(1) on the handle; the queue entry is skipped here).
  std::uint64_t cancelled() const { return cancelled_; }

  /// Events whose requested time was in the past and was silently clamped
  /// to now by schedule_at. Nonzero values are normal for "fire asap"
  /// scheduling, but a cross-shard delivery landing here means its
  /// timestamp violated the conservative lookahead bound — surface this
  /// on /metrics rather than hiding it.
  std::uint64_t schedule_clamped() const { return schedule_clamped_; }

 private:
  struct Entry {
    util::SimTime when;
    std::uint64_t seq;  // FIFO tiebreak for same-time events
    EventFn fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  util::SimTime now_ = 0;
  std::function<EventFn(EventFn)> wrapper_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t schedule_clamped_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace ipfsmon::sim
