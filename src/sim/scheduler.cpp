#include "sim/scheduler.hpp"

namespace ipfsmon::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Scheduler::schedule_at(util::SimTime when, EventFn fn) {
  if (when < now_) {
    when = now_;
    ++schedule_clamped_;
  }
  if (wrapper_) fn = wrapper_(std::move(fn));
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

EventHandle Scheduler::schedule_after(util::SimDuration delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::run_until(util::SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because pop() follows immediately.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    if (entry.state->cancelled) {
      ++cancelled_;
      continue;
    }
    entry.state->fired = true;
    ++dispatched_;
    entry.fn();
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_all() {
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    if (entry.state->cancelled) {
      ++cancelled_;
      continue;
    }
    entry.state->fired = true;
    ++dispatched_;
    entry.fn();
  }
}

}  // namespace ipfsmon::sim
