// Sharded parallel simulation core: partitions a simulation across
// per-core sim::Scheduler shards and advances them in conservative
// barrier epochs (classic null-message-free conservative PDES). Each
// epoch runs every shard in parallel over the window
// [start, start + lookahead), where `lookahead` is a lower bound on the
// delay of any cross-shard interaction — so no event a remote shard could
// inject can land inside the window being executed.
//
// Determinism contract (see DESIGN.md Sec. 12): with a fixed shard count,
// runs are bit-identical regardless of thread interleaving — cross-shard
// messages carry a (delivery_time, send_time, src_shard, seq) key, are
// merged in that total order at each barrier, and only ever enter a shard
// between windows. shards == 1 bypasses the coordinator entirely (no
// threads, no extra state) and is byte-identical to a plain Scheduler.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/scheduler.hpp"

namespace ipfsmon::sim {

struct ShardedSchedulerConfig {
  std::size_t shards = 1;
  /// Conservative lookahead: every cross-shard post() must carry a
  /// delivery time >= (window start + lookahead). The network layer
  /// guarantees this by flooring cross-shard link latencies at this
  /// value. Must be > 0 when shards > 1.
  util::SimDuration lookahead = util::kMillisecond;
  /// Run shards 1..N-1 on worker threads (shard 0 always runs on the
  /// caller's thread). Off = sequential execution of the identical epoch
  /// schedule — same results, used to isolate determinism from threading.
  bool use_threads = true;
};

class ShardedScheduler {
 public:
  explicit ShardedScheduler(ShardedSchedulerConfig config);
  ~ShardedScheduler();

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  util::SimDuration lookahead() const { return config_.lookahead; }
  Scheduler& shard(std::size_t i) { return shards_[i]->scheduler; }
  const Scheduler& shard(std::size_t i) const { return shards_[i]->scheduler; }

  /// Global clock. Shard clocks are equal between run_until calls (each
  /// call leaves every shard advanced to its deadline).
  util::SimTime now() const { return shards_[0]->scheduler.now(); }

  /// Schedules `fn` on `dst_shard` at absolute time `when`. Callable from
  /// the shard thread currently executing `src_shard`'s window (the only
  /// caller during a window) or from the coordinator thread between
  /// windows. Delivery times below the current safe horizon are clamped
  /// to it and counted in lookahead_clamped() — the layer above is
  /// expected to make that impossible by flooring cross-shard latencies.
  void post(std::size_t src_shard, std::size_t dst_shard, util::SimTime when,
            EventFn fn);

  /// Runs all shards until `deadline` in barrier epochs. With one shard
  /// this is exactly shard(0).run_until(deadline).
  void run_until(util::SimTime deadline);

  // --- Statistics (readable from any thread; atomics) ----------------------
  std::uint64_t epochs() const { return epochs_.load(std::memory_order_relaxed); }
  std::uint64_t cross_posts() const {
    return cross_posts_.load(std::memory_order_relaxed);
  }
  std::uint64_t lookahead_clamped() const {
    return lookahead_clamped_.load(std::memory_order_relaxed);
  }
  /// Shard×epoch pairs that dispatched zero events — the idle fraction a
  /// too-small lookahead or load imbalance produces.
  std::uint64_t horizon_stalls() const {
    return horizon_stalls_.load(std::memory_order_relaxed);
  }
  /// Events dispatched by shard `i`, as of the last completed epoch
  /// barrier (live for the calling shard's own scheduler; snapshot
  /// elsewhere — safe to read from shard 0's metrics samplers).
  std::uint64_t shard_dispatched(std::size_t i) const {
    return shards_[i]->dispatched_snapshot.load(std::memory_order_relaxed);
  }
  std::uint64_t total_dispatched() const;

 private:
  struct CrossMsg {
    util::SimTime when;  // delivery time (post-clamp)
    util::SimTime sent;  // src shard clock at post time
    std::uint64_t seq;   // per-src-shard monotone counter
    std::size_t src;
    std::size_t dst;
    EventFn fn;
  };

  struct Shard {
    Scheduler scheduler;
    /// Outbox of cross-shard sends made while this shard's window runs.
    /// Thread-confined to the shard's executor during a window; drained
    /// by the coordinator at the barrier (ordering via the barrier lock).
    std::vector<CrossMsg> outbox;
    std::uint64_t next_out_seq = 0;
    std::atomic<std::uint64_t> dispatched_snapshot{0};
  };

  void drain_outboxes();
  void run_window(util::SimTime cap);
  void worker_loop(std::size_t index);
  void stop_workers();

  ShardedSchedulerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint64_t> last_dispatched_;  // coordinator-only

  /// Exclusive lower bound for cross-shard delivery times: cap + 1 of the
  /// window currently executing. post() clamps below it.
  std::atomic<util::SimTime> horizon_{0};

  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<std::uint64_t> cross_posts_{0};
  std::atomic<std::uint64_t> lookahead_clamped_{0};
  std::atomic<std::uint64_t> horizon_stalls_{0};

  // Generation-counted barrier for the persistent workers. The mutex
  // hand-offs at window start/end order every outbox append and scheduler
  // mutation between the coordinator and the shard threads.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  util::SimTime window_cap_ = 0;
  std::size_t workers_pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ipfsmon::sim
