#include "sim/shard.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ipfsmon::sim {

ShardedScheduler::ShardedScheduler(ShardedSchedulerConfig config)
    : config_(config) {
  if (config_.shards == 0) {
    throw std::invalid_argument("ShardedScheduler: shards must be >= 1");
  }
  if (config_.shards > 1 && config_.lookahead <= 0) {
    throw std::invalid_argument(
        "ShardedScheduler: lookahead must be positive with >1 shard");
  }
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  last_dispatched_.assign(config_.shards, 0);
  if (config_.shards > 1 && config_.use_threads) {
    workers_.reserve(config_.shards - 1);
    for (std::size_t i = 1; i < config_.shards; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }
}

ShardedScheduler::~ShardedScheduler() { stop_workers(); }

void ShardedScheduler::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ShardedScheduler::post(std::size_t src_shard, std::size_t dst_shard,
                            util::SimTime when, EventFn fn) {
  if (shards_.size() == 1) {
    shards_[0]->scheduler.schedule_at(when, std::move(fn));
    return;
  }
  // Defense in depth: the epoch mechanics guarantee every delivery from a
  // window ending at `cap` lands at >= cap + 1 when the network floors
  // cross-shard latency at `lookahead` (see run_until). A nonzero clamp
  // count therefore means the layer above broke the lookahead contract.
  util::SimTime horizon = horizon_.load(std::memory_order_relaxed);
  if (when < horizon) {
    when = horizon;
    lookahead_clamped_.fetch_add(1, std::memory_order_relaxed);
  }
  Shard& src = *shards_[src_shard];
  src.outbox.push_back(CrossMsg{when, src.scheduler.now(), src.next_out_seq++,
                                src_shard, dst_shard, std::move(fn)});
  cross_posts_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedScheduler::drain_outboxes() {
  // Merge all pending cross-shard messages in a total order independent of
  // which thread produced them when: (delivery, send_time, src, seq).
  // Scheduling into the destination in that order lets the destination
  // scheduler's FIFO seq tiebreak reproduce it for same-time deliveries.
  std::vector<CrossMsg> merged;
  for (auto& shard : shards_) {
    merged.insert(merged.end(), std::make_move_iterator(shard->outbox.begin()),
                  std::make_move_iterator(shard->outbox.end()));
    shard->outbox.clear();
  }
  if (merged.empty()) return;
  std::sort(merged.begin(), merged.end(),
            [](const CrossMsg& a, const CrossMsg& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.sent != b.sent) return a.sent < b.sent;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (auto& msg : merged) {
    shards_[msg.dst]->scheduler.schedule_at(msg.when, std::move(msg.fn));
  }
}

void ShardedScheduler::run_window(util::SimTime cap) {
  if (workers_.empty()) {
    // Sequential mode: identical epoch schedule, one thread.
    for (auto& shard : shards_) {
      shard->scheduler.run_until(cap);
      shard->dispatched_snapshot.store(shard->scheduler.dispatched(),
                                       std::memory_order_relaxed);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    window_cap_ = cap;
    workers_pending_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  shards_[0]->scheduler.run_until(cap);
  shards_[0]->dispatched_snapshot.store(shards_[0]->scheduler.dispatched(),
                                        std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return workers_pending_ == 0; });
}

void ShardedScheduler::worker_loop(std::size_t index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    util::SimTime cap = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      cap = window_cap_;
    }
    Shard& shard = *shards_[index];
    shard.scheduler.run_until(cap);
    shard.dispatched_snapshot.store(shard.scheduler.dispatched(),
                                    std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_pending_;
    }
    done_cv_.notify_one();
  }
}

void ShardedScheduler::run_until(util::SimTime deadline) {
  if (shards_.size() == 1) {
    shards_[0]->scheduler.run_until(deadline);
    shards_[0]->dispatched_snapshot.store(shards_[0]->scheduler.dispatched(),
                                          std::memory_order_relaxed);
    return;
  }
  while (true) {
    drain_outboxes();
    // Window start: the earliest pending event anywhere. Every shard's
    // clock is <= start, so running each shard to `cap` dispatches only
    // events in [start, cap] — and any cross-shard send made by those
    // events is delivered at >= start + lookahead >= cap + 1.
    util::SimTime start = std::numeric_limits<util::SimTime>::max();
    for (auto& shard : shards_) {
      if (auto t = shard->scheduler.next_event_time()) {
        start = std::min(start, *t);
      }
    }
    if (start == std::numeric_limits<util::SimTime>::max() ||
        start > deadline) {
      break;
    }
    util::SimTime cap = deadline;
    if (deadline - start >= config_.lookahead) {
      cap = start + config_.lookahead - 1;
    }
    horizon_.store(cap + 1, std::memory_order_relaxed);
    run_window(cap);
    epochs_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t stalls = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      std::uint64_t now_dispatched =
          shards_[i]->dispatched_snapshot.load(std::memory_order_relaxed);
      if (now_dispatched == last_dispatched_[i]) ++stalls;
      last_dispatched_[i] = now_dispatched;
    }
    if (stalls > 0) horizon_stalls_.fetch_add(stalls, std::memory_order_relaxed);
  }
  // Deliver sends from the final window, then advance every clock to the
  // deadline so the next run_until call starts from a uniform global time.
  drain_outboxes();
  horizon_.store(deadline, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    shard->scheduler.run_until(deadline);
    shard->dispatched_snapshot.store(shard->scheduler.dispatched(),
                                     std::memory_order_relaxed);
  }
}

std::uint64_t ShardedScheduler::total_dispatched() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) total += shard_dispatched(i);
  return total;
}

}  // namespace ipfsmon::sim
