#include "tracestore/rollup.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_set>

#include "tracestore/bloom.hpp"
#include "util/varint.hpp"

namespace ipfsmon::tracestore {

namespace {

constexpr std::uint32_t kRollupMagic = 0x54535255;  // "TSRU"
constexpr std::uint64_t kRollupVersion = 1;
constexpr std::size_t kTrailerBytes = 16;

std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

void put_u32_le(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64_le(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32_le(util::BytesView v) {
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) out = (out << 8) | v[static_cast<size_t>(i)];
  return out;
}

std::uint64_t get_u64_le(util::BytesView v) {
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | v[static_cast<size_t>(i)];
  return out;
}

/// Bucket start for a timestamp: floor division, correct for negatives.
util::SimTime bucket_start_of(util::SimTime t, util::SimDuration width) {
  util::SimTime q = t / width;
  if (t % width != 0 && t < 0) --q;
  return q * width;
}

util::Bytes encode_rollup(const SegmentRollup& rollup) {
  util::Bytes out;
  util::varint_append(out, kRollupVersion);
  util::varint_append(out, static_cast<std::uint64_t>(rollup.bucket_width));
  util::varint_append(out, rollup.entry_count);
  util::varint_append(out, zigzag_encode(rollup.min_time));
  util::varint_append(out, zigzag_encode(rollup.max_time));
  util::varint_append(out, rollup.distinct_peers);
  util::varint_append(out, rollup.distinct_cids);
  util::varint_append(out, rollup.buckets.size());
  // Bucket starts are multiples of bucket_width in ascending order; store
  // them as deltas in units of the width so they stay 1-2 bytes each.
  util::SimTime prev = 0;
  bool first = true;
  for (const auto& b : rollup.buckets) {
    const std::int64_t delta_units =
        first ? b.start / rollup.bucket_width
              : (b.start - prev) / rollup.bucket_width;
    first = false;
    prev = b.start;
    util::varint_append(out, zigzag_encode(delta_units));
    util::varint_append(out, b.want_have);
    util::varint_append(out, b.want_block);
    util::varint_append(out, b.cancels);
    util::varint_append(out, b.duplicates);
    util::varint_append(out, b.rebroadcasts);
    util::varint_append(out, b.clean);
  }
  return out;
}

/// Cursor mirroring segment.cpp's Parser for varint-heavy payloads.
struct Parser {
  util::BytesView view;
  std::size_t pos = 0;

  std::optional<std::uint64_t> varint() {
    const auto v = util::varint_decode(view.subspan(pos));
    if (!v) return std::nullopt;
    pos += v->consumed;
    return v->value;
  }
};

std::optional<SegmentRollup> decode_rollup(util::BytesView bytes) {
  Parser p{bytes};
  const auto version = p.varint();
  if (!version || *version != kRollupVersion) return std::nullopt;
  SegmentRollup rollup;
  const auto width = p.varint();
  const auto count = p.varint();
  const auto min_time = p.varint();
  const auto max_time = p.varint();
  const auto peers = p.varint();
  const auto cids = p.varint();
  const auto buckets = p.varint();
  if (!width || *width == 0 || !count || !min_time || !max_time || !peers ||
      !cids || !buckets) {
    return std::nullopt;
  }
  rollup.bucket_width = static_cast<util::SimDuration>(*width);
  rollup.entry_count = *count;
  rollup.min_time = zigzag_decode(*min_time);
  rollup.max_time = zigzag_decode(*max_time);
  rollup.distinct_peers = *peers;
  rollup.distinct_cids = *cids;
  rollup.buckets.reserve(*buckets);
  util::SimTime prev = 0;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < *buckets; ++i) {
    const auto delta = p.varint();
    const auto wh = p.varint();
    const auto wb = p.varint();
    const auto ca = p.varint();
    const auto dup = p.varint();
    const auto reb = p.varint();
    const auto clean = p.varint();
    if (!delta || !wh || !wb || !ca || !dup || !reb || !clean) {
      return std::nullopt;
    }
    RollupBucket bucket;
    bucket.start = prev + zigzag_decode(*delta) * rollup.bucket_width;
    if (i != 0 && bucket.start <= prev) return std::nullopt;  // not ascending
    prev = bucket.start;
    bucket.want_have = *wh;
    bucket.want_block = *wb;
    bucket.cancels = *ca;
    bucket.duplicates = *dup;
    bucket.rebroadcasts = *reb;
    bucket.clean = *clean;
    total += bucket.entries();
    rollup.buckets.push_back(bucket);
  }
  if (total != rollup.entry_count) return std::nullopt;
  return rollup;
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

std::string rollup_path_for(const std::string& segment_path) {
  return segment_path + ".rollup";
}

SegmentRollup build_rollup(const trace::Trace& entries,
                           util::SimDuration bucket_width) {
  SegmentRollup rollup;
  rollup.bucket_width = bucket_width;
  rollup.entry_count = entries.size();

  std::map<util::SimTime, RollupBucket> buckets;
  std::unordered_set<crypto::PeerId> peers;
  std::unordered_set<cid::Cid> cids;
  bool first = true;
  for (const auto& e : entries.entries()) {
    if (first || e.timestamp < rollup.min_time) rollup.min_time = e.timestamp;
    if (first || e.timestamp > rollup.max_time) rollup.max_time = e.timestamp;
    first = false;
    peers.insert(e.peer);
    cids.insert(e.cid);
    const util::SimTime start = bucket_start_of(e.timestamp, bucket_width);
    RollupBucket& b = buckets[start];
    b.start = start;
    switch (e.type) {
      case bitswap::WantType::WantHave: ++b.want_have; break;
      case bitswap::WantType::WantBlock: ++b.want_block; break;
      case bitswap::WantType::Cancel: ++b.cancels; break;
    }
    if (e.is_duplicate()) ++b.duplicates;
    if (e.is_rebroadcast()) ++b.rebroadcasts;
    if (e.is_clean()) ++b.clean;
  }
  rollup.distinct_peers = peers.size();
  rollup.distinct_cids = cids.size();
  rollup.buckets.reserve(buckets.size());
  for (auto& [start, bucket] : buckets) rollup.buckets.push_back(bucket);
  return rollup;
}

bool write_rollup_file(const std::string& path, const SegmentRollup& rollup,
                       std::string* error) {
  const util::Bytes payload = encode_rollup(rollup);
  util::Bytes trailer;
  put_u32_le(trailer, static_cast<std::uint32_t>(payload.size()));
  put_u64_le(trailer, fnv1a64(payload, 0));
  put_u32_le(trailer, kRollupMagic);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail(error, "cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.write(reinterpret_cast<const char*>(trailer.data()),
              static_cast<std::streamsize>(trailer.size()));
    if (!out) return fail(error, "short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return fail(error, "rename " + tmp + ": " + ec.message());
  return true;
}

std::optional<SegmentRollup> read_rollup_file(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return std::nullopt;
  }
  std::ostringstream collected;
  collected << in.rdbuf();
  const std::string data = collected.str();
  if (data.size() < kTrailerBytes) {
    if (error != nullptr) *error = path + ": truncated (no trailer)";
    return std::nullopt;
  }
  const util::BytesView view(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  const util::BytesView trailer = view.subspan(data.size() - kTrailerBytes);
  if (get_u32_le(trailer.subspan(12)) != kRollupMagic) {
    if (error != nullptr) *error = path + ": bad trailer magic";
    return std::nullopt;
  }
  const std::uint32_t payload_len = get_u32_le(trailer.subspan(0, 4));
  if (payload_len + kTrailerBytes != data.size()) {
    if (error != nullptr) *error = path + ": payload length mismatch";
    return std::nullopt;
  }
  const util::BytesView payload = view.subspan(0, payload_len);
  if (fnv1a64(payload, 0) != get_u64_le(trailer.subspan(4, 8))) {
    if (error != nullptr) *error = path + ": payload checksum mismatch";
    return std::nullopt;
  }
  auto rollup = decode_rollup(payload);
  if (!rollup && error != nullptr) *error = path + ": malformed payload";
  return rollup;
}

std::optional<SegmentRollup> rollup_from_segment(
    const std::string& segment_path, util::SimDuration bucket_width,
    std::string* error) {
  auto reader = SegmentReader::open(segment_path, error);
  if (!reader) return std::nullopt;
  trace::Trace entries;
  trace::TraceEntry e;
  while (reader->next(e)) entries.append(e);
  if (entries.size() != reader->footer().entry_count) {
    if (error != nullptr) {
      *error = segment_path + ": segment decode stopped early";
    }
    return std::nullopt;
  }
  return build_rollup(entries, bucket_width);
}

}  // namespace ipfsmon::tracestore
