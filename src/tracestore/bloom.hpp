// Bloom filters for segment footers: each segment records an approximate
// peer set and CID set so scans can skip segments that cannot possibly
// contain a queried key. Classic double hashing (Kirsch–Mitzenmacher):
// k probe positions derived from two 64-bit FNV-1a hashes, so membership
// tests never rehash the key material.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "cid/cid.hpp"
#include "crypto/keys.hpp"
#include "util/bytes.hpp"

namespace ipfsmon::tracestore {

/// 64-bit FNV-1a over `data`, folded into `seed` (use distinct seeds to get
/// independent hash streams from the same bytes).
std::uint64_t fnv1a64(util::BytesView data, std::uint64_t seed);

/// The (h1, h2) pair double hashing derives its k probes from.
struct BloomHash {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
};

BloomHash bloom_hash(util::BytesView key);
BloomHash bloom_hash(const crypto::PeerId& peer);
BloomHash bloom_hash(const cid::Cid& cid);

class BloomFilter {
 public:
  /// Empty filter: contains nothing, might_contain() is always false.
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` at `bits_per_key` (default 10
  /// bits/key ≈ 1% false-positive rate with the derived k ≈ 7 probes).
  static BloomFilter with_capacity(std::size_t expected_keys,
                                   std::size_t bits_per_key = 10);

  /// Reconstructs a filter from serialized parts; nullopt when the byte
  /// count does not match `bit_count` or `hash_count` is implausible.
  static std::optional<BloomFilter> from_parts(std::uint64_t bit_count,
                                               std::uint32_t hash_count,
                                               util::Bytes bits);

  void insert(const BloomHash& h);
  bool might_contain(const BloomHash& h) const;

  std::uint64_t bit_count() const { return bit_count_; }
  std::uint32_t hash_count() const { return hash_count_; }
  const util::Bytes& bytes() const { return bits_; }
  bool empty() const { return bit_count_ == 0; }

 private:
  std::uint64_t bit_count_ = 0;
  std::uint32_t hash_count_ = 0;
  util::Bytes bits_;
};

}  // namespace ipfsmon::tracestore
