#include "tracestore/pool.hpp"

#include <algorithm>

namespace ipfsmon::tracestore {

/// One submitted batch: a shared task function plus per-worker index
/// ranges with atomic cursors. Claiming a task is a fetch_add on a range
/// cursor (own range first, then steal); completion is a countdown.
struct ScanPool::Ticket::Batch {
  std::function<void(std::size_t)> fn;

  struct Range {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    // Keep cursors on separate cache lines; they are hammered by steals.
    char padding[48] = {};
  };
  std::vector<Range> ranges;
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  /// Claims one task index, preferring range `hint`. False when every
  /// range is drained (tasks may still be running on other threads).
  bool take(std::size_t hint, std::size_t* out) {
    const std::size_t n = ranges.size();
    for (std::size_t k = 0; k < n; ++k) {
      Range& range = ranges[(hint + k) % n];
      if (range.next.load(std::memory_order_relaxed) >= range.end) continue;
      const std::size_t i = range.next.fetch_add(1, std::memory_order_relaxed);
      if (i < range.end) {
        *out = i;
        return true;
      }
    }
    return false;
  }

  bool drained() const {
    for (const Range& range : ranges) {
      if (range.next.load(std::memory_order_relaxed) < range.end) return false;
    }
    return true;
  }

  void finish_one() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_all();
    }
  }

  void wait() {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [this] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  }
};

void ScanPool::Ticket::wait() {
  if (batch_ != nullptr) batch_->wait();
}

ScanPool::ScanPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ScanPool::~ScanPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ScanPool::worker_loop(std::size_t id) {
  for (;;) {
    std::shared_ptr<Ticket::Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !batches_.empty(); });
      if (batches_.empty()) {
        if (stop_) return;
        continue;
      }
      batch = batches_.front();
    }
    std::size_t index = 0;
    while (batch->take(id, &index)) {
      batch->fn(index);
      batch->finish_one();
    }
    // Every task claimed: retire the batch so siblings move on. The tasks
    // still running were claimed by their runners; completion is tracked
    // by the countdown, not queue membership.
    std::lock_guard<std::mutex> lock(mu_);
    if (!batches_.empty() && batches_.front() == batch) batches_.pop_front();
  }
}

ScanPool::Ticket ScanPool::run(std::size_t count,
                               std::function<void(std::size_t)> fn) {
  auto batch = std::make_shared<Ticket::Batch>();
  if (count == 0) return Ticket(std::move(batch));
  batch->fn = std::move(fn);
  batch->remaining.store(count, std::memory_order_relaxed);
  const std::size_t parts = std::max<std::size_t>(
      1, std::min(workers_.size(), count));
  batch->ranges = std::vector<Ticket::Batch::Range>(parts);
  const std::size_t chunk = count / parts;
  const std::size_t extra = count % parts;
  std::size_t start = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = chunk + (p < extra ? 1 : 0);
    batch->ranges[p].next.store(start, std::memory_order_relaxed);
    batch->ranges[p].end = start + len;
    start += len;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batches_.push_back(batch);
  }
  cv_.notify_all();
  return Ticket(std::move(batch));
}

void ScanPool::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& fn) {
  Ticket ticket = run(count, fn);
  if (ticket.batch_ != nullptr && ticket.batch_->fn) {
    std::size_t index = 0;
    while (ticket.batch_->take(workers_.size(), &index)) {
      ticket.batch_->fn(index);
      ticket.batch_->finish_one();
    }
  }
  ticket.wait();
}

ScanPool::Ticket ScanPool::submit(std::function<void()> task) {
  return run(1, [task = std::move(task)](std::size_t) { task(); });
}

}  // namespace ipfsmon::tracestore
