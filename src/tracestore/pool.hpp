// A persistent work-stealing pool for scan and read-ahead work. Workers
// are spawned once (per store or per executor) and live for the owner's
// lifetime, so issuing a scan costs a condition-variable wake instead of
// a thread spawn per query.
//
// Work arrives as batches of index-addressed tasks. Each batch is split
// into one contiguous range per worker; a worker drains its own range
// first (locality) and then steals from the other ranges, so a skewed
// batch (some segments pruned, some huge) still keeps every core busy.
// Range cursors are lock-free atomics; the pool mutex only guards batch
// queue membership and idle sleeping.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ipfsmon::tracestore {

class ScanPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ScanPool(std::size_t threads = 0);
  ~ScanPool();
  ScanPool(const ScanPool&) = delete;
  ScanPool& operator=(const ScanPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Completion handle for an asynchronously submitted batch.
  class Ticket {
   public:
    Ticket() = default;
    /// Blocks until every task in the batch has finished. Safe to call
    /// repeatedly or on an empty ticket.
    void wait();
    explicit operator bool() const { return batch_ != nullptr; }

   private:
    friend class ScanPool;
    struct Batch;
    explicit Ticket(std::shared_ptr<Batch> batch) : batch_(std::move(batch)) {}
    std::shared_ptr<Batch> batch_;
  };

  /// Enqueues `fn(0..count-1)` on the pool and returns immediately; the
  /// caller typically consumes results produced by the tasks and then
  /// waits the ticket.
  Ticket run(std::size_t count, std::function<void(std::size_t)> fn);

  /// run() + the calling thread joins the stealing until the batch is
  /// drained, then blocks for completion.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// One-task convenience for read-ahead style work.
  Ticket submit(std::function<void()> task);

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Ticket::Batch>> batches_;
  bool stop_ = false;
};

}  // namespace ipfsmon::tracestore
