// Predicate-pushdown scans over a trace store. A ScanQuery names a time
// range and/or peer/CID sets; the executor prunes whole segments with the
// footer index (time range first, then Bloom membership) and decodes the
// survivors on a small thread pool. Matches stream to the visitor in
// segment order — deterministic, and memory-bounded by the matches of the
// segments currently in flight, never the whole result.
#pragma once

#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "tracestore/store.hpp"

namespace ipfsmon::tracestore {

struct ScanQuery {
  /// Inclusive time bounds; unset = unbounded.
  std::optional<util::SimTime> min_time;
  std::optional<util::SimTime> max_time;
  /// Entry must match one of these peers / CIDs; empty = any. Hashed sets
  /// so membership stays O(1) even for large watch lists.
  std::unordered_set<crypto::PeerId> peers;
  std::unordered_set<cid::Cid> cids;

  bool matches(const trace::TraceEntry& entry) const;
};

struct ScanStats {
  std::size_t segments_total = 0;
  std::size_t segments_scanned = 0;
  std::size_t segments_pruned_time = 0;
  std::size_t segments_pruned_bloom = 0;
  std::uint64_t entries_matched = 0;
};

class ScanExecutor {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ScanExecutor(std::size_t threads = 0);

  /// Runs `query` over `store`, calling `visit` on the consumer thread for
  /// every matching entry, in segment order. Skipped-as-corrupt segments
  /// go through store.warn() like the streaming readers.
  ScanStats scan(const TraceStore& store, const ScanQuery& query,
                 const std::function<void(const trace::TraceEntry&)>& visit)
      const;

  std::size_t threads() const { return threads_; }

 private:
  std::size_t threads_;
};

}  // namespace ipfsmon::tracestore
