// Predicate-pushdown scans over a trace store. A ScanQuery names a time
// range and/or peer/CID sets; the executor prunes whole segments with the
// footer index (time range first, then Bloom membership) and decodes the
// survivors on a small thread pool. Matches stream to the visitor in
// segment order — deterministic, and memory-bounded by the matches of the
// segments currently in flight, never the whole result.
#pragma once

#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "tracestore/store.hpp"

namespace ipfsmon::tracestore {

struct ScanQuery {
  /// Inclusive time bounds; unset = unbounded.
  std::optional<util::SimTime> min_time;
  std::optional<util::SimTime> max_time;
  /// Entry must match one of these peers / CIDs; empty = any. Hashed sets
  /// so membership stays O(1) even for large watch lists.
  std::unordered_set<crypto::PeerId> peers;
  std::unordered_set<cid::Cid> cids;

  bool matches(const trace::TraceEntry& entry) const;
};

struct ScanStats {
  std::size_t segments_total = 0;
  std::size_t segments_scanned = 0;
  std::size_t segments_pruned_time = 0;
  std::size_t segments_pruned_bloom = 0;
  std::uint64_t entries_matched = 0;
};

/// Wall-clock timing of one decoded segment within a profiled scan.
/// Timestamps are obs::wall_micros_now() microseconds, so callers can
/// turn each row directly into a span.
struct SegmentScanProfile {
  std::size_t segment = 0;
  std::string file;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  /// Time inside SegmentReader::next (decode) vs. ScanQuery::matches.
  std::int64_t decode_us = 0;
  std::int64_t match_us = 0;
  std::uint64_t entries = 0;
  std::uint64_t matched = 0;
};

/// Optional breakdown of a scan() call, filled only when requested — the
/// per-entry clock reads it needs are skipped entirely on unprofiled
/// scans, keeping the default path fast.
struct ScanProfile {
  /// The single pass that applies footer time-range + Bloom pruning.
  std::int64_t prune_start_us = 0;
  std::int64_t prune_end_us = 0;
  /// Decoded (not pruned) segments, in segment order.
  std::vector<SegmentScanProfile> segments;
};

class ScanExecutor {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ScanExecutor(std::size_t threads = 0);

  /// Runs `query` over `store`, calling `visit` on the consumer thread for
  /// every matching entry, in segment order. Skipped-as-corrupt segments
  /// go through store.warn() like the streaming readers. Pass a profile
  /// to collect per-segment decode/match sub-timings (span tracing).
  ScanStats scan(const TraceStore& store, const ScanQuery& query,
                 const std::function<void(const trace::TraceEntry&)>& visit,
                 ScanProfile* profile = nullptr) const;

  std::size_t threads() const { return threads_; }

 private:
  std::size_t threads_;
};

}  // namespace ipfsmon::tracestore
