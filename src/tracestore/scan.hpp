// Predicate-pushdown scans over a trace store. A ScanQuery names a time
// range and/or peer/CID sets; the executor prunes whole segments with the
// footer index (time range first, then Bloom membership) and decodes the
// survivors on a persistent work-stealing pool. Matches stream to the
// visitor in segment order — deterministic, and memory-bounded by the
// matches of the segments currently in flight, never the whole result.
//
// Matching inside a decoded segment takes the dictionary fast path: the
// query's peer/CID sets are resolved against the segment's interned
// dictionaries once (a flat open-addressing HotSet probe per dictionary
// entry), and every record is then matched on integer ids — no per-entry
// hashing, and entries are only materialized after they match.
#pragma once

#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "tracestore/store.hpp"

namespace ipfsmon::tracestore {

struct ScanQuery {
  /// Inclusive time bounds; unset = unbounded.
  std::optional<util::SimTime> min_time;
  std::optional<util::SimTime> max_time;
  /// Entry must match one of these peers / CIDs; empty = any. Hashed sets
  /// so membership stays O(1) even for large watch lists.
  std::unordered_set<crypto::PeerId> peers;
  std::unordered_set<cid::Cid> cids;

  bool matches(const trace::TraceEntry& entry) const;
};

struct ScanStats {
  std::size_t segments_total = 0;
  std::size_t segments_scanned = 0;
  std::size_t segments_pruned_time = 0;
  std::size_t segments_pruned_bloom = 0;
  /// Segments opened but skipped without decoding a single entry because
  /// no dictionary key survived the query's key sets (a Bloom false
  /// positive caught after the dictionary resolve).
  std::size_t segments_pruned_dictionary = 0;
  std::uint64_t entries_matched = 0;
  /// Records decoded (before the predicate) and segment-body bytes read,
  /// for MB/s and entries/s accounting in the benches.
  std::uint64_t entries_decoded = 0;
  std::uint64_t bytes_scanned = 0;

  bool operator==(const ScanStats&) const = default;
};

/// Wall-clock timing of one decoded segment within a profiled scan.
/// Timestamps are obs::wall_micros_now() microseconds, so callers can
/// turn each row directly into a span.
struct SegmentScanProfile {
  std::size_t segment = 0;
  std::string file;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  /// Time inside SegmentReader::next_raw (decode) vs. id matching.
  std::int64_t decode_us = 0;
  std::int64_t match_us = 0;
  std::uint64_t entries = 0;
  std::uint64_t matched = 0;
};

/// Optional breakdown of a scan() call, filled only when requested — the
/// per-entry clock reads it needs are skipped entirely on unprofiled
/// scans, keeping the default path fast.
struct ScanProfile {
  /// The single pass that applies footer time-range + Bloom pruning.
  std::int64_t prune_start_us = 0;
  std::int64_t prune_end_us = 0;
  /// Decoded (not pruned) segments, in segment order.
  std::vector<SegmentScanProfile> segments;
};

class ScanExecutor {
 public:
  /// `threads` = 0 (the default) runs scans on the store's shared
  /// persistent pool (TraceStore::scan_pool()). A non-zero count gives
  /// the executor its own long-lived pool of exactly that size, created
  /// once here — no per-scan thread spawning either way.
  explicit ScanExecutor(std::size_t threads = 0);

  /// Runs `query` over `store`, calling `visit` on the consumer thread for
  /// every matching entry, in segment order. Skipped-as-corrupt segments
  /// go through store.warn() like the streaming readers. Pass a profile
  /// to collect per-segment decode/match sub-timings (span tracing).
  ScanStats scan(const TraceStore& store, const ScanQuery& query,
                 const std::function<void(const trace::TraceEntry&)>& visit,
                 ScanProfile* profile = nullptr) const;

  /// 0 = sharing the store's pool; otherwise this executor's pool size.
  std::size_t threads() const { return threads_; }

 private:
  ScanPool& pool_for(const TraceStore& store) const;

  std::size_t threads_;
  std::shared_ptr<ScanPool> own_pool_;  // only when threads_ != 0
};

}  // namespace ipfsmon::tracestore
