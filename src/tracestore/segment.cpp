#include "tracestore/segment.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "trace/io.hpp"
#include "util/varint.hpp"

namespace ipfsmon::tracestore {

namespace {

constexpr std::uint32_t kTrailerMagic = 0x54535347;  // "TSSG"
constexpr std::size_t kTrailerBytes = 16;
constexpr std::uint32_t kCompactMagic = 0x49504d32;  // "IPM2", body magic

std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

void put_u32_le(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64_le(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32_le(util::BytesView v) {
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) out = (out << 8) | v[static_cast<size_t>(i)];
  return out;
}

std::uint64_t get_u64_le(util::BytesView v) {
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | v[static_cast<size_t>(i)];
  return out;
}

void append_bloom(util::Bytes& out, const BloomFilter& bloom) {
  util::varint_append(out, bloom.bit_count());
  util::varint_append(out, bloom.hash_count());
  out.insert(out.end(), bloom.bytes().begin(), bloom.bytes().end());
}

util::Bytes encode_footer(const SegmentFooter& footer) {
  util::Bytes out;
  util::varint_append(out, footer.entry_count);
  util::varint_append(out, zigzag_encode(footer.min_time));
  util::varint_append(out, zigzag_encode(footer.max_time));
  util::varint_append(out, footer.body_bytes);
  put_u64_le(out, footer.body_checksum);
  append_bloom(out, footer.peer_bloom);
  append_bloom(out, footer.cid_bloom);
  return out;
}

/// Cursor over a byte view for varint-heavy parsing.
struct Parser {
  util::BytesView view;
  std::size_t pos = 0;

  std::optional<std::uint64_t> varint() {
    const auto v = util::varint_decode(view.subspan(pos));
    if (!v) return std::nullopt;
    pos += v->consumed;
    return v->value;
  }

  std::optional<util::BytesView> take(std::size_t n) {
    if (pos + n > view.size()) return std::nullopt;
    const auto out = view.subspan(pos, n);
    pos += n;
    return out;
  }
};

std::optional<BloomFilter> parse_bloom(Parser& p) {
  const auto bit_count = p.varint();
  const auto hash_count = p.varint();
  if (!bit_count || !hash_count || *hash_count > 30) return std::nullopt;
  const auto raw = p.take((*bit_count + 7) / 8);
  if (!raw) return std::nullopt;
  return BloomFilter::from_parts(*bit_count,
                                 static_cast<std::uint32_t>(*hash_count),
                                 util::Bytes(raw->begin(), raw->end()));
}

std::optional<SegmentFooter> decode_footer(util::BytesView bytes) {
  Parser p{bytes};
  SegmentFooter footer;
  const auto count = p.varint();
  const auto min_time = p.varint();
  const auto max_time = p.varint();
  const auto body_bytes = p.varint();
  if (!count || !min_time || !max_time || !body_bytes) return std::nullopt;
  const auto checksum = p.take(8);
  if (!checksum) return std::nullopt;
  footer.entry_count = *count;
  footer.min_time = zigzag_decode(*min_time);
  footer.max_time = zigzag_decode(*max_time);
  footer.body_bytes = *body_bytes;
  footer.body_checksum = get_u64_le(*checksum);
  auto peer_bloom = parse_bloom(p);
  auto cid_bloom = parse_bloom(p);
  if (!peer_bloom || !cid_bloom) return std::nullopt;
  footer.peer_bloom = std::move(*peer_bloom);
  footer.cid_bloom = std::move(*cid_bloom);
  return footer;
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool write_segment_file(const std::string& path, const trace::Trace& entries,
                        std::size_t bloom_bits_per_key,
                        SegmentFooter* out_footer, std::string* error) {
  // Body: exactly the v2 compact encoding from trace/io.
  std::ostringstream body_stream;
  trace::write_binary_compact(body_stream, entries);
  const std::string body = body_stream.str();
  const util::BytesView body_view(
      reinterpret_cast<const std::uint8_t*>(body.data()), body.size());

  SegmentFooter footer;
  footer.entry_count = entries.size();
  footer.body_bytes = body.size();
  footer.body_checksum = fnv1a64(body_view, 0);

  std::unordered_set<crypto::PeerId> peers;
  std::unordered_set<cid::Cid> cids;
  bool first = true;
  for (const auto& e : entries.entries()) {
    if (first || e.timestamp < footer.min_time) footer.min_time = e.timestamp;
    if (first || e.timestamp > footer.max_time) footer.max_time = e.timestamp;
    first = false;
    peers.insert(e.peer);
    cids.insert(e.cid);
  }
  footer.peer_bloom = BloomFilter::with_capacity(peers.size(),
                                                 bloom_bits_per_key);
  for (const auto& p : peers) footer.peer_bloom.insert(bloom_hash(p));
  footer.cid_bloom = BloomFilter::with_capacity(cids.size(),
                                                bloom_bits_per_key);
  for (const auto& c : cids) footer.cid_bloom.insert(bloom_hash(c));

  const util::Bytes footer_bytes = encode_footer(footer);
  util::Bytes trailer;
  put_u32_le(trailer, static_cast<std::uint32_t>(footer_bytes.size()));
  put_u64_le(trailer, fnv1a64(footer_bytes, 0));
  put_u32_le(trailer, kTrailerMagic);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail(error, "cannot open " + tmp + " for writing");
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.write(reinterpret_cast<const char*>(footer_bytes.data()),
              static_cast<std::streamsize>(footer_bytes.size()));
    out.write(reinterpret_cast<const char*>(trailer.data()),
              static_cast<std::streamsize>(trailer.size()));
    if (!out) return fail(error, "short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return fail(error, "rename " + tmp + ": " + ec.message());
  if (out_footer != nullptr) *out_footer = footer;
  return true;
}

namespace {

/// Loads the whole file and validates the trailer + footer checksum.
/// On success `out_buffer` holds the file and `out_footer` the footer.
bool load_and_validate(const std::string& path, util::Bytes* out_buffer,
                       SegmentFooter* out_footer, bool verify_body,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, path + ": cannot open");
  std::ostringstream collected;
  collected << in.rdbuf();
  const std::string data = collected.str();
  if (data.size() < kTrailerBytes) {
    return fail(error, path + ": truncated (no trailer)");
  }
  const util::BytesView view(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  const util::BytesView trailer = view.subspan(data.size() - kTrailerBytes);
  if (get_u32_le(trailer.subspan(12)) != kTrailerMagic) {
    return fail(error, path + ": bad trailer magic (truncated segment?)");
  }
  const std::uint32_t footer_len = get_u32_le(trailer.subspan(0, 4));
  if (footer_len + kTrailerBytes > data.size()) {
    return fail(error, path + ": footer length exceeds file size");
  }
  const util::BytesView footer_bytes =
      view.subspan(data.size() - kTrailerBytes - footer_len, footer_len);
  if (fnv1a64(footer_bytes, 0) != get_u64_le(trailer.subspan(4, 8))) {
    return fail(error, path + ": footer checksum mismatch");
  }
  auto footer = decode_footer(footer_bytes);
  if (!footer) return fail(error, path + ": malformed footer");
  if (footer->body_bytes + footer_len + kTrailerBytes != data.size()) {
    return fail(error, path + ": body length mismatch");
  }
  if (verify_body &&
      fnv1a64(view.subspan(0, footer->body_bytes), 0) !=
          footer->body_checksum) {
    return fail(error, path + ": body checksum mismatch");
  }
  if (out_buffer != nullptr) {
    out_buffer->assign(view.begin(), view.end());
  }
  *out_footer = std::move(*footer);
  return true;
}

}  // namespace

std::optional<SegmentFooter> read_segment_footer(const std::string& path,
                                                 std::string* error) {
  // Footer-only validation: body checksum is deferred to the actual read.
  SegmentFooter footer;
  if (!load_and_validate(path, nullptr, &footer, /*verify_body=*/false,
                         error)) {
    return std::nullopt;
  }
  return footer;
}

std::optional<SegmentReader> SegmentReader::open(const std::string& path,
                                                 std::string* error) {
  SegmentReader reader;
  if (!load_and_validate(path, &reader.buffer_, &reader.footer_,
                         /*verify_body=*/true, error)) {
    return std::nullopt;
  }
  if (!reader.parse_dictionaries(error)) return std::nullopt;
  return reader;
}

bool SegmentReader::parse_dictionaries(std::string* error) {
  Parser p{util::BytesView(buffer_.data(), footer_.body_bytes)};
  const auto magic = p.varint();
  if (!magic || *magic != kCompactMagic) {
    return fail(error, "bad body magic");
  }
  const auto count = p.varint();
  if (!count || *count != footer_.entry_count) {
    return fail(error, "entry count disagrees with footer");
  }
  const auto peer_count = p.varint();
  if (!peer_count) return fail(error, "malformed peer dictionary");
  peers_.reserve(*peer_count);
  for (std::uint64_t i = 0; i < *peer_count; ++i) {
    const auto raw = p.take(32);
    if (!raw) return fail(error, "malformed peer dictionary");
    crypto::PeerId::Digest digest;
    std::copy(raw->begin(), raw->end(), digest.begin());
    peers_.emplace_back(digest);
  }
  const auto addr_count = p.varint();
  if (!addr_count) return fail(error, "malformed address dictionary");
  addrs_.reserve(*addr_count);
  for (std::uint64_t i = 0; i < *addr_count; ++i) {
    const auto ip = p.varint();
    const auto port = p.varint();
    if (!ip || !port || *port > 65535) {
      return fail(error, "malformed address dictionary");
    }
    addrs_.push_back(net::Address{static_cast<std::uint32_t>(*ip),
                                  static_cast<std::uint16_t>(*port)});
  }
  const auto cid_count = p.varint();
  if (!cid_count) return fail(error, "malformed CID dictionary");
  cids_.reserve(*cid_count);
  for (std::uint64_t i = 0; i < *cid_count; ++i) {
    const auto len = p.varint();
    if (!len) return fail(error, "malformed CID dictionary");
    const auto raw = p.take(*len);
    if (!raw) return fail(error, "malformed CID dictionary");
    const auto parsed = cid::Cid::decode(*raw);
    if (!parsed) return fail(error, "malformed CID dictionary");
    cids_.push_back(*parsed);
  }
  pos_ = p.pos;
  remaining_ = footer_.entry_count;
  return true;
}

bool SegmentReader::next(trace::TraceEntry& out) {
  if (remaining_ == 0) return false;
  Parser p{util::BytesView(buffer_.data(), footer_.body_bytes), pos_};
  const auto delta = p.varint();
  const auto peer = p.varint();
  const auto addr = p.varint();
  const auto cid_ref = p.varint();
  const auto type_monitor = p.varint();
  const auto flags = p.varint();
  if (!delta || !peer || !addr || !cid_ref || !type_monitor || !flags) {
    remaining_ = 0;
    return false;
  }
  if (*peer >= peers_.size() || *addr >= addrs_.size() ||
      *cid_ref >= cids_.size() || (*type_monitor & 0x3) > 2) {
    remaining_ = 0;
    return false;
  }
  out.timestamp = prev_time_ + zigzag_decode(*delta);
  prev_time_ = out.timestamp;
  out.peer = peers_[*peer];
  out.address = addrs_[*addr];
  out.cid = cids_[*cid_ref];
  out.type = static_cast<bitswap::WantType>(*type_monitor & 0x3);
  out.monitor = static_cast<trace::MonitorId>(*type_monitor >> 2);
  out.flags = static_cast<std::uint32_t>(*flags);
  pos_ = p.pos;
  --remaining_;
  return true;
}

}  // namespace ipfsmon::tracestore
