#include "tracestore/segment.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#if defined(__unix__) || defined(__APPLE__)
#define IPFSMON_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "trace/io.hpp"
#include "util/varint.hpp"

namespace ipfsmon::tracestore {

namespace {

constexpr std::uint32_t kTrailerMagic = 0x54535347;  // "TSSG"
constexpr std::size_t kTrailerBytes = 16;
constexpr std::uint32_t kCompactMagic = 0x49504d32;  // "IPM2", body magic

std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

void put_u32_le(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64_le(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32_le(util::BytesView v) {
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) out = (out << 8) | v[static_cast<size_t>(i)];
  return out;
}

std::uint64_t get_u64_le(util::BytesView v) {
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | v[static_cast<size_t>(i)];
  return out;
}

void append_bloom(util::Bytes& out, const BloomFilter& bloom) {
  util::varint_append(out, bloom.bit_count());
  util::varint_append(out, bloom.hash_count());
  out.insert(out.end(), bloom.bytes().begin(), bloom.bytes().end());
}

util::Bytes encode_footer(const SegmentFooter& footer) {
  util::Bytes out;
  util::varint_append(out, footer.entry_count);
  util::varint_append(out, zigzag_encode(footer.min_time));
  util::varint_append(out, zigzag_encode(footer.max_time));
  util::varint_append(out, footer.body_bytes);
  put_u64_le(out, footer.body_checksum);
  append_bloom(out, footer.peer_bloom);
  append_bloom(out, footer.cid_bloom);
  return out;
}

/// Cursor over a byte view for varint-heavy parsing.
struct Parser {
  util::BytesView view;
  std::size_t pos = 0;

  std::optional<std::uint64_t> varint() {
    const auto v = util::varint_decode(view.subspan(pos));
    if (!v) return std::nullopt;
    pos += v->consumed;
    return v->value;
  }

  std::optional<util::BytesView> take(std::size_t n) {
    if (pos + n > view.size()) return std::nullopt;
    const auto out = view.subspan(pos, n);
    pos += n;
    return out;
  }
};

std::optional<BloomFilter> parse_bloom(Parser& p) {
  const auto bit_count = p.varint();
  const auto hash_count = p.varint();
  if (!bit_count || !hash_count || *hash_count > 30) return std::nullopt;
  const auto raw = p.take((*bit_count + 7) / 8);
  if (!raw) return std::nullopt;
  return BloomFilter::from_parts(*bit_count,
                                 static_cast<std::uint32_t>(*hash_count),
                                 util::Bytes(raw->begin(), raw->end()));
}

std::optional<SegmentFooter> decode_footer(util::BytesView bytes) {
  Parser p{bytes};
  SegmentFooter footer;
  const auto count = p.varint();
  const auto min_time = p.varint();
  const auto max_time = p.varint();
  const auto body_bytes = p.varint();
  if (!count || !min_time || !max_time || !body_bytes) return std::nullopt;
  const auto checksum = p.take(8);
  if (!checksum) return std::nullopt;
  footer.entry_count = *count;
  footer.min_time = zigzag_decode(*min_time);
  footer.max_time = zigzag_decode(*max_time);
  footer.body_bytes = *body_bytes;
  footer.body_checksum = get_u64_le(*checksum);
  auto peer_bloom = parse_bloom(p);
  auto cid_bloom = parse_bloom(p);
  if (!peer_bloom || !cid_bloom) return std::nullopt;
  footer.peer_bloom = std::move(*peer_bloom);
  footer.cid_bloom = std::move(*cid_bloom);
  return footer;
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Validates trailer + footer over a whole-file view and decodes the
/// footer. Shared by the mapped reader and any in-memory validation.
bool parse_trailer_and_footer(const std::string& path, util::BytesView view,
                              SegmentFooter* out_footer, std::string* error) {
  if (view.size() < kTrailerBytes) {
    return fail(error, path + ": truncated (no trailer)");
  }
  const util::BytesView trailer = view.subspan(view.size() - kTrailerBytes);
  if (get_u32_le(trailer.subspan(12)) != kTrailerMagic) {
    return fail(error, path + ": bad trailer magic (truncated segment?)");
  }
  const std::uint32_t footer_len = get_u32_le(trailer.subspan(0, 4));
  if (footer_len + kTrailerBytes > view.size()) {
    return fail(error, path + ": footer length exceeds file size");
  }
  const util::BytesView footer_bytes =
      view.subspan(view.size() - kTrailerBytes - footer_len, footer_len);
  if (fnv1a64(footer_bytes, 0) != get_u64_le(trailer.subspan(4, 8))) {
    return fail(error, path + ": footer checksum mismatch");
  }
  auto footer = decode_footer(footer_bytes);
  if (!footer) return fail(error, path + ": malformed footer");
  if (footer->body_bytes + footer_len + kTrailerBytes != view.size()) {
    return fail(error, path + ": body length mismatch");
  }
  *out_footer = std::move(*footer);
  return true;
}

}  // namespace

std::string_view to_string(IoBackend backend) {
  switch (backend) {
    case IoBackend::kAuto: return "auto";
    case IoBackend::kMmap: return "mmap";
    case IoBackend::kBuffered: return "buffered";
  }
  return "unknown";
}

// --- SegmentMapping ---------------------------------------------------------

SegmentMapping& SegmentMapping::operator=(SegmentMapping&& other) noexcept {
  if (this == &other) return *this;
#ifdef IPFSMON_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  mtime_ns_ = other.mtime_ns_;
  owned_ = std::move(other.owned_);
  if (!mapped_ && size_ != 0) data_ = owned_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

SegmentMapping::~SegmentMapping() {
#ifdef IPFSMON_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

std::optional<SegmentMapping> SegmentMapping::open(const std::string& path,
                                                   IoBackend backend,
                                                   std::string* error) {
  SegmentMapping mapping;
#ifdef IPFSMON_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail(error, path + ": cannot open");
    return std::nullopt;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(error, path + ": cannot stat");
    return std::nullopt;
  }
  mapping.size_ = static_cast<std::size_t>(st.st_size);
#if defined(__APPLE__)
  mapping.mtime_ns_ = static_cast<std::int64_t>(st.st_mtimespec.tv_sec) *
                          1000000000 +
                      st.st_mtimespec.tv_nsec;
#else
  mapping.mtime_ns_ = static_cast<std::int64_t>(st.st_mtim.tv_sec) *
                          1000000000 +
                      st.st_mtim.tv_nsec;
#endif
  if (mapping.size_ == 0) {
    // Empty files cannot be mapped; an empty view fails validation later
    // with a proper "truncated" error either way.
    ::close(fd);
    return mapping;
  }
  if (backend != IoBackend::kBuffered) {
    void* addr =
        ::mmap(nullptr, mapping.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      // Scans decode front to back; tell the kernel to read ahead
      // aggressively and not to keep pages behind us.
      ::madvise(addr, mapping.size_, MADV_SEQUENTIAL);
      ::close(fd);
      mapping.data_ = static_cast<const std::uint8_t*>(addr);
      mapping.mapped_ = true;
      return mapping;
    }
    if (backend == IoBackend::kMmap) {
      ::close(fd);
      fail(error, path + ": mmap failed");
      return std::nullopt;
    }
    // kAuto: fall through to the buffered read on map failure.
  }
  mapping.owned_.resize(mapping.size_);
  std::size_t done = 0;
  while (done < mapping.size_) {
    const ssize_t got = ::pread(fd, mapping.owned_.data() + done,
                                mapping.size_ - done,
                                static_cast<off_t>(done));
    if (got <= 0) {
      ::close(fd);
      fail(error, path + ": short read");
      return std::nullopt;
    }
    done += static_cast<std::size_t>(got);
  }
  ::close(fd);
  mapping.data_ = mapping.owned_.data();
  return mapping;
#else
  if (backend == IoBackend::kMmap) {
    fail(error, path + ": mmap unavailable on this platform");
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, path + ": cannot open");
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) {
    fail(error, path + ": cannot size");
    return std::nullopt;
  }
  mapping.size_ = static_cast<std::size_t>(size);
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  mapping.mtime_ns_ =
      ec ? 0 : static_cast<std::int64_t>(mtime.time_since_epoch().count());
  mapping.owned_.resize(mapping.size_);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(mapping.owned_.data()),
          static_cast<std::streamsize>(mapping.size_));
  if (static_cast<std::size_t>(in.gcount()) != mapping.size_) {
    fail(error, path + ": short read");
    return std::nullopt;
  }
  mapping.data_ = mapping.owned_.data();
  return mapping;
#endif
}

// --- ValidationCache --------------------------------------------------------

bool ValidationCache::contains(const std::string& path, std::int64_t mtime_ns,
                               std::uint64_t size) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = verified_.find(path);
  if (it == verified_.end() || it->second.mtime_ns != mtime_ns ||
      it->second.size != size) {
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ValidationCache::remember(const std::string& path, std::int64_t mtime_ns,
                               std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  verified_[path] = Signature{mtime_ns, size};
}

std::size_t ValidationCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return verified_.size();
}

// --- Writing ----------------------------------------------------------------

bool write_segment_file(const std::string& path, const trace::Trace& entries,
                        std::size_t bloom_bits_per_key,
                        SegmentFooter* out_footer, std::string* error) {
  // Body: exactly the v2 compact encoding from trace/io.
  std::ostringstream body_stream;
  trace::write_binary_compact(body_stream, entries);
  const std::string body = body_stream.str();
  const util::BytesView body_view(
      reinterpret_cast<const std::uint8_t*>(body.data()), body.size());

  SegmentFooter footer;
  footer.entry_count = entries.size();
  footer.body_bytes = body.size();
  footer.body_checksum = fnv1a64(body_view, 0);

  std::unordered_set<crypto::PeerId> peers;
  std::unordered_set<cid::Cid> cids;
  bool first = true;
  for (const auto& e : entries.entries()) {
    if (first || e.timestamp < footer.min_time) footer.min_time = e.timestamp;
    if (first || e.timestamp > footer.max_time) footer.max_time = e.timestamp;
    first = false;
    peers.insert(e.peer);
    cids.insert(e.cid);
  }
  footer.peer_bloom = BloomFilter::with_capacity(peers.size(),
                                                 bloom_bits_per_key);
  for (const auto& p : peers) footer.peer_bloom.insert(bloom_hash(p));
  footer.cid_bloom = BloomFilter::with_capacity(cids.size(),
                                                bloom_bits_per_key);
  for (const auto& c : cids) footer.cid_bloom.insert(bloom_hash(c));

  const util::Bytes footer_bytes = encode_footer(footer);
  util::Bytes trailer;
  put_u32_le(trailer, static_cast<std::uint32_t>(footer_bytes.size()));
  put_u64_le(trailer, fnv1a64(footer_bytes, 0));
  put_u32_le(trailer, kTrailerMagic);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail(error, "cannot open " + tmp + " for writing");
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.write(reinterpret_cast<const char*>(footer_bytes.data()),
              static_cast<std::streamsize>(footer_bytes.size()));
    out.write(reinterpret_cast<const char*>(trailer.data()),
              static_cast<std::streamsize>(trailer.size()));
    if (!out) return fail(error, "short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return fail(error, "rename " + tmp + ": " + ec.message());
  if (out_footer != nullptr) *out_footer = footer;
  return true;
}

// --- Footer-only read -------------------------------------------------------

std::optional<SegmentFooter> read_segment_footer(const std::string& path,
                                                 std::string* error) {
  // Called for every segment on store open and scan prune, so it must not
  // touch the body: seek to EOF, read the fixed trailer, then read exactly
  // footer_len more bytes — two small tail reads regardless of file size.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, path + ": cannot open");
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const std::int64_t file_size = in.tellg();
  if (file_size < static_cast<std::int64_t>(kTrailerBytes)) {
    fail(error, path + ": truncated (no trailer)");
    return std::nullopt;
  }
  std::uint8_t trailer_raw[kTrailerBytes];
  in.seekg(file_size - static_cast<std::int64_t>(kTrailerBytes));
  in.read(reinterpret_cast<char*>(trailer_raw), kTrailerBytes);
  if (static_cast<std::size_t>(in.gcount()) != kTrailerBytes) {
    fail(error, path + ": short trailer read");
    return std::nullopt;
  }
  const util::BytesView trailer(trailer_raw, kTrailerBytes);
  if (get_u32_le(trailer.subspan(12)) != kTrailerMagic) {
    fail(error, path + ": bad trailer magic (truncated segment?)");
    return std::nullopt;
  }
  const std::uint32_t footer_len = get_u32_le(trailer.subspan(0, 4));
  if (footer_len + kTrailerBytes > static_cast<std::uint64_t>(file_size)) {
    fail(error, path + ": footer length exceeds file size");
    return std::nullopt;
  }
  util::Bytes footer_bytes(footer_len);
  in.seekg(file_size - static_cast<std::int64_t>(kTrailerBytes) -
           static_cast<std::int64_t>(footer_len));
  in.read(reinterpret_cast<char*>(footer_bytes.data()), footer_len);
  if (static_cast<std::size_t>(in.gcount()) != footer_len) {
    fail(error, path + ": short footer read");
    return std::nullopt;
  }
  if (fnv1a64(footer_bytes, 0) != get_u64_le(trailer.subspan(4, 8))) {
    fail(error, path + ": footer checksum mismatch");
    return std::nullopt;
  }
  auto footer = decode_footer(footer_bytes);
  if (!footer) {
    fail(error, path + ": malformed footer");
    return std::nullopt;
  }
  if (footer->body_bytes + footer_len + kTrailerBytes !=
      static_cast<std::uint64_t>(file_size)) {
    fail(error, path + ": body length mismatch");
    return std::nullopt;
  }
  return footer;
}

// --- SegmentReader ----------------------------------------------------------

std::optional<SegmentReader> SegmentReader::open(const std::string& path,
                                                 std::string* error) {
  return open(path, SegmentOpenOptions{}, error);
}

std::optional<SegmentReader> SegmentReader::open(
    const std::string& path, const SegmentOpenOptions& options,
    std::string* error) {
  auto mapping = SegmentMapping::open(path, options.backend, error);
  if (!mapping) return std::nullopt;

  SegmentReader reader;
  if (!parse_trailer_and_footer(path, mapping->view(), &reader.footer_,
                                error)) {
    return std::nullopt;
  }
  // Body checksum: a streaming pass over the mapping — no copy. A
  // ValidationCache hit on (path, mtime, size) means this exact file
  // already passed, so sealed segments are verified once, not per query.
  const bool already_verified =
      options.validated != nullptr &&
      options.validated->contains(path, mapping->mtime_ns(), mapping->size());
  if (!already_verified) {
    if (fnv1a64(mapping->view().subspan(0, reader.footer_.body_bytes), 0) !=
        reader.footer_.body_checksum) {
      fail(error, path + ": body checksum mismatch");
      return std::nullopt;
    }
    if (options.validated != nullptr) {
      options.validated->remember(path, mapping->mtime_ns(), mapping->size());
    }
  }
  reader.mapping_ = std::move(*mapping);
  if (!reader.parse_dictionaries(error)) return std::nullopt;
  return reader;
}

bool SegmentReader::parse_dictionaries(std::string* error) {
  Parser p{body()};
  const auto magic = p.varint();
  if (!magic || *magic != kCompactMagic) {
    return fail(error, "bad body magic");
  }
  const auto count = p.varint();
  if (!count || *count != footer_.entry_count) {
    return fail(error, "entry count disagrees with footer");
  }
  const auto peer_count = p.varint();
  if (!peer_count) return fail(error, "malformed peer dictionary");
  peers_.reserve(*peer_count);
  for (std::uint64_t i = 0; i < *peer_count; ++i) {
    const auto raw = p.take(32);
    if (!raw) return fail(error, "malformed peer dictionary");
    crypto::PeerId::Digest digest;
    std::copy(raw->begin(), raw->end(), digest.begin());
    peers_.emplace_back(digest);
  }
  const auto addr_count = p.varint();
  if (!addr_count) return fail(error, "malformed address dictionary");
  addrs_.reserve(*addr_count);
  for (std::uint64_t i = 0; i < *addr_count; ++i) {
    const auto ip = p.varint();
    const auto port = p.varint();
    if (!ip || !port || *port > 65535) {
      return fail(error, "malformed address dictionary");
    }
    addrs_.push_back(net::Address{static_cast<std::uint32_t>(*ip),
                                  static_cast<std::uint16_t>(*port)});
  }
  const auto cid_count = p.varint();
  if (!cid_count) return fail(error, "malformed CID dictionary");
  // CIDs are variable-length heap values and a raw scan may never touch
  // them, so only their byte ranges are indexed here; cid_key() decodes
  // on first use. The bytes are covered by the body checksum, so a
  // structurally valid span is all open-time validation requires.
  cid_spans_.reserve(*cid_count);
  for (std::uint64_t i = 0; i < *cid_count; ++i) {
    const auto len = p.varint();
    if (!len) return fail(error, "malformed CID dictionary");
    const std::uint64_t at = p.pos;
    const auto raw = p.take(*len);
    if (!raw) return fail(error, "malformed CID dictionary");
    cid_spans_.push_back(KeySpan{at, static_cast<std::uint32_t>(*len)});
  }
  cids_.assign(cid_spans_.size(), cid::Cid());
  cid_done_.assign(cid_spans_.size(), 0);
  pos_ = p.pos;
  remaining_ = footer_.entry_count;
  return true;
}

bool SegmentReader::next_raw(RawRecord& out) {
  if (remaining_ == 0) return false;
  Parser p{body(), pos_};
  const auto delta = p.varint();
  const auto peer = p.varint();
  const auto addr = p.varint();
  const auto cid_ref = p.varint();
  const auto type_monitor = p.varint();
  const auto flags = p.varint();
  if (!delta || !peer || !addr || !cid_ref || !type_monitor || !flags) {
    remaining_ = 0;
    return false;
  }
  if (*peer >= peers_.size() || *addr >= addrs_.size() ||
      *cid_ref >= cid_spans_.size() || (*type_monitor & 0x3) > 2) {
    remaining_ = 0;
    return false;
  }
  out.timestamp = prev_time_ + zigzag_decode(*delta);
  prev_time_ = out.timestamp;
  out.peer = static_cast<std::uint32_t>(*peer);
  out.addr = static_cast<std::uint32_t>(*addr);
  out.cid = static_cast<std::uint32_t>(*cid_ref);
  out.type = static_cast<bitswap::WantType>(*type_monitor & 0x3);
  out.monitor = static_cast<trace::MonitorId>(*type_monitor >> 2);
  out.flags = static_cast<std::uint32_t>(*flags);
  pos_ = p.pos;
  --remaining_;
  return true;
}

const cid::Cid& SegmentReader::cid_key(std::uint32_t id) const {
  if (cid_done_[id] == 0) {
    const KeySpan span = cid_spans_[id];
    auto parsed = cid::Cid::decode(body().subspan(span.offset, span.length));
    // The span passed the body checksum, so a decode failure would take a
    // bug in our own writer; the id then maps to an empty CID rather than
    // poisoning the stream.
    if (parsed) cids_[id] = std::move(*parsed);
    cid_done_[id] = 1;
  }
  return cids_[id];
}

void SegmentReader::materialize(const RawRecord& raw,
                                trace::TraceEntry& out) const {
  out.timestamp = raw.timestamp;
  out.peer = peers_[raw.peer];
  out.address = addrs_[raw.addr];
  out.cid = cid_key(raw.cid);
  out.type = raw.type;
  out.monitor = raw.monitor;
  out.flags = raw.flags;
}

bool SegmentReader::next(trace::TraceEntry& out) {
  RawRecord raw;
  if (!next_raw(raw)) return false;
  materialize(raw, out);
  return true;
}

}  // namespace ipfsmon::tracestore
