// The on-disk trace store: a directory of segment files plus a MANIFEST.
//
//   <dir>/seg-000000.seg, seg-000001.seg, ...   (see segment.hpp)
//   <dir>/MANIFEST                              (text, written atomically)
//
// SegmentWriter appends entries (monitors record in time order) and rolls a
// new segment whenever the open one exceeds the entry cap or the time span
// cap, so every segment covers a bounded time window. finalize() flushes
// the open segment and publishes the manifest via write-to-temp + rename —
// a crashed run leaves either the previous manifest or none, never a
// half-written one. TraceStore is the read side: it parses the manifest,
// validates each segment's footer, skips unreadable segments with a
// recorded warning, and supports pruning whole segments by time range.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "tracestore/pool.hpp"
#include "tracestore/segment.hpp"
#include "trace/trace.hpp"
#include "util/walltime.hpp"

namespace ipfsmon::tracestore {

/// Optional store-level metadata sidecar ("STOREMETA", key=value text,
/// written atomically). Simulated stores don't have one; ingest writes it
/// so consumers can anchor the store's SimTime axis back to wall-clock
/// time: wall time = wall_epoch_ns + SimTime. Absence is not an error —
/// readers treat such stores as purely simulated.
struct StoreMeta {
  /// Unix nanoseconds corresponding to SimTime 0 in this store.
  util::WallNanos wall_epoch_ns = 0;
  /// Where the entries came from ("capture.ndjson.gz", ...), display only.
  std::string source;
  /// Capture format the store was ingested from ("ndjson", "csv", ...).
  std::string format;
  /// Vantage-point names and the MonitorId each was assigned during
  /// ingest, in id order ("us" -> 0, "de" -> 1, ...).
  std::vector<std::pair<std::string, std::uint32_t>> monitors;
};

/// Writes `<dir>/STOREMETA` via write-to-temp + rename.
bool write_store_meta(const std::string& dir, const StoreMeta& meta,
                      std::string* error = nullptr);

/// Reads `<dir>/STOREMETA`; nullopt when absent or unparsable.
std::optional<StoreMeta> read_store_meta(const std::string& dir);

struct StoreOptions {
  /// Roll the open segment after this many entries...
  std::uint64_t max_entries_per_segment = 1u << 18;
  /// ...or when it would span more than this much sim time.
  util::SimDuration max_segment_span = 6 * util::kHour;
  std::size_t bloom_bits_per_key = 10;
  /// Emit a "<segment>.rollup" pre-aggregate sidecar beside every flushed
  /// segment (see rollup.hpp). Rollups are derived data: failures to write
  /// one are warnings, never store failures.
  bool write_rollups = true;
  /// Bucket width of the emitted rollups.
  util::SimDuration rollup_bucket = util::kMinute;
  /// Optional instrumentation/warning sink (counters + warn events).
  /// The store keeps the pointer; the Obs must outlive it.
  obs::Obs* obs = nullptr;
  /// How readers get segment bytes: mmap when available (kAuto), or a
  /// forced backend (the property tests pin both and compare).
  IoBackend io_backend = IoBackend::kAuto;
  /// Workers in the store's shared scan pool (0 = hardware concurrency).
  /// The pool is created lazily on first use and lives with the store.
  std::size_t scan_threads = 0;
  /// Remember body-checksum validation across reads of unchanged sealed
  /// segments (keyed by path + mtime + size), so repeat queries skip the
  /// whole-body hash pass. Disable to re-verify on every open.
  bool reuse_validation = true;
  /// Use this cache instead of the store's own (reuse_validation must be
  /// on). Lets a federation coordinator verify a landed segment once and
  /// have every serving TraceStore opened over the same directory skip the
  /// re-validation pass. The cache must outlive the store.
  ValidationCache* shared_validation = nullptr;
};

/// What crash recovery found and did in a store directory.
struct RecoveryReport {
  std::size_t segments_kept = 0;
  /// Torn/corrupt segments quarantined as "<name>.torn" (their stale
  /// rollup sidecars are deleted).
  std::size_t segments_dropped = 0;
  std::uint64_t entries_recovered = 0;
  /// First segment index a resumed writer may use without colliding with
  /// any file seen on disk (valid or torn).
  std::size_t next_segment_index = 0;
  std::vector<std::pair<std::string, SegmentFooter>> segments;
  std::vector<std::string> notes;
};

/// Crash recovery for a store directory. After a crash the MANIFEST is
/// stale or missing (it is only published by finalize()), so this scans the
/// directory for segment files directly, validates each footer, renames any
/// torn segment (usually the tail that was mid-write) to "<name>.torn", and
/// rebuilds the MANIFEST atomically from the surviving segments. Idempotent.
/// Returns nullopt only when the directory itself is unusable.
std::optional<RecoveryReport> recover_store_dir(const std::string& dir,
                                                StoreOptions options = {},
                                                std::string* error = nullptr);

class SegmentWriter {
 public:
  /// Creates `dir` (and parents) and removes any previous store contents
  /// there, so a restarted run starts from a clean directory. Returns
  /// nullptr on IO failure (error describes why).
  static std::unique_ptr<SegmentWriter> create(const std::string& dir,
                                               StoreOptions options = {},
                                               std::string* error = nullptr);

  /// Reopens a crashed store for appending: runs recover_store_dir() on
  /// `dir`, keeps the surviving segments, and resumes writing at the next
  /// free segment index. Recovered entries count toward entries_written().
  /// `report`, when non-null, receives the recovery details. Returns
  /// nullptr when the directory is unusable.
  static std::unique_ptr<SegmentWriter> resume(const std::string& dir,
                                               StoreOptions options = {},
                                               RecoveryReport* report = nullptr,
                                               std::string* error = nullptr);

  ~SegmentWriter();
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Buffers `entry`, flushing a completed segment when a cap is hit.
  ///
  /// Entries are expected in non-decreasing time order (monitor recording
  /// order). The footer time range is computed from the data either way,
  /// so footers never lie — but out-of-order input degrades the store:
  /// segment time ranges may overlap (weakening time-range pruning and
  /// breaking StoreCursor's segments-are-time-ordered merge invariant) and
  /// the time-span roll cap is measured from the segment's *first* entry,
  /// not its minimum. Such appends are therefore counted (obs counter
  /// `ipfsmon_tracestore_unordered_appends_total` and
  /// unordered_appends()); producers that cannot trust their input order —
  /// real-capture ingest above all — must reject or clamp before
  /// appending (see ingest::IngestOptions::lenient).
  void append(const trace::TraceEntry& entry);

  /// Flushes the open segment and atomically publishes the manifest.
  /// Idempotent; append() may not be called afterwards.
  bool finalize();

  /// Durability point: flushes the open segment (if any) and publishes the
  /// manifest like finalize(), but keeps the writer appendable. After a
  /// crash, everything appended before the last checkpoint() survives
  /// recover_store_dir() intact. Ingest writes its resume checkpoint right
  /// after calling this. Returns false when any flush has failed.
  bool checkpoint();

  /// Simulates a crash: the buffered (unflushed) entries are discarded and
  /// finalize() becomes a no-op, leaving already-flushed segments on disk
  /// behind a stale or missing MANIFEST — exactly the state
  /// recover_store_dir() repairs. Used by PassiveMonitor::crash().
  void abandon();

  const std::string& dir() const { return dir_; }
  std::uint64_t entries_written() const { return entries_written_; }
  std::uint64_t segments_written() const { return segments_.size(); }
  /// Appends that went backwards in time (see append()).
  std::uint64_t unordered_appends() const { return unordered_appends_; }
  /// Set when any flush failed; finalize() also returns false then.
  bool failed() const { return failed_; }

 private:
  SegmentWriter(std::string dir, StoreOptions options);
  void flush_open_segment();

  std::string dir_;
  StoreOptions options_;
  trace::Trace open_;  // entries of the segment being built
  std::vector<std::pair<std::string, SegmentFooter>> segments_;
  // Next on-disk segment index. Tracked separately from segments_.size():
  // after recovery drops a torn tail, resumed writers must not reuse its
  // file name.
  std::size_t next_index_ = 0;
  std::uint64_t entries_written_ = 0;
  std::uint64_t unordered_appends_ = 0;
  util::SimTime last_timestamp_ = 0;
  bool finalized_ = false;
  bool failed_ = false;

  obs::Counter* segments_counter_ = nullptr;
  obs::Counter* entries_counter_ = nullptr;
  obs::Counter* unordered_counter_ = nullptr;
  obs::Histogram* flush_bytes_ = nullptr;
};

/// Read-side view of a store directory.
class TraceStore {
 public:
  struct Segment {
    std::string file;  // name relative to dir
    SegmentFooter footer;
    std::uint64_t file_bytes = 0;
  };

  /// Parses the manifest and validates every listed segment's footer.
  /// Unreadable/corrupt segments are skipped and reported in warnings()
  /// (and as obs warn events when options.obs is set). Returns nullopt
  /// only when the directory or manifest itself is unusable.
  static std::optional<TraceStore> open(const std::string& dir,
                                        StoreOptions options = {},
                                        std::string* error = nullptr);

  const std::string& dir() const { return dir_; }
  const std::vector<Segment>& segments() const { return segments_; }
  const std::vector<std::string>& warnings() const { return warnings_; }
  const StoreOptions& options() const { return options_; }
  /// Store-level metadata (wall-clock epoch, capture source) when a
  /// STOREMETA sidecar is present — i.e. when this store was ingested from
  /// a real capture. nullopt for simulated stores.
  const std::optional<StoreMeta>& meta() const { return meta_; }

  std::uint64_t total_entries() const;
  std::uint64_t total_bytes() const;
  util::SimTime min_time() const;
  util::SimTime max_time() const;

  std::string segment_path(std::size_t index) const;

  /// Per-open options for SegmentReader: the configured I/O backend plus
  /// this store's validation cache (when reuse is enabled). Everything a
  /// reader of this store should pass to SegmentReader::open.
  SegmentOpenOptions open_options() const;

  /// The store's shared persistent scan pool (query executors and the
  /// merge readers' read-ahead run on it). Created lazily, sized once
  /// from options().scan_threads, and lives as long as the store.
  ScanPool& scan_pool() const;

  /// The cache behind open_options(); null when reuse_validation is off.
  ValidationCache* validation_cache() const;

  /// Drops every segment whose entire time range lies before `cutoff`
  /// (file deleted, manifest rewritten atomically). Returns the number of
  /// segments removed.
  std::size_t prune_before(util::SimTime cutoff);

  /// Records a warning (and mirrors it to obs, when configured). Used by
  /// the streaming readers when they skip a segment mid-scan.
  void warn(const std::string& message) const;

 private:
  TraceStore() = default;
  bool rewrite_manifest() const;

  /// Heap-shared read-path state, so TraceStore stays movable while the
  /// lazily-created pool and the validation cache keep stable addresses.
  struct SharedReadState {
    std::mutex mu;  // guards pool creation
    std::shared_ptr<ScanPool> pool;
    ValidationCache validated;
  };

  std::string dir_;
  StoreOptions options_;
  std::vector<Segment> segments_;
  std::optional<StoreMeta> meta_;
  mutable std::vector<std::string> warnings_;
  std::shared_ptr<SharedReadState> shared_ =
      std::make_shared<SharedReadState>();
};

/// Writes the manifest for `segments` into `dir` atomically. Shared by the
/// writer's finalize() and the store's prune.
bool write_manifest(
    const std::string& dir,
    const std::vector<std::pair<std::string, SegmentFooter>>& segments,
    std::string* error = nullptr);

}  // namespace ipfsmon::tracestore
