// Out-of-core trace unification (paper Sec. IV-B, streaming form): a k-way
// time-ordered merge over per-monitor stores with bounded-window duplicate
// state. Matches the in-memory trace::unify exactly:
//
//  * the heap breaks timestamp ties by input index, which reproduces the
//    stable_sort order of concatenated per-monitor traces;
//  * StreamingFlagger keeps the same per-(peer, type, CID, monitor)
//    last-seen state as trace::mark_flags, but evicts records older than
//    the widest window — an entry outside every window can never set a
//    flag, so eviction cannot change any flag assignment while keeping
//    resident state proportional to the window, not the trace.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "tracestore/store.hpp"
#include "trace/preprocess.hpp"

namespace ipfsmon::tracestore {

/// Streams one store's entries in segment order (segments are written in
/// time order, so this is the monitor's recording order). While the
/// consumer decodes one segment, the next one is opened (and checksum-
/// validated) ahead of time on the store's scan pool, so a k-way merge
/// overlaps each input's open/validate I/O with merging. At most two
/// segments per cursor are resident (current + prefetched); corrupt
/// segments are skipped through store.warn() on the consumer thread.
class StoreCursor {
 public:
  explicit StoreCursor(const TraceStore& store);
  ~StoreCursor();
  StoreCursor(StoreCursor&&) = default;
  StoreCursor& operator=(StoreCursor&&) = default;
  StoreCursor(const StoreCursor&) = delete;
  StoreCursor& operator=(const StoreCursor&) = delete;

  bool next(trace::TraceEntry& out);

 private:
  /// One in-flight open, handed from the pool task to the consumer.
  struct Prefetch {
    std::size_t index = 0;
    std::optional<SegmentReader> reader;
    std::string error;  // set when the open failed
  };

  void start_prefetch();
  bool open_next_segment();

  const TraceStore* store_;
  std::size_t segment_index_ = 0;  // next segment to submit for prefetch
  std::optional<SegmentReader> reader_;
  std::shared_ptr<Prefetch> prefetch_;
  ScanPool::Ticket prefetch_ticket_;
};

/// Incremental re-implementation of trace::mark_flags: feed time-ordered
/// entries, get the same flags, with state bounded by the widest window.
class StreamingFlagger {
 public:
  explicit StreamingFlagger(trace::PreprocessOptions options = {});

  /// Overwrites `entry.flags` exactly as trace::mark_flags would.
  void mark(trace::TraceEntry& entry);

  /// High-water mark of resident (peer, type, CID) keys — the bench's
  /// bounded-memory evidence.
  std::size_t peak_keys() const { return peak_keys_; }

 private:
  struct Key {
    crypto::PeerId peer;
    bitswap::WantType type;
    cid::Cid cid;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      const std::size_t h1 = std::hash<crypto::PeerId>{}(k.peer);
      const std::size_t h2 = std::hash<cid::Cid>{}(k.cid);
      return h1 ^ (h2 * 0x9e3779b97f4a7c15ull) ^
             static_cast<std::size_t>(k.type);
    }
  };
  struct Expiry {
    util::SimTime time;
    Key key;
    trace::MonitorId monitor;
  };

  void evict_before(util::SimTime horizon);

  trace::PreprocessOptions options_;
  util::SimDuration max_window_;
  std::unordered_map<Key,
                     std::unordered_map<trace::MonitorId, util::SimTime>,
                     KeyHash>
      last_seen_;
  std::deque<Expiry> expiries_;
  std::size_t peak_keys_ = 0;
};

struct UnifyStats {
  std::uint64_t entries = 0;
  std::size_t peak_window_keys = 0;
};

/// Merges the input stores in time order, marks flags, and hands every
/// entry to `sink` — never holding more than one segment per input plus
/// the flagger's window state in memory.
UnifyStats unify_stores(
    const std::vector<const TraceStore*>& inputs,
    const std::function<void(const trace::TraceEntry&)>& sink,
    const trace::PreprocessOptions& options = {});

/// Same, spilling the flagged output into `out` (call out.finalize()
/// afterwards to publish the result store).
UnifyStats unify_to_store(const std::vector<const TraceStore*>& inputs,
                          SegmentWriter& out,
                          const trace::PreprocessOptions& options = {});

}  // namespace ipfsmon::tracestore
