#include "tracestore/scan.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "obs/span.hpp"

namespace ipfsmon::tracestore {

bool ScanQuery::matches(const trace::TraceEntry& entry) const {
  if (min_time && entry.timestamp < *min_time) return false;
  if (max_time && entry.timestamp > *max_time) return false;
  if (!peers.empty() && peers.count(entry.peer) == 0) return false;
  if (!cids.empty() && cids.count(entry.cid) == 0) return false;
  return true;
}

ScanExecutor::ScanExecutor(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

namespace {

enum class Prune { kNone, kTime, kBloom };

Prune prune_decision(const SegmentFooter& footer, const ScanQuery& query,
                     const std::vector<BloomHash>& peer_hashes,
                     const std::vector<BloomHash>& cid_hashes) {
  const util::SimTime lo =
      query.min_time ? *query.min_time : std::numeric_limits<util::SimTime>::min();
  const util::SimTime hi =
      query.max_time ? *query.max_time : std::numeric_limits<util::SimTime>::max();
  if (!footer.overlaps(lo, hi)) return Prune::kTime;
  const auto any_might_contain = [](const BloomFilter& bloom,
                                    const std::vector<BloomHash>& hashes) {
    for (const auto& h : hashes) {
      if (bloom.might_contain(h)) return true;
    }
    return false;
  };
  if (!peer_hashes.empty() &&
      !any_might_contain(footer.peer_bloom, peer_hashes)) {
    return Prune::kBloom;
  }
  if (!cid_hashes.empty() && !any_might_contain(footer.cid_bloom, cid_hashes)) {
    return Prune::kBloom;
  }
  return Prune::kNone;
}

}  // namespace

ScanStats ScanExecutor::scan(
    const TraceStore& store, const ScanQuery& query,
    const std::function<void(const trace::TraceEntry&)>& visit,
    ScanProfile* profile) const {
  ScanStats stats;
  const std::size_t n = store.segments().size();
  stats.segments_total = n;
  if (n == 0) return stats;

  // Hash the query keys once; workers only test bits.
  std::vector<BloomHash> peer_hashes;
  peer_hashes.reserve(query.peers.size());
  for (const auto& p : query.peers) peer_hashes.push_back(bloom_hash(p));
  std::vector<BloomHash> cid_hashes;
  cid_hashes.reserve(query.cids.size());
  for (const auto& c : query.cids) cid_hashes.push_back(bloom_hash(c));

  // Per-segment result slots filled by workers; the consumer drains them
  // strictly in segment order, so visit() sees a deterministic stream and
  // finished slots are released as soon as they are consumed.
  struct Slot {
    trace::Trace matches;
    std::string error;  // non-empty: segment skipped
    bool done = false;
    SegmentScanProfile profile;  // filled only when profiling
  };
  std::vector<Slot> slots(n);
  std::vector<Prune> pruned(n, Prune::kNone);
  if (profile != nullptr) profile->prune_start_us = obs::wall_micros_now();
  for (std::size_t i = 0; i < n; ++i) {
    pruned[i] =
        prune_decision(store.segments()[i].footer, query, peer_hashes,
                       cid_hashes);
  }
  if (profile != nullptr) profile->prune_end_us = obs::wall_micros_now();

  std::mutex mutex;
  std::condition_variable ready;
  std::atomic<std::size_t> next{0};
  const bool profiling = profile != nullptr;
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      Slot local;
      if (pruned[i] == Prune::kNone) {
        if (profiling) {
          local.profile.segment = i;
          local.profile.file = store.segments()[i].file;
          local.profile.start_us = obs::wall_micros_now();
        }
        std::string error;
        auto reader = SegmentReader::open(store.segment_path(i), &error);
        if (!reader) {
          local.error = error;
        } else if (profiling) {
          // Profiled decode: clock each next()/matches() pair. The extra
          // clock reads only happen on this branch, so unprofiled scans
          // pay nothing.
          trace::TraceEntry entry;
          std::int64_t t0 = obs::wall_micros_now();
          while (reader->next(entry)) {
            const std::int64_t t1 = obs::wall_micros_now();
            local.profile.decode_us += t1 - t0;
            ++local.profile.entries;
            const bool hit = query.matches(entry);
            if (hit) local.matches.append(entry);
            t0 = obs::wall_micros_now();
            local.profile.match_us += t0 - t1;
            if (hit) ++local.profile.matched;
          }
          local.profile.decode_us += obs::wall_micros_now() - t0;
        } else {
          trace::TraceEntry entry;
          while (reader->next(entry)) {
            if (query.matches(entry)) local.matches.append(entry);
          }
        }
        if (profiling) local.profile.end_us = obs::wall_micros_now();
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        slots[i] = std::move(local);
        slots[i].done = true;
      }
      ready.notify_all();
    }
  };

  std::vector<std::thread> pool;
  const std::size_t spawned = std::min(threads_, n);
  pool.reserve(spawned);
  for (std::size_t t = 0; t < spawned; ++t) pool.emplace_back(worker);

  for (std::size_t i = 0; i < n; ++i) {
    Slot slot;
    {
      std::unique_lock<std::mutex> lock(mutex);
      ready.wait(lock, [&] { return slots[i].done; });
      slot = std::move(slots[i]);
    }
    switch (pruned[i]) {
      case Prune::kTime:
        ++stats.segments_pruned_time;
        continue;
      case Prune::kBloom:
        ++stats.segments_pruned_bloom;
        continue;
      case Prune::kNone:
        break;
    }
    if (!slot.error.empty()) {
      store.warn("skipping segment during scan: " + slot.error);
      continue;
    }
    ++stats.segments_scanned;
    if (profiling) profile->segments.push_back(std::move(slot.profile));
    for (const auto& entry : slot.matches.entries()) {
      visit(entry);
      ++stats.entries_matched;
    }
  }
  for (auto& t : pool) t.join();

  if (store.options().obs != nullptr) {
    auto& reg = store.options().obs->metrics;
    reg.counter("ipfsmon_tracestore_segments_scanned_total",
                "Segments decoded by scan queries")
        .inc(stats.segments_scanned);
    reg.counter("ipfsmon_tracestore_segments_pruned_total",
                "Segments skipped via footer time range or Bloom filters")
        .inc(stats.segments_pruned_time + stats.segments_pruned_bloom);
    reg.counter("ipfsmon_tracestore_scan_entries_total",
                "Entries streamed to scan visitors")
        .inc(stats.entries_matched);
  }
  return stats;
}

}  // namespace ipfsmon::tracestore
