#include "tracestore/scan.hpp"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>

#include "obs/span.hpp"
#include "tracestore/hotset.hpp"

namespace ipfsmon::tracestore {

bool ScanQuery::matches(const trace::TraceEntry& entry) const {
  if (min_time && entry.timestamp < *min_time) return false;
  if (max_time && entry.timestamp > *max_time) return false;
  if (!peers.empty() && peers.count(entry.peer) == 0) return false;
  if (!cids.empty() && cids.count(entry.cid) == 0) return false;
  return true;
}

ScanExecutor::ScanExecutor(std::size_t threads) : threads_(threads) {
  if (threads_ != 0) {
    own_pool_ = std::make_shared<ScanPool>(threads_);
  }
}

ScanPool& ScanExecutor::pool_for(const TraceStore& store) const {
  return own_pool_ != nullptr ? *own_pool_ : store.scan_pool();
}

namespace {

enum class Prune { kNone, kTime, kBloom };

Prune prune_decision(const SegmentFooter& footer, const ScanQuery& query,
                     const std::vector<BloomHash>& peer_hashes,
                     const std::vector<BloomHash>& cid_hashes) {
  const util::SimTime lo =
      query.min_time ? *query.min_time : std::numeric_limits<util::SimTime>::min();
  const util::SimTime hi =
      query.max_time ? *query.max_time : std::numeric_limits<util::SimTime>::max();
  if (!footer.overlaps(lo, hi)) return Prune::kTime;
  const auto any_might_contain = [](const BloomFilter& bloom,
                                    const std::vector<BloomHash>& hashes) {
    for (const auto& h : hashes) {
      if (bloom.might_contain(h)) return true;
    }
    return false;
  };
  if (!peer_hashes.empty() &&
      !any_might_contain(footer.peer_bloom, peer_hashes)) {
    return Prune::kBloom;
  }
  if (!cid_hashes.empty() && !any_might_contain(footer.cid_bloom, cid_hashes)) {
    return Prune::kBloom;
  }
  return Prune::kNone;
}

/// Per-dictionary id masks for one segment: mask[id] is 1 when that
/// interned key is in the query's key set. Empty mask = the query does
/// not constrain this dimension. `any` is false when the query does
/// constrain it but no interned key qualifies — nothing in the segment
/// can match (a Bloom false positive, caught exactly).
struct IdMask {
  std::vector<std::uint8_t> allowed;
  bool any = true;

  bool pass(std::uint32_t id) const {
    return allowed.empty() || (id < allowed.size() && allowed[id] != 0);
  }
};

/// `key_at(id)` resolves an interned key; with an empty query key set it is
/// never called, so lazily-decoded dictionaries (CIDs) stay undecoded for
/// queries that do not constrain that dimension.
template <typename KeyAt, typename HotSetT>
IdMask resolve_mask(std::size_t count, const KeyAt& key_at,
                    const HotSetT& keys) {
  IdMask mask;
  if (keys.empty()) return mask;
  mask.allowed.assign(count, 0);
  mask.any = false;
  for (std::size_t id = 0; id < count; ++id) {
    if (keys.contains(key_at(id))) {
      mask.allowed[id] = 1;
      mask.any = true;
    }
  }
  return mask;
}

}  // namespace

ScanStats ScanExecutor::scan(
    const TraceStore& store, const ScanQuery& query,
    const std::function<void(const trace::TraceEntry&)>& visit,
    ScanProfile* profile) const {
  ScanStats stats;
  const std::size_t n = store.segments().size();
  stats.segments_total = n;
  if (n == 0) return stats;

  // Compile the query once: Bloom hashes for pruning, flat hot-sets for
  // the per-segment dictionary resolve, time bounds as plain integers.
  std::vector<BloomHash> peer_hashes;
  peer_hashes.reserve(query.peers.size());
  for (const auto& p : query.peers) peer_hashes.push_back(bloom_hash(p));
  std::vector<BloomHash> cid_hashes;
  cid_hashes.reserve(query.cids.size());
  for (const auto& c : query.cids) cid_hashes.push_back(bloom_hash(c));
  const HotSet<crypto::PeerId> hot_peers(query.peers);
  const HotSet<cid::Cid> hot_cids(query.cids);
  const util::SimTime lo =
      query.min_time ? *query.min_time : std::numeric_limits<util::SimTime>::min();
  const util::SimTime hi =
      query.max_time ? *query.max_time : std::numeric_limits<util::SimTime>::max();

  // Per-segment result slots filled by pool workers; the consumer (this
  // thread) drains them strictly in segment order, so visit() sees a
  // deterministic stream and finished slots are released as soon as they
  // are consumed.
  struct Slot {
    trace::Trace matches;
    std::string error;  // non-empty: segment skipped
    bool dictionary_pruned = false;
    std::uint64_t entries_decoded = 0;
    std::uint64_t bytes_scanned = 0;
    bool done = false;
    SegmentScanProfile profile;  // filled only when profiling
  };
  std::vector<Slot> slots(n);
  std::vector<Prune> pruned(n, Prune::kNone);
  if (profile != nullptr) profile->prune_start_us = obs::wall_micros_now();
  for (std::size_t i = 0; i < n; ++i) {
    pruned[i] =
        prune_decision(store.segments()[i].footer, query, peer_hashes,
                       cid_hashes);
  }
  if (profile != nullptr) profile->prune_end_us = obs::wall_micros_now();

  std::mutex mutex;
  std::condition_variable ready;
  const bool profiling = profile != nullptr;
  const SegmentOpenOptions open_options = store.open_options();
  auto task = [&](std::size_t i) {
    Slot local;
    if (pruned[i] == Prune::kNone) {
      if (profiling) {
        local.profile.segment = i;
        local.profile.file = store.segments()[i].file;
        local.profile.start_us = obs::wall_micros_now();
      }
      std::string error;
      auto reader =
          SegmentReader::open(store.segment_path(i), open_options, &error);
      if (!reader) {
        local.error = error;
      } else {
        // Resolve the query's key sets against this segment's interned
        // dictionaries once; the record loop then matches on integer ids
        // and never hashes a key.
        const auto& peers = reader->peer_dictionary();
        const IdMask peer_mask = resolve_mask(
            peers.size(), [&](std::size_t id) -> const crypto::PeerId& {
              return peers[id];
            },
            hot_peers);
        const IdMask cid_mask = resolve_mask(
            reader->cid_key_count(),
            [&](std::size_t id) -> const cid::Cid& {
              return reader->cid_key(static_cast<std::uint32_t>(id));
            },
            hot_cids);
        if (!peer_mask.any || !cid_mask.any) {
          local.dictionary_pruned = true;
        } else {
          local.bytes_scanned = reader->footer().body_bytes;
          RawRecord raw;
          trace::TraceEntry entry;
          if (profiling) {
            // Profiled decode: clock each next_raw()/match pair. The
            // extra clock reads only happen on this branch, so
            // unprofiled scans pay nothing.
            std::int64_t t0 = obs::wall_micros_now();
            while (reader->next_raw(raw)) {
              const std::int64_t t1 = obs::wall_micros_now();
              local.profile.decode_us += t1 - t0;
              ++local.entries_decoded;
              ++local.profile.entries;
              const bool hit = raw.timestamp >= lo && raw.timestamp <= hi &&
                               peer_mask.pass(raw.peer) &&
                               cid_mask.pass(raw.cid);
              if (hit) {
                reader->materialize(raw, entry);
                local.matches.append(entry);
                ++local.profile.matched;
              }
              t0 = obs::wall_micros_now();
              local.profile.match_us += t0 - t1;
            }
            local.profile.decode_us += obs::wall_micros_now() - t0;
          } else {
            while (reader->next_raw(raw)) {
              ++local.entries_decoded;
              if (raw.timestamp >= lo && raw.timestamp <= hi &&
                  peer_mask.pass(raw.peer) && cid_mask.pass(raw.cid)) {
                reader->materialize(raw, entry);
                local.matches.append(entry);
              }
            }
          }
        }
      }
      if (profiling) local.profile.end_us = obs::wall_micros_now();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      slots[i] = std::move(local);
      slots[i].done = true;
    }
    ready.notify_all();
  };

  ScanPool::Ticket ticket = pool_for(store).run(n, task);

  for (std::size_t i = 0; i < n; ++i) {
    Slot slot;
    {
      std::unique_lock<std::mutex> lock(mutex);
      ready.wait(lock, [&] { return slots[i].done; });
      slot = std::move(slots[i]);
    }
    switch (pruned[i]) {
      case Prune::kTime:
        ++stats.segments_pruned_time;
        continue;
      case Prune::kBloom:
        ++stats.segments_pruned_bloom;
        continue;
      case Prune::kNone:
        break;
    }
    if (!slot.error.empty()) {
      store.warn("skipping segment during scan: " + slot.error);
      continue;
    }
    if (slot.dictionary_pruned) {
      ++stats.segments_pruned_dictionary;
      if (profiling) profile->segments.push_back(std::move(slot.profile));
      continue;
    }
    ++stats.segments_scanned;
    stats.entries_decoded += slot.entries_decoded;
    stats.bytes_scanned += slot.bytes_scanned;
    if (profiling) profile->segments.push_back(std::move(slot.profile));
    for (const auto& entry : slot.matches.entries()) {
      visit(entry);
      ++stats.entries_matched;
    }
  }
  ticket.wait();

  if (store.options().obs != nullptr) {
    auto& reg = store.options().obs->metrics;
    reg.counter("ipfsmon_tracestore_segments_scanned_total",
                "Segments decoded by scan queries")
        .inc(stats.segments_scanned);
    reg.counter("ipfsmon_tracestore_segments_pruned_total",
                "Segments skipped via footer time range or Bloom filters")
        .inc(stats.segments_pruned_time + stats.segments_pruned_bloom +
             stats.segments_pruned_dictionary);
    reg.counter("ipfsmon_tracestore_scan_entries_total",
                "Entries streamed to scan visitors")
        .inc(stats.entries_matched);
    reg.counter("ipfsmon_tracestore_scan_bytes_total",
                "Segment body bytes decoded by scan queries")
        .inc(stats.bytes_scanned);
  }
  return stats;
}

}  // namespace ipfsmon::tracestore
