#include "tracestore/bloom.hpp"

#include <cmath>

namespace ipfsmon::tracestore {

std::uint64_t fnv1a64(util::BytesView data, std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

BloomHash bloom_hash(util::BytesView key) {
  return BloomHash{fnv1a64(key, 0), fnv1a64(key, 0x9e3779b97f4a7c15ull)};
}

BloomHash bloom_hash(const crypto::PeerId& peer) {
  return bloom_hash(util::BytesView(peer.digest().data(), peer.digest().size()));
}

BloomHash bloom_hash(const cid::Cid& cid) {
  const util::Bytes encoded = cid.encode();
  return bloom_hash(encoded);
}

BloomFilter BloomFilter::with_capacity(std::size_t expected_keys,
                                       std::size_t bits_per_key) {
  BloomFilter filter;
  const std::size_t bits =
      std::max<std::size_t>(64, expected_keys * bits_per_key);
  filter.bit_count_ = bits;
  // Optimal k = ln2 · bits/key, clamped to a sane range.
  const double k = 0.69 * static_cast<double>(bits_per_key);
  filter.hash_count_ =
      static_cast<std::uint32_t>(std::min(30.0, std::max(1.0, k)));
  filter.bits_.assign((bits + 7) / 8, 0);
  return filter;
}

std::optional<BloomFilter> BloomFilter::from_parts(std::uint64_t bit_count,
                                                   std::uint32_t hash_count,
                                                   util::Bytes bits) {
  if (bits.size() != (bit_count + 7) / 8) return std::nullopt;
  if (bit_count != 0 && (hash_count == 0 || hash_count > 30)) {
    return std::nullopt;
  }
  BloomFilter filter;
  filter.bit_count_ = bit_count;
  filter.hash_count_ = hash_count;
  filter.bits_ = std::move(bits);
  return filter;
}

void BloomFilter::insert(const BloomHash& h) {
  if (bit_count_ == 0) return;
  std::uint64_t probe = h.h1;
  for (std::uint32_t i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = probe % bit_count_;
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    probe += h.h2;
  }
}

bool BloomFilter::might_contain(const BloomHash& h) const {
  if (bit_count_ == 0) return false;
  std::uint64_t probe = h.h1;
  for (std::uint32_t i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = probe % bit_count_;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    probe += h.h2;
  }
  return true;
}

}  // namespace ipfsmon::tracestore
