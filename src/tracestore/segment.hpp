// One on-disk trace segment: the v2 dictionary-compact trace encoding
// (trace/io "IPM2") as the body, followed by a footer index and a fixed
// 16-byte trailer. The footer carries everything a scan needs to decide
// whether to read the body at all: entry count, time range, and Bloom
// filters over the segment's peer and CID sets. Both footer and body are
// checksummed (FNV-1a 64) so a partially written or corrupted segment is
// detected and skipped instead of poisoning a scan.
//
// Layout:
//   [body: IPM2 compact trace bytes]
//   [footer: varint-packed SegmentFooter incl. Bloom bit arrays]
//   [trailer, 16 bytes LE: u32 footer_len | u64 footer_checksum | u32 magic]
#pragma once

#include <optional>
#include <string>

#include "tracestore/bloom.hpp"
#include "trace/trace.hpp"

namespace ipfsmon::tracestore {

struct SegmentFooter {
  std::uint64_t entry_count = 0;
  util::SimTime min_time = 0;
  util::SimTime max_time = 0;
  std::uint64_t body_bytes = 0;
  std::uint64_t body_checksum = 0;
  BloomFilter peer_bloom;
  BloomFilter cid_bloom;

  /// True when [min_time, max_time] intersects [lo, hi].
  bool overlaps(util::SimTime lo, util::SimTime hi) const {
    return entry_count != 0 && min_time <= hi && lo <= max_time;
  }
};

/// Serializes `entries` as a complete segment (body + footer + trailer) and
/// writes it to `path` atomically (write to `path + ".tmp"`, then rename).
/// Returns false and sets `error` on IO failure.
bool write_segment_file(const std::string& path, const trace::Trace& entries,
                        std::size_t bloom_bits_per_key,
                        SegmentFooter* out_footer, std::string* error);

/// Reads and validates only the footer (trailer magic, footer checksum) —
/// the cheap open-time check; the body checksum is verified when the body
/// is actually read. Returns nullopt and sets `error` on any mismatch.
std::optional<SegmentFooter> read_segment_footer(const std::string& path,
                                                 std::string* error);

/// Streaming decoder over one segment. Loads the file, verifies both
/// checksums and the dictionaries up front (memory bounded by the segment,
/// not the trace), then yields entries one at a time.
class SegmentReader {
 public:
  static std::optional<SegmentReader> open(const std::string& path,
                                           std::string* error = nullptr);

  const SegmentFooter& footer() const { return footer_; }

  /// Decodes the next entry into `out`; false at end-of-segment or on a
  /// malformed record (malformed bodies fail the checksum first in
  /// practice, but decode errors still terminate the stream).
  bool next(trace::TraceEntry& out);

 private:
  SegmentReader() = default;
  bool parse_dictionaries(std::string* error);

  SegmentFooter footer_;
  util::Bytes buffer_;  // whole segment file
  std::vector<crypto::PeerId> peers_;
  std::vector<net::Address> addrs_;
  std::vector<cid::Cid> cids_;
  std::size_t pos_ = 0;
  std::uint64_t remaining_ = 0;
  util::SimTime prev_time_ = 0;
};

}  // namespace ipfsmon::tracestore
