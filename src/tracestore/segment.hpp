// One on-disk trace segment: the v2 dictionary-compact trace encoding
// (trace/io "IPM2") as the body, followed by a footer index and a fixed
// 16-byte trailer. The footer carries everything a scan needs to decide
// whether to read the body at all: entry count, time range, and Bloom
// filters over the segment's peer and CID sets. Both footer and body are
// checksummed (FNV-1a 64) so a partially written or corrupted segment is
// detected and skipped instead of poisoning a scan.
//
// Layout:
//   [body: IPM2 compact trace bytes]
//   [footer: varint-packed SegmentFooter incl. Bloom bit arrays]
//   [trailer, 16 bytes LE: u32 footer_len | u64 footer_checksum | u32 magic]
//
// The read path is zero-copy: SegmentMapping maps the file read-only
// (mmap + madvise(SEQUENTIAL)) and SegmentReader decodes entries straight
// out of the mapping. A buffered single-read fallback is selected at
// runtime when mapping is unavailable or fails, and a ValidationCache
// (keyed by path + mtime + size) lets repeat readers of sealed segments
// skip the body-checksum pass they already paid for.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "tracestore/bloom.hpp"
#include "trace/trace.hpp"

namespace ipfsmon::tracestore {

struct SegmentFooter {
  std::uint64_t entry_count = 0;
  util::SimTime min_time = 0;
  util::SimTime max_time = 0;
  std::uint64_t body_bytes = 0;
  std::uint64_t body_checksum = 0;
  BloomFilter peer_bloom;
  BloomFilter cid_bloom;

  /// True when [min_time, max_time] intersects [lo, hi].
  bool overlaps(util::SimTime lo, util::SimTime hi) const {
    return entry_count != 0 && min_time <= hi && lo <= max_time;
  }
};

/// How segment bytes reach the decoder.
enum class IoBackend {
  kAuto,      ///< mmap when available, buffered read otherwise
  kMmap,      ///< mmap only; open fails when the platform cannot map
  kBuffered,  ///< single sized read into an owned buffer
};

std::string_view to_string(IoBackend backend);

/// Read-only view of one whole segment file. Prefers a private read-only
/// mmap with MADV_SEQUENTIAL (scans decode front to back); falls back to
/// one exactly-sized pread into an owned buffer — never a stream slurp.
class SegmentMapping {
 public:
  SegmentMapping() = default;  // empty mapping

  static std::optional<SegmentMapping> open(const std::string& path,
                                            IoBackend backend,
                                            std::string* error = nullptr);

  SegmentMapping(SegmentMapping&& other) noexcept { *this = std::move(other); }
  SegmentMapping& operator=(SegmentMapping&& other) noexcept;
  SegmentMapping(const SegmentMapping&) = delete;
  SegmentMapping& operator=(const SegmentMapping&) = delete;
  ~SegmentMapping();

  util::BytesView view() const { return util::BytesView(data_, size_); }
  std::size_t size() const { return size_; }
  /// True when the bytes come from an mmap (false: owned buffer).
  bool mapped() const { return mapped_; }
  /// File modification time in nanoseconds since epoch, captured at open.
  std::int64_t mtime_ns() const { return mtime_ns_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::int64_t mtime_ns_ = 0;
  util::Bytes owned_;  // buffered fallback storage
};

/// Remembers which sealed segment files already passed body-checksum
/// validation, keyed by (path, mtime, size). Segments are immutable once
/// written (rewrites go through a rename, changing mtime), so an unchanged
/// signature means the expensive whole-body FNV pass can be skipped on
/// every open after the first. Thread-safe: scan workers share one cache.
class ValidationCache {
 public:
  bool contains(const std::string& path, std::int64_t mtime_ns,
                std::uint64_t size) const;
  void remember(const std::string& path, std::int64_t mtime_ns,
                std::uint64_t size);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t entries() const;

 private:
  struct Signature {
    std::int64_t mtime_ns = 0;
    std::uint64_t size = 0;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, Signature> verified_;
  mutable std::atomic<std::uint64_t> hits_{0};
};

/// Per-open knobs threaded from TraceStore::open_options().
struct SegmentOpenOptions {
  IoBackend backend = IoBackend::kAuto;
  /// When set, consult/populate the cache to skip re-validating the body
  /// checksum of unchanged files. Null: validate on every open.
  ValidationCache* validated = nullptr;
};

/// Serializes `entries` as a complete segment (body + footer + trailer) and
/// writes it to `path` atomically (write to `path + ".tmp"`, then rename).
/// Returns false and sets `error` on IO failure.
bool write_segment_file(const std::string& path, const trace::Trace& entries,
                        std::size_t bloom_bits_per_key,
                        SegmentFooter* out_footer, std::string* error);

/// Reads and validates only the footer (trailer magic, footer checksum) —
/// the cheap open-time check; the body checksum is verified when the body
/// is actually read. Reads just the trailer + footer tail of the file
/// (two small reads), never the body. Returns nullopt and sets `error` on
/// any mismatch.
std::optional<SegmentFooter> read_segment_footer(const std::string& path,
                                                 std::string* error);

/// One entry decoded to dictionary references instead of materialized
/// keys: `peer`/`addr`/`cid` index into the segment's interned
/// dictionaries. The scan fast path matches on these integer ids and only
/// materializes entries that pass the predicate.
struct RawRecord {
  util::SimTime timestamp = 0;
  std::uint32_t peer = 0;
  std::uint32_t addr = 0;
  std::uint32_t cid = 0;
  bitswap::WantType type = bitswap::WantType::WantHave;
  trace::MonitorId monitor = 0;
  std::uint32_t flags = 0;
};

/// Streaming decoder over one segment. Maps the file, verifies both
/// checksums and the dictionaries up front (memory bounded by the segment,
/// not the trace), then yields entries one at a time directly from the
/// mapping.
class SegmentReader {
 public:
  static std::optional<SegmentReader> open(const std::string& path,
                                           std::string* error = nullptr);
  static std::optional<SegmentReader> open(const std::string& path,
                                           const SegmentOpenOptions& options,
                                           std::string* error = nullptr);

  const SegmentFooter& footer() const { return footer_; }
  /// True when the bytes are served from an mmap.
  bool mapped() const { return mapping_.mapped(); }

  /// Decodes the next entry into `out`; false at end-of-segment or on a
  /// malformed record (malformed bodies fail the checksum first in
  /// practice, but decode errors still terminate the stream).
  bool next(trace::TraceEntry& out);

  /// Like next(), but yields dictionary ids without materializing the
  /// peer/address/CID keys — the scan fast path.
  bool next_raw(RawRecord& out);

  /// Resolves a RawRecord's dictionary ids into a full entry.
  void materialize(const RawRecord& raw, trace::TraceEntry& out) const;

  /// The segment's interned peer dictionary, for resolving a query's key
  /// set to ids once per segment instead of hashing per entry.
  const std::vector<crypto::PeerId>& peer_dictionary() const { return peers_; }

  /// Number of interned CID keys in this segment.
  std::size_t cid_key_count() const { return cid_spans_.size(); }

  /// Decodes (and memoizes) one interned CID key. CIDs are variable-length
  /// heap values, so unlike the peer dictionary they are decoded lazily —
  /// a raw scan that matches nothing never pays for the CID dictionary at
  /// all. `id` must be < cid_key_count().
  const cid::Cid& cid_key(std::uint32_t id) const;

 private:
  SegmentReader() = default;
  bool parse_dictionaries(std::string* error);
  util::BytesView body() const {
    return mapping_.view().subspan(0, footer_.body_bytes);
  }

  /// Byte range of one interned CID inside the body.
  struct KeySpan {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
  };

  SegmentFooter footer_;
  SegmentMapping mapping_;
  std::vector<crypto::PeerId> peers_;
  std::vector<net::Address> addrs_;
  std::vector<KeySpan> cid_spans_;
  mutable std::vector<cid::Cid> cids_;          // decoded on first touch
  mutable std::vector<std::uint8_t> cid_done_;  // per-id decode flag
  std::size_t pos_ = 0;
  std::uint64_t remaining_ = 0;
  util::SimTime prev_time_ = 0;
};

}  // namespace ipfsmon::tracestore
