#include "tracestore/merge.hpp"

#include <algorithm>
#include <queue>

namespace ipfsmon::tracestore {

// --- StoreCursor ------------------------------------------------------------

StoreCursor::StoreCursor(const TraceStore& store) : store_(&store) {
  start_prefetch();
}

StoreCursor::~StoreCursor() {
  // The in-flight open captures this cursor's Prefetch by shared_ptr, so
  // it could outlive us safely — but it also dereferences the store;
  // block until it retires rather than racing the store's lifetime.
  prefetch_ticket_.wait();
}

void StoreCursor::start_prefetch() {
  if (segment_index_ >= store_->segments().size()) {
    prefetch_.reset();
    return;
  }
  auto pending = std::make_shared<Prefetch>();
  pending->index = segment_index_++;
  const TraceStore* store = store_;
  prefetch_ = pending;
  prefetch_ticket_ = store_->scan_pool().submit([pending, store] {
    std::string error;
    pending->reader = SegmentReader::open(store->segment_path(pending->index),
                                          store->open_options(), &error);
    if (!pending->reader) pending->error = error;
  });
}

bool StoreCursor::open_next_segment() {
  while (prefetch_ != nullptr) {
    prefetch_ticket_.wait();
    const std::shared_ptr<Prefetch> done = std::move(prefetch_);
    // Kick off the next open before decoding this segment, so the open
    // and checksum of segment k+1 overlap the merge of segment k.
    start_prefetch();
    if (done->reader) {
      reader_ = std::move(done->reader);
      return true;
    }
    store_->warn("skipping segment during scan: " + done->error);
  }
  reader_.reset();
  return false;
}

bool StoreCursor::next(trace::TraceEntry& out) {
  for (;;) {
    if (!reader_ && !open_next_segment()) return false;
    if (reader_->next(out)) return true;
    reader_.reset();
  }
}

// --- StreamingFlagger -------------------------------------------------------

StreamingFlagger::StreamingFlagger(trace::PreprocessOptions options)
    : options_(options),
      max_window_(std::max(options.inter_monitor_window,
                           options.rebroadcast_window)) {}

void StreamingFlagger::mark(trace::TraceEntry& entry) {
  evict_before(entry.timestamp - max_window_);

  entry.flags = 0;
  const Key key{entry.peer, entry.type, entry.cid};
  auto& per_monitor = last_seen_[key];
  for (const auto& [monitor, when] : per_monitor) {
    const util::SimDuration delta = entry.timestamp - when;
    if (monitor == entry.monitor) {
      if (delta <= options_.rebroadcast_window) {
        entry.flags |= trace::kRebroadcast;
      }
    } else {
      if (delta <= options_.inter_monitor_window) {
        entry.flags |= trace::kInterMonitorDuplicate;
      }
    }
  }
  per_monitor[entry.monitor] = entry.timestamp;
  expiries_.push_back(Expiry{entry.timestamp, key, entry.monitor});
  peak_keys_ = std::max(peak_keys_, last_seen_.size());
}

void StreamingFlagger::evict_before(util::SimTime horizon) {
  while (!expiries_.empty() && expiries_.front().time < horizon) {
    const Expiry& expiry = expiries_.front();
    const auto it = last_seen_.find(expiry.key);
    if (it != last_seen_.end()) {
      // Only drop the record if it was not refreshed by a later sighting
      // (a refresh leaves this expiry stale; the newer one covers it).
      const auto monitor_it = it->second.find(expiry.monitor);
      if (monitor_it != it->second.end() &&
          monitor_it->second == expiry.time) {
        it->second.erase(monitor_it);
        if (it->second.empty()) last_seen_.erase(it);
      }
    }
    expiries_.pop_front();
  }
}

// --- k-way merge unify ------------------------------------------------------

namespace {

struct MergeHead {
  trace::TraceEntry entry;
  std::size_t input = 0;  // index into the cursors vector
};

/// Min-heap order: earliest timestamp first; ties go to the lower input
/// index — the same order stable_sort gives concatenated input traces.
struct HeadAfter {
  bool operator()(const MergeHead& a, const MergeHead& b) const {
    if (a.entry.timestamp != b.entry.timestamp) {
      return a.entry.timestamp > b.entry.timestamp;
    }
    return a.input > b.input;
  }
};

}  // namespace

UnifyStats unify_stores(
    const std::vector<const TraceStore*>& inputs,
    const std::function<void(const trace::TraceEntry&)>& sink,
    const trace::PreprocessOptions& options) {
  std::vector<StoreCursor> cursors;
  cursors.reserve(inputs.size());
  std::priority_queue<MergeHead, std::vector<MergeHead>, HeadAfter> heap;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] == nullptr) continue;
    cursors.emplace_back(*inputs[i]);
    MergeHead head;
    head.input = cursors.size() - 1;
    if (cursors.back().next(head.entry)) heap.push(std::move(head));
  }

  StreamingFlagger flagger(options);
  UnifyStats stats;
  while (!heap.empty()) {
    MergeHead head = heap.top();
    heap.pop();
    flagger.mark(head.entry);
    sink(head.entry);
    ++stats.entries;
    MergeHead refill;
    refill.input = head.input;
    if (cursors[head.input].next(refill.entry)) heap.push(std::move(refill));
  }
  stats.peak_window_keys = flagger.peak_keys();
  return stats;
}

UnifyStats unify_to_store(const std::vector<const TraceStore*>& inputs,
                          SegmentWriter& out,
                          const trace::PreprocessOptions& options) {
  return unify_stores(
      inputs, [&out](const trace::TraceEntry& e) { out.append(e); }, options);
}

}  // namespace ipfsmon::tracestore
