#include "tracestore/store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tracestore/rollup.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace ipfsmon::tracestore {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "ipfsmon-tracestore v1";
constexpr char kStoreMetaName[] = "STOREMETA";
constexpr char kStoreMetaHeader[] = "ipfsmon-storemeta v1";

std::string segment_name(std::size_t index) {
  return util::format("seg-%06zu.seg", index);
}

void obs_warn(obs::Obs* obs, const std::string& message) {
  if (obs == nullptr) return;
  // Offline store tooling has no scheduler; sim time 0 marks that.
  obs->events.emit(0, obs::Severity::kWarn, "tracestore", message);
}

}  // namespace

bool write_manifest(
    const std::string& dir,
    const std::vector<std::pair<std::string, SegmentFooter>>& segments,
    std::string* error) {
  const fs::path tmp = fs::path(dir) / (std::string(kManifestName) + ".tmp");
  {
    std::ofstream out(tmp);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp.string();
      return false;
    }
    out << kManifestHeader << '\n';
    for (const auto& [file, footer] : segments) {
      out << file << ' ' << footer.entry_count << ' ' << footer.min_time
          << ' ' << footer.max_time << '\n';
    }
    if (!out) {
      if (error != nullptr) *error = "short write to " + tmp.string();
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, fs::path(dir) / kManifestName, ec);
  if (ec) {
    if (error != nullptr) *error = "rename manifest: " + ec.message();
    return false;
  }
  return true;
}

// --- Store metadata ---------------------------------------------------------

bool write_store_meta(const std::string& dir, const StoreMeta& meta,
                      std::string* error) {
  const fs::path tmp = fs::path(dir) / (std::string(kStoreMetaName) + ".tmp");
  {
    std::ofstream out(tmp);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp.string();
      return false;
    }
    out << kStoreMetaHeader << '\n';
    out << "wall_epoch_ns=" << meta.wall_epoch_ns << '\n';
    if (!meta.source.empty()) out << "source=" << meta.source << '\n';
    if (!meta.format.empty()) out << "format=" << meta.format << '\n';
    for (const auto& [name, id] : meta.monitors) {
      out << "monitor=" << id << ':' << name << '\n';
    }
    if (!out) {
      if (error != nullptr) *error = "short write to " + tmp.string();
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, fs::path(dir) / kStoreMetaName, ec);
  if (ec) {
    if (error != nullptr) *error = "rename storemeta: " + ec.message();
    return false;
  }
  return true;
}

std::optional<StoreMeta> read_store_meta(const std::string& dir) {
  std::ifstream in(fs::path(dir) / kStoreMetaName);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kStoreMetaHeader) return std::nullopt;
  StoreMeta meta;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "wall_epoch_ns") {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return std::nullopt;
      }
      meta.wall_epoch_ns = parsed;
    } else if (key == "source") {
      meta.source = value;
    } else if (key == "format") {
      meta.format = value;
    } else if (key == "monitor") {
      const auto colon = value.find(':');
      if (colon == std::string::npos) return std::nullopt;
      errno = 0;
      char* end = nullptr;
      const std::string id_text = value.substr(0, colon);
      const long long id = std::strtoll(id_text.c_str(), &end, 10);
      if (errno != 0 || end == id_text.c_str() || *end != '\0' || id < 0) {
        return std::nullopt;
      }
      meta.monitors.emplace_back(value.substr(colon + 1),
                                 static_cast<std::uint32_t>(id));
    }
    // Unknown keys are skipped so newer writers stay readable.
  }
  return meta;
}

// --- Crash recovery ---------------------------------------------------------

std::optional<RecoveryReport> recover_store_dir(const std::string& dir,
                                                StoreOptions options,
                                                std::string* error) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    if (error != nullptr) *error = dir + ": not a directory";
    return std::nullopt;
  }
  // The MANIFEST cannot be trusted after a crash (finalize() never ran, or
  // ran in a previous incarnation); enumerate segment files directly.
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("seg-") && name.ends_with(".seg")) {
      files.push_back(name);
    }
  }
  if (ec) {
    if (error != nullptr) *error = "scan " + dir + ": " + ec.message();
    return std::nullopt;
  }
  std::sort(files.begin(), files.end());

  RecoveryReport report;
  for (const auto& name : files) {
    // "seg-%06zu.seg": strtoul stops at the '.', malformed names parse as 0
    // which only ever grows next_segment_index.
    const std::size_t index = std::strtoul(name.c_str() + 4, nullptr, 10);
    report.next_segment_index =
        std::max(report.next_segment_index, index + 1);
    const std::string path = (fs::path(dir) / name).string();
    std::string footer_error;
    auto footer = read_segment_footer(path, &footer_error);
    if (!footer) {
      fs::rename(path, path + ".torn", ec);
      fs::remove(rollup_path_for(path), ec);
      ++report.segments_dropped;
      report.notes.push_back("dropped torn segment " + name + ": " +
                             footer_error);
      obs_warn(options.obs,
               "recovery dropped torn segment " + name + ": " + footer_error);
      continue;
    }
    report.entries_recovered += footer->entry_count;
    report.segments.emplace_back(name, std::move(*footer));
    ++report.segments_kept;
  }

  std::string manifest_error;
  if (!write_manifest(dir, report.segments, &manifest_error)) {
    if (error != nullptr) *error = "rebuild manifest: " + manifest_error;
    return std::nullopt;
  }
  if (options.obs != nullptr) {
    options.obs->metrics
        .counter("ipfsmon_tracestore_recoveries_total",
                 "Store directories repaired by crash recovery")
        .inc();
    if (report.segments_dropped > 0) {
      options.obs->metrics
          .counter("ipfsmon_tracestore_torn_segments_total",
                   "Torn segments quarantined during crash recovery")
          .inc(static_cast<double>(report.segments_dropped));
    }
  }
  return report;
}

// --- SegmentWriter ----------------------------------------------------------

SegmentWriter::SegmentWriter(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.obs != nullptr) {
    auto& reg = options_.obs->metrics;
    segments_counter_ =
        &reg.counter("ipfsmon_tracestore_segments_written_total",
                     "Trace store segments flushed to disk");
    entries_counter_ =
        &reg.counter("ipfsmon_tracestore_entries_written_total",
                     "Trace entries spilled into stores");
    unordered_counter_ =
        &reg.counter("ipfsmon_tracestore_unordered_appends_total",
                     "Appends that went backwards in time (see append())");
    flush_bytes_ = &reg.histogram(
        "ipfsmon_tracestore_segment_bytes",
        obs::exponential_buckets(4096, 4.0, 8),
        "On-disk size of flushed trace store segments");
  }
}

std::unique_ptr<SegmentWriter> SegmentWriter::create(const std::string& dir,
                                                     StoreOptions options,
                                                     std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "mkdir " + dir + ": " + ec.message();
    return nullptr;
  }
  // Start clean: drop any segments/manifest from a previous run, plus the
  // ingest sidecars (metadata, checkpoint, quarantined rejects) that would
  // otherwise describe data this writer is about to erase.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == kManifestName || name == kStoreMetaName ||
        name.ends_with(".seg") || name.ends_with(".rollup") ||
        name.ends_with(".tmp") || name.ends_with(".ckpt") ||
        name.ends_with(".rej")) {
      fs::remove(entry.path(), ec);
    }
  }
  return std::unique_ptr<SegmentWriter>(
      new SegmentWriter(dir, options));
}

std::unique_ptr<SegmentWriter> SegmentWriter::resume(const std::string& dir,
                                                     StoreOptions options,
                                                     RecoveryReport* report,
                                                     std::string* error) {
  auto recovered = recover_store_dir(dir, options, error);
  if (!recovered) return nullptr;
  auto writer =
      std::unique_ptr<SegmentWriter>(new SegmentWriter(dir, options));
  writer->segments_ = recovered->segments;
  writer->next_index_ = recovered->next_segment_index;
  writer->entries_written_ = recovered->entries_recovered;
  if (report != nullptr) *report = std::move(*recovered);
  return writer;
}

SegmentWriter::~SegmentWriter() {
  if (!finalized_) finalize();
}

void SegmentWriter::append(const trace::TraceEntry& entry) {
  if (entries_written_ > 0 && entry.timestamp < last_timestamp_) {
    ++unordered_appends_;
    if (unordered_counter_ != nullptr) unordered_counter_->inc();
  } else {
    last_timestamp_ = entry.timestamp;
  }
  if (!open_.empty()) {
    const util::SimTime first = open_.entries().front().timestamp;
    if (open_.size() >= options_.max_entries_per_segment ||
        entry.timestamp - first > options_.max_segment_span) {
      flush_open_segment();
    }
  }
  open_.append(entry);
  ++entries_written_;
  if (entries_counter_ != nullptr) entries_counter_->inc();
}

void SegmentWriter::abandon() {
  open_ = trace::Trace{};
  finalized_ = true;
}

void SegmentWriter::flush_open_segment() {
  if (open_.empty()) return;
  const std::string name = segment_name(next_index_++);
  const std::string path = (fs::path(dir_) / name).string();
  SegmentFooter footer;
  std::string error;
  if (!write_segment_file(path, open_, options_.bloom_bits_per_key, &footer,
                          &error)) {
    failed_ = true;
    obs_warn(options_.obs, "segment flush failed: " + error);
  } else {
    segments_.emplace_back(name, footer);
    if (segments_counter_ != nullptr) segments_counter_->inc();
    if (flush_bytes_ != nullptr) {
      std::error_code ec;
      const auto bytes = fs::file_size(path, ec);
      if (!ec) flush_bytes_->observe(static_cast<double>(bytes));
    }
    if (options_.write_rollups) {
      const SegmentRollup rollup = build_rollup(open_, options_.rollup_bucket);
      std::string rollup_error;
      if (!write_rollup_file(rollup_path_for(path), rollup, &rollup_error)) {
        obs_warn(options_.obs, "rollup write failed: " + rollup_error);
      } else if (options_.obs != nullptr) {
        options_.obs->metrics
            .counter("ipfsmon_tracestore_rollups_written_total",
                     "Rollup sidecars written beside flushed segments")
            .inc();
      }
    }
  }
  open_ = trace::Trace{};
}

bool SegmentWriter::finalize() {
  if (finalized_) return !failed_;
  finalized_ = true;
  flush_open_segment();
  std::string error;
  if (!write_manifest(dir_, segments_, &error)) {
    failed_ = true;
    obs_warn(options_.obs, "manifest write failed: " + error);
  }
  return !failed_;
}

bool SegmentWriter::checkpoint() {
  if (finalized_) return !failed_;
  flush_open_segment();
  std::string error;
  if (!write_manifest(dir_, segments_, &error)) {
    failed_ = true;
    obs_warn(options_.obs, "manifest write failed: " + error);
  }
  return !failed_;
}

// --- TraceStore -------------------------------------------------------------

std::optional<TraceStore> TraceStore::open(const std::string& dir,
                                           StoreOptions options,
                                           std::string* error) {
  std::ifstream manifest(fs::path(dir) / kManifestName);
  if (!manifest) {
    if (error != nullptr) *error = dir + ": no readable MANIFEST";
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(manifest, line) || line != kManifestHeader) {
    if (error != nullptr) *error = dir + ": bad manifest header";
    return std::nullopt;
  }

  TraceStore store;
  store.dir_ = dir;
  store.options_ = options;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const auto fields = util::split(line, ' ');
    if (fields.empty()) continue;
    const std::string path = (fs::path(dir) / fields[0]).string();
    std::string footer_error;
    auto footer = read_segment_footer(path, &footer_error);
    if (!footer) {
      store.warn("skipping segment: " + footer_error);
      continue;
    }
    Segment segment;
    segment.file = fields[0];
    segment.footer = std::move(*footer);
    std::error_code ec;
    const auto bytes = fs::file_size(path, ec);
    segment.file_bytes = ec ? 0 : bytes;
    store.segments_.push_back(std::move(segment));
  }
  store.meta_ = read_store_meta(dir);
  return store;
}

std::uint64_t TraceStore::total_entries() const {
  std::uint64_t total = 0;
  for (const auto& s : segments_) total += s.footer.entry_count;
  return total;
}

std::uint64_t TraceStore::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : segments_) total += s.file_bytes;
  return total;
}

util::SimTime TraceStore::min_time() const {
  util::SimTime t = 0;
  bool first = true;
  for (const auto& s : segments_) {
    if (s.footer.entry_count == 0) continue;
    if (first || s.footer.min_time < t) t = s.footer.min_time;
    first = false;
  }
  return t;
}

util::SimTime TraceStore::max_time() const {
  util::SimTime t = 0;
  bool first = true;
  for (const auto& s : segments_) {
    if (s.footer.entry_count == 0) continue;
    if (first || s.footer.max_time > t) t = s.footer.max_time;
    first = false;
  }
  return t;
}

std::string TraceStore::segment_path(std::size_t index) const {
  return (fs::path(dir_) / segments_[index].file).string();
}

SegmentOpenOptions TraceStore::open_options() const {
  SegmentOpenOptions options;
  options.backend = options_.io_backend;
  options.validated = validation_cache();
  return options;
}

ScanPool& TraceStore::scan_pool() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (shared_->pool == nullptr) {
    shared_->pool = std::make_shared<ScanPool>(options_.scan_threads);
  }
  return *shared_->pool;
}

ValidationCache* TraceStore::validation_cache() const {
  if (!options_.reuse_validation) return nullptr;
  if (options_.shared_validation != nullptr) return options_.shared_validation;
  return &shared_->validated;
}

std::size_t TraceStore::prune_before(util::SimTime cutoff) {
  std::vector<Segment> kept;
  std::size_t removed = 0;
  for (auto& s : segments_) {
    if (s.footer.max_time < cutoff) {
      std::error_code ec;
      fs::remove(fs::path(dir_) / s.file, ec);
      fs::remove(rollup_path_for((fs::path(dir_) / s.file).string()), ec);
      ++removed;
    } else {
      kept.push_back(std::move(s));
    }
  }
  if (removed == 0) return 0;
  segments_ = std::move(kept);
  if (!rewrite_manifest()) {
    warn("manifest rewrite after prune failed");
  }
  return removed;
}

bool TraceStore::rewrite_manifest() const {
  std::vector<std::pair<std::string, SegmentFooter>> entries;
  entries.reserve(segments_.size());
  for (const auto& s : segments_) entries.emplace_back(s.file, s.footer);
  return write_manifest(dir_, entries);
}

void TraceStore::warn(const std::string& message) const {
  warnings_.push_back(message);
  obs_warn(options_.obs, message);
  if (options_.obs != nullptr) {
    options_.obs->metrics
        .counter("ipfsmon_tracestore_segments_skipped_total",
                 "Segments skipped due to corruption or IO errors")
        .inc();
  }
}

}  // namespace ipfsmon::tracestore
