// Per-segment rollups: pre-aggregated per-minute counts written beside
// each segment file ("seg-000000.seg.rollup") so a query service can
// answer request-type/flag statistics over a time range without decoding
// segment bodies. A rollup is derived data — losing or corrupting one only
// costs a rebuild (or an entry-level scan), never trace data — so readers
// treat a missing/bad rollup as "recompute", not as an error.
//
// Layout mirrors the segment trailer convention:
//   [payload: varint-packed header + buckets]
//   [trailer, 16 bytes LE: u32 payload_len | u64 payload_checksum | u32 magic]
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tracestore/segment.hpp"
#include "trace/trace.hpp"

namespace ipfsmon::tracestore {

/// Counts for one bucket of sim time ([start, start + width)). Type and
/// flag counts are orthogonal views of the same entries: want_have +
/// want_block + cancels == entries; duplicates/rebroadcasts/clean follow
/// trace::StatsAccumulator semantics (an entry can carry both flags).
struct RollupBucket {
  util::SimTime start = 0;
  std::uint64_t want_have = 0;
  std::uint64_t want_block = 0;
  std::uint64_t cancels = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t rebroadcasts = 0;
  std::uint64_t clean = 0;

  std::uint64_t entries() const { return want_have + want_block + cancels; }
};

struct SegmentRollup {
  util::SimDuration bucket_width = util::kMinute;
  std::uint64_t entry_count = 0;
  util::SimTime min_time = 0;
  util::SimTime max_time = 0;
  /// Exact distinct counts within this segment (across segments they only
  /// sum to an upper-bound estimate — peers/CIDs recur between segments).
  std::uint64_t distinct_peers = 0;
  std::uint64_t distinct_cids = 0;
  /// Non-empty buckets only, in ascending start order.
  std::vector<RollupBucket> buckets;
};

/// The rollup sidecar path for a segment file ("x.seg" -> "x.seg.rollup").
std::string rollup_path_for(const std::string& segment_path);

/// Aggregates `entries` into `bucket_width` buckets.
SegmentRollup build_rollup(const trace::Trace& entries,
                           util::SimDuration bucket_width = util::kMinute);

/// Writes `rollup` to `path` atomically (tmp + rename).
bool write_rollup_file(const std::string& path, const SegmentRollup& rollup,
                       std::string* error = nullptr);

/// Reads and validates a rollup sidecar; nullopt on missing/corrupt files.
std::optional<SegmentRollup> read_rollup_file(const std::string& path,
                                              std::string* error = nullptr);

/// Rebuilds a rollup by decoding the segment body — the fallback when the
/// sidecar is missing (pre-rollup stores) or fails validation.
std::optional<SegmentRollup> rollup_from_segment(
    const std::string& segment_path,
    util::SimDuration bucket_width = util::kMinute,
    std::string* error = nullptr);

}  // namespace ipfsmon::tracestore
