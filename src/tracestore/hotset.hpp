// A flat open-addressing membership set for scan hot paths. Built once
// from a query's key set, then probed millions of times per scan — the
// read-mostly shape of netdata's dictionary, stripped to what matching
// needs: power-of-two capacity at <=50% load, linear probing over one
// contiguous slot array (cache-line friendly, no per-node allocation),
// and the full 64-bit hash stored per slot so almost every miss resolves
// on an integer compare without touching key bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ipfsmon::tracestore {

template <typename Key, typename Hash = std::hash<Key>>
class HotSet {
 public:
  HotSet() = default;

  template <typename Iterator>
  HotSet(Iterator begin, Iterator end) {
    std::size_t count = 0;
    for (auto it = begin; it != end; ++it) ++count;
    if (count == 0) return;
    std::size_t capacity = 8;
    while (capacity < count * 2) capacity <<= 1;
    slots_.resize(capacity);
    for (auto it = begin; it != end; ++it) insert(*it);
  }

  template <typename Container>
  explicit HotSet(const Container& keys) : HotSet(keys.begin(), keys.end()) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  bool contains(const Key& key) const {
    if (slots_.empty()) return false;
    const std::uint64_t hash = mix(Hash{}(key));
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (!slot.used) return false;
      if (slot.hash == hash && slot.key == key) return true;
    }
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    Key key{};
    bool used = false;
  };

  /// std::hash for integers is often identity; a 64-bit finalizer
  /// (splitmix64) keeps probe sequences short regardless.
  static std::uint64_t mix(std::uint64_t h) {
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
  }

  void insert(const Key& key) {
    const std::uint64_t hash = mix(Hash{}(key));
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        slot.hash = hash;
        slot.key = key;
        slot.used = true;
        ++size_;
        return;
      }
      if (slot.hash == hash && slot.key == key) return;  // duplicate
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace ipfsmon::tracestore
