// Structured trace events for *rare* occurrences (connection rejects,
// connection-manager trims, churn transitions, DHT RPC timeouts). Unlike
// metrics — which are aggregated counts sampled on a cadence — events carry
// a timestamped, per-occurrence record with severity and component tags.
//
// Library code emits through the hub and stays silent by default: with no
// subscriber attached, emit() only bumps per-severity counters. Attach
// stderr_event_logger (or any handler) to make a run observable on demand.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace ipfsmon::obs {

enum class Severity : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

std::string_view severity_name(Severity s);

struct ObsEvent {
  util::SimTime time = 0;
  Severity severity = Severity::kInfo;
  /// Emitting subsystem ("net", "dht", "node", "scenario", …). Must point
  /// to a string literal (handlers may retain the view past the emit call).
  std::string_view component;
  std::string message;
};

class EventHub {
 public:
  using Handler = std::function<void(const ObsEvent&)>;
  using SubscriptionId = std::uint64_t;

  EventHub() = default;
  EventHub(const EventHub&) = delete;
  EventHub& operator=(const EventHub&) = delete;

  SubscriptionId subscribe(Handler handler);
  void unsubscribe(SubscriptionId id);

  /// True when at least one handler is attached. Emitters building
  /// expensive messages should guard with this.
  bool active() const { return !handlers_.empty(); }

  void emit(util::SimTime time, Severity severity, std::string_view component,
            std::string message);

  /// Events emitted so far at `severity` (counted with or without
  /// subscribers).
  std::uint64_t emitted(Severity severity) const {
    return counts_[static_cast<std::size_t>(severity)];
  }
  std::uint64_t emitted_total() const;

 private:
  std::vector<std::pair<SubscriptionId, Handler>> handlers_;
  SubscriptionId next_id_ = 1;
  std::array<std::uint64_t, 4> counts_{};
};

/// Subscribes a handler that prints events at/above `min_severity` to
/// stderr as `[d:hh:mm:ss] LEVEL component: message`. Returns the
/// subscription id (for unsubscribe).
EventHub::SubscriptionId stderr_event_logger(
    EventHub& hub, Severity min_severity = Severity::kWarn);

}  // namespace ipfsmon::obs
