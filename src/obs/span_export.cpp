#include "obs/span_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace ipfsmon::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Timestamps in the chosen timebase, as microseconds.
double start_micros(const SpanRecord& r, bool use_sim_time) {
  return use_sim_time
             ? static_cast<double>(r.start_sim) / 1000.0
             : static_cast<double>(r.start_us);
}

double duration_micros(const SpanRecord& r, bool use_sim_time) {
  const double d =
      use_sim_time ? static_cast<double>(r.end_sim - r.start_sim) / 1000.0
                   : static_cast<double>(r.end_us - r.start_us);
  return d < 0 ? 0 : d;
}

void append_summary_json(std::string& out, const TraceSummary& s) {
  out += "{\"trace\":\"";
  out += span_id_hex(s.trace_id);
  out += "\",\"root\":\"";
  append_json_escaped(out, s.root_name);
  out += "\",\"spans\":" + std::to_string(s.span_count);
  out += ",\"start_sim_ns\":" + std::to_string(s.start_sim);
  out += ",\"sim_duration_ns\":" + std::to_string(s.sim_duration);
  out += ",\"start_us\":" + std::to_string(s.start_us);
  out += ",\"wall_us\":" + std::to_string(s.wall_us);
  out += "}";
}

bool write_text_file(const std::string& path, const std::string& body,
                     std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace

std::string span_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

bool has_sim_times(const std::vector<SpanRecord>& spans) {
  for (const auto& r : spans) {
    if (r.start_sim != 0 || r.end_sim != 0) return true;
  }
  return false;
}

std::vector<TraceSummary> summarize_traces(const std::vector<SpanRecord>& spans,
                                           bool use_sim_time) {
  // spans arrive in record order (Tracer::snapshot sorts by seq), so the
  // first root seen per trace is the real one.
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<TraceSummary> out;
  for (const auto& r : spans) {
    auto [it, inserted] = index.emplace(r.trace_id, out.size());
    if (inserted) {
      TraceSummary s;
      s.trace_id = r.trace_id;
      s.start_sim = r.start_sim;
      s.start_us = r.start_us;
      out.push_back(std::move(s));
    }
    TraceSummary& s = out[it->second];
    ++s.span_count;
    s.start_sim = std::min(s.start_sim, r.start_sim);
    s.start_us = std::min(s.start_us, r.start_us);
    if (r.parent_id == 0 && s.root_name.empty()) s.root_name = r.name;
    s.sim_duration = std::max(s.sim_duration, r.end_sim - s.start_sim);
    s.wall_us = std::max(s.wall_us, r.end_us - s.start_us);
  }
  for (auto& s : out) {
    if (s.root_name.empty()) s.root_name = "(partial)";
  }
  std::sort(out.begin(), out.end(),
            [use_sim_time](const TraceSummary& a, const TraceSummary& b) {
              if (use_sim_time && a.start_sim != b.start_sim) {
                return a.start_sim < b.start_sim;
              }
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.trace_id < b.trace_id;
            });
  return out;
}

std::vector<TraceSummary> slowest_traces(std::vector<TraceSummary> summaries,
                                         std::size_t k, bool use_sim_time) {
  std::stable_sort(summaries.begin(), summaries.end(),
                   [use_sim_time](const TraceSummary& a, const TraceSummary& b) {
                     return use_sim_time ? a.sim_duration > b.sim_duration
                                         : a.wall_us > b.wall_us;
                   });
  if (summaries.size() > k) summaries.resize(k);
  return summaries;
}

std::vector<TraceSummary> recent_traces(std::vector<TraceSummary> summaries,
                                        std::size_t k) {
  std::reverse(summaries.begin(), summaries.end());
  if (summaries.size() > k) summaries.resize(k);
  return summaries;
}

std::string to_perfetto_json(const std::vector<SpanRecord>& spans,
                             bool use_sim_time) {
  // Group spans per trace, then pack overlapping spans into lanes
  // (rendered as tids) by greedy interval partitioning.
  std::map<std::uint64_t, std::vector<const SpanRecord*>> traces;
  for (const auto& r : spans) traces[r.trace_id].push_back(&r);

  std::string out;
  out.reserve(spans.size() * 160 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":"
         "\"ipfsmon\",\"timebase\":\"";
  out += use_sim_time ? "sim" : "wall";
  out += "\"},\"traceEvents\":[";
  bool first = true;
  for (auto& [trace_id, records] : traces) {
    const std::uint32_t pid =
        static_cast<std::uint32_t>(trace_id & 0x7fffffffull) | 1u;
    std::sort(records.begin(), records.end(),
              [use_sim_time](const SpanRecord* a, const SpanRecord* b) {
                const double sa = start_micros(*a, use_sim_time);
                const double sb = start_micros(*b, use_sim_time);
                if (sa != sb) return sa < sb;
                return a->seq < b->seq;
              });
    std::string root_name;
    for (const auto* r : records) {
      if (r->parent_id == 0) {
        root_name = r->name;
        break;
      }
    }
    // Process-name metadata row so Perfetto labels each trace readably.
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"args\":{\"name\":\"trace ";
    out += span_id_hex(trace_id);
    if (!root_name.empty()) {
      out += " ";
      append_json_escaped(out, root_name);
    }
    out += "\"}}";

    std::vector<double> lane_busy_until;
    for (const auto* r : records) {
      const double ts = start_micros(*r, use_sim_time);
      const double dur = duration_micros(*r, use_sim_time);
      std::size_t lane = 0;
      for (; lane < lane_busy_until.size(); ++lane) {
        if (lane_busy_until[lane] <= ts) break;
      }
      if (lane == lane_busy_until.size()) lane_busy_until.push_back(0);
      lane_busy_until[lane] = ts + dur;

      char num[64];
      out += ",{\"name\":\"";
      append_json_escaped(out, r->name);
      out += "\",\"cat\":\"ipfsmon\",\"ph\":\"X\",\"ts\":";
      std::snprintf(num, sizeof(num), "%.3f", ts);
      out += num;
      out += ",\"dur\":";
      std::snprintf(num, sizeof(num), "%.3f", dur);
      out += num;
      out += ",\"pid\":" + std::to_string(pid);
      out += ",\"tid\":" + std::to_string(lane + 1);
      out += ",\"args\":{\"trace\":\"" + span_id_hex(r->trace_id) + "\"";
      out += ",\"span\":\"" + span_id_hex(r->span_id) + "\"";
      out += ",\"parent\":\"" + span_id_hex(r->parent_id) + "\"";
      for (const auto& [key, value] : r->attrs) {
        out += ",\"";
        append_json_escaped(out, key);
        out += "\":\"";
        append_json_escaped(out, value);
        out += "\"";
      }
      out += "}}";
    }
  }
  out += "]}\n";
  return out;
}

std::string to_spans_jsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  out.reserve(spans.size() * 160);
  for (const auto& r : spans) {
    out += "{\"trace\":\"" + span_id_hex(r.trace_id) + "\"";
    out += ",\"span\":\"" + span_id_hex(r.span_id) + "\"";
    out += ",\"parent\":\"" + span_id_hex(r.parent_id) + "\"";
    out += ",\"name\":\"";
    append_json_escaped(out, r.name);
    out += "\",\"start_sim_ns\":" + std::to_string(r.start_sim);
    out += ",\"end_sim_ns\":" + std::to_string(r.end_sim);
    out += ",\"start_us\":" + std::to_string(r.start_us);
    out += ",\"end_us\":" + std::to_string(r.end_us);
    out += ",\"attrs\":{";
    bool first = true;
    for (const auto& [key, value] : r.attrs) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      append_json_escaped(out, key);
      out += "\":\"";
      append_json_escaped(out, value);
      out += "\"";
    }
    out += "}}\n";
  }
  return out;
}

bool write_perfetto_json(const std::string& path,
                         const std::vector<SpanRecord>& spans,
                         bool use_sim_time, std::string* error) {
  return write_text_file(path, to_perfetto_json(spans, use_sim_time), error);
}

bool write_spans_jsonl(const std::string& path,
                       const std::vector<SpanRecord>& spans,
                       std::string* error) {
  return write_text_file(path, to_spans_jsonl(spans), error);
}

std::string to_debug_json(const Tracer& tracer, std::size_t k) {
  const std::vector<SpanRecord> spans = tracer.snapshot();
  const bool use_sim = has_sim_times(spans);
  const auto summaries = summarize_traces(spans, use_sim);

  std::string out = "{\"enabled\":";
  out += tracer.enabled() ? "true" : "false";
  out += ",\"sample_every\":" + std::to_string(tracer.config().sample_every);
  out += ",\"timebase\":\"";
  out += use_sim ? "sim" : "wall";
  out += "\",\"traces_started\":" + std::to_string(tracer.traces_started());
  out += ",\"spans_recorded\":" + std::to_string(tracer.spans_recorded());
  out += ",\"spans_dropped\":" + std::to_string(tracer.spans_dropped());
  out += ",\"spans_buffered\":" + std::to_string(spans.size());
  out += ",\"traces_buffered\":" + std::to_string(summaries.size());
  out += ",\"recent\":[";
  bool first = true;
  for (const auto& s : recent_traces(summaries, k)) {
    if (!first) out += ",";
    first = false;
    append_summary_json(out, s);
  }
  out += "],\"slowest\":[";
  first = true;
  for (const auto& s : slowest_traces(summaries, k, use_sim)) {
    if (!first) out += ",";
    first = false;
    append_summary_json(out, s);
  }
  out += "]}\n";
  return out;
}

}  // namespace ipfsmon::obs
