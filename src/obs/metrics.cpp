#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace ipfsmon::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be non-empty and strictly increasing");
  }
  bucket_counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("exponential_buckets: need start>0, factor>1");
  }
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i, v *= factor) out.push_back(v);
  return out;
}

std::size_t MetricsRegistry::find_index(std::string_view name,
                                        std::string_view labels,
                                        InstrumentKind kind) {
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].name == name && infos_[i].labels == labels) {
      if (infos_[i].kind != kind) {
        throw std::invalid_argument(
            "MetricsRegistry: instrument '" + std::string(name) +
            "' already registered with a different kind");
      }
      return i;
    }
  }
  return infos_.size();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  std::string_view labels) {
  const std::size_t idx = find_index(name, labels, InstrumentKind::kCounter);
  if (idx < infos_.size()) return counters_[infos_[idx].slot];
  counters_.emplace_back();
  infos_.push_back(InstrumentInfo{std::string(name), std::string(labels),
                                  std::string(help), InstrumentKind::kCounter,
                                  counters_.size() - 1});
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              std::string_view labels) {
  const std::size_t idx = find_index(name, labels, InstrumentKind::kGauge);
  if (idx < infos_.size()) return gauges_[infos_[idx].slot];
  gauges_.emplace_back();
  infos_.push_back(InstrumentInfo{std::string(name), std::string(labels),
                                  std::string(help), InstrumentKind::kGauge,
                                  gauges_.size() - 1});
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help,
                                      std::string_view labels) {
  const std::size_t idx = find_index(name, labels, InstrumentKind::kHistogram);
  if (idx < infos_.size()) return histograms_[infos_[idx].slot];
  histograms_.emplace_back(std::move(bounds));
  infos_.push_back(InstrumentInfo{std::string(name), std::string(labels),
                                  std::string(help),
                                  InstrumentKind::kHistogram,
                                  histograms_.size() - 1});
  return histograms_.back();
}

double MetricsRegistry::scalar_value(std::size_t index) const {
  const InstrumentInfo& info = infos_.at(index);
  switch (info.kind) {
    case InstrumentKind::kCounter:
      return static_cast<double>(counters_[info.slot].value());
    case InstrumentKind::kGauge:
      return gauges_[info.slot].value();
    case InstrumentKind::kHistogram:
      return static_cast<double>(histograms_[info.slot].count());
  }
  return 0.0;
}

const InstrumentInfo* MetricsRegistry::find(std::string_view name,
                                            std::string_view labels) const {
  for (const auto& info : infos_) {
    if (info.name == name && info.labels == labels) return &info;
  }
  return nullptr;
}

}  // namespace ipfsmon::obs
