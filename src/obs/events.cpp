#include "obs/events.hpp"

#include <cstdio>

namespace ipfsmon::obs {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kDebug: return "DEBUG";
    case Severity::kInfo: return "INFO";
    case Severity::kWarn: return "WARN";
    case Severity::kError: return "ERROR";
  }
  return "?";
}

EventHub::SubscriptionId EventHub::subscribe(Handler handler) {
  const SubscriptionId id = next_id_++;
  handlers_.emplace_back(id, std::move(handler));
  return id;
}

void EventHub::unsubscribe(SubscriptionId id) {
  for (auto it = handlers_.begin(); it != handlers_.end(); ++it) {
    if (it->first == id) {
      handlers_.erase(it);
      return;
    }
  }
}

void EventHub::emit(util::SimTime time, Severity severity,
                    std::string_view component, std::string message) {
  ++counts_[static_cast<std::size_t>(severity)];
  if (handlers_.empty()) return;
  const ObsEvent event{time, severity, component, std::move(message)};
  for (const auto& [id, handler] : handlers_) handler(event);
}

std::uint64_t EventHub::emitted_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

EventHub::SubscriptionId stderr_event_logger(EventHub& hub,
                                             Severity min_severity) {
  return hub.subscribe([min_severity](const ObsEvent& event) {
    if (event.severity < min_severity) return;
    std::fprintf(stderr, "[%s] %-5s %.*s: %s\n",
                 util::format_sim_time(event.time).c_str(),
                 std::string(severity_name(event.severity)).c_str(),
                 static_cast<int>(event.component.size()),
                 event.component.data(), event.message.c_str());
  });
}

}  // namespace ipfsmon::obs
