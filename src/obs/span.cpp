#include "obs/span.hpp"

#include <algorithm>
#include <chrono>

#include "util/rng.hpp"

namespace ipfsmon::obs {

namespace {

// Distinct derivation streams so trace IDs and span IDs never collide
// even for equal sequence numbers.
constexpr std::uint64_t kTraceStream = 0x7472616365ull;  // "trace"
constexpr std::uint64_t kSpanStream = 0x7370616eull;     // "span"

}  // namespace

std::int64_t wall_micros_now() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void Span::set_attr(std::string_view key, std::string value) {
  if (!tracer_ || !rec_) return;
  rec_->attrs.emplace_back(std::string(key), std::move(value));
}

void Span::set_attr(std::string_view key, std::uint64_t value) {
  if (!tracer_ || !rec_) return;
  rec_->attrs.emplace_back(std::string(key), std::to_string(value));
}

void Span::end() {
  if (!tracer_) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  if (!rec_) return;
  rec_->end_sim = tracer->sim_now();
  rec_->end_us = wall_micros_now();
  tracer->record(std::move(rec_));
}

void Tracer::configure(const TracerConfig& config) {
  config_ = config;
  if (config_.sample_every == 0) config_.sample_every = 1;
  if (config_.shards == 0) config_.shards = 1;
  if (config_.shard_capacity == 0) config_.shard_capacity = 1;
  trace_seq_.store(0, std::memory_order_relaxed);
  span_seq_.store(0, std::memory_order_relaxed);
  record_seq_.store(0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
  current_ = SpanContext{};
  shards_.clear();
  if (config_.enabled) {
    shards_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }
}

std::uint64_t Tracer::derive_id(std::uint64_t seed, std::uint64_t stream,
                                std::uint64_t n) {
  std::uint64_t state =
      seed ^ (stream * 0x9e3779b97f4a7c15ull) ^ ((n + 1) * 0xbf58476d1ce4e5b9ull);
  const std::uint64_t id = util::splitmix64(state);
  return id != 0 ? id : 1;
}

Span Tracer::make_span(std::string_view name, const SpanContext& ctx,
                       std::uint64_t parent_id) {
  auto rec = std::make_unique<SpanRecord>();
  rec->trace_id = ctx.trace_id;
  rec->span_id = ctx.span_id;
  rec->parent_id = parent_id;
  rec->name.assign(name);
  rec->start_sim = sim_now();
  rec->start_us = wall_micros_now();
  return Span(this, ctx, std::move(rec));
}

Span Tracer::start_trace(std::string_view name) {
  if (!config_.enabled) return Span();
  const std::uint64_t n = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  if (n % config_.sample_every != 0) return Span();
  SpanContext ctx;
  ctx.trace_id = derive_id(config_.seed, kTraceStream, n);
  ctx.span_id = derive_id(config_.seed, kSpanStream,
                          span_seq_.fetch_add(1, std::memory_order_relaxed));
  ctx.sampled = true;
  return make_span(name, ctx, /*parent_id=*/0);
}

Span Tracer::start_span(std::string_view name, const SpanContext& parent) {
  if (!config_.enabled || !parent.valid() || !parent.sampled) return Span();
  SpanContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = derive_id(config_.seed, kSpanStream,
                          span_seq_.fetch_add(1, std::memory_order_relaxed));
  ctx.sampled = true;
  return make_span(name, ctx, parent.span_id);
}

SpanContext Tracer::add_span(std::string_view name, const SpanContext& parent,
                             util::SimTime start_sim, util::SimTime end_sim,
                             SpanAttrs attrs, std::int64_t start_us,
                             std::int64_t end_us) {
  if (!config_.enabled || !parent.valid() || !parent.sampled) {
    return SpanContext{};
  }
  auto rec = std::make_unique<SpanRecord>();
  rec->trace_id = parent.trace_id;
  rec->span_id = derive_id(config_.seed, kSpanStream,
                           span_seq_.fetch_add(1, std::memory_order_relaxed));
  rec->parent_id = parent.span_id;
  rec->name.assign(name);
  rec->start_sim = start_sim;
  rec->end_sim = end_sim;
  rec->start_us = start_us >= 0 ? start_us : wall_micros_now();
  rec->end_us = end_us >= 0 ? end_us : rec->start_us;
  rec->attrs = std::move(attrs);
  SpanContext ctx;
  ctx.trace_id = rec->trace_id;
  ctx.span_id = rec->span_id;
  ctx.sampled = true;
  record(std::move(rec));
  return ctx;
}

void Tracer::record(std::unique_ptr<SpanRecord> rec) {
  if (shards_.empty()) return;
  rec->seq = record_seq_.fetch_add(1, std::memory_order_relaxed);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[rec->trace_id % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.spans.push_back(std::move(*rec));
  if (shard.spans.size() > config_.shard_capacity) {
    shard.spans.pop_front();
    ++shard.dropped;
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.insert(out.end(), shard->spans.begin(), shard->spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

void Tracer::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->spans.clear();
  }
}

std::uint64_t Tracer::spans_dropped() const {
  std::uint64_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += shard->dropped;
  }
  return dropped;
}

std::size_t Tracer::spans_buffered() const {
  std::size_t buffered = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    buffered += shard->spans.size();
  }
  return buffered;
}

}  // namespace ipfsmon::obs
