#include "obs/collector.hpp"

#include "sim/shard.hpp"

namespace ipfsmon::obs {

Collector::Collector(sim::Scheduler& scheduler, MetricsRegistry& registry,
                     CollectorConfig config)
    : scheduler_(scheduler), registry_(registry), config_(config) {}

void Collector::add_sampler(std::function<void()> sampler) {
  if (sampler) samplers_.push_back(std::move(sampler));
}

void Collector::start() {
  if (running_) return;
  running_ = true;
  wall_start_ = std::chrono::steady_clock::now();
  schedule_tick();
}

void Collector::stop() {
  running_ = false;
  tick_timer_.cancel();
}

void Collector::schedule_tick() {
  tick_timer_ = scheduler_.schedule_after(config_.interval, [this]() {
    if (!running_) return;
    collect_now();
    schedule_tick();
  });
}

Collector::Sample Collector::make_sample() const {
  Sample sample;
  sample.time = scheduler_.now();
  sample.values.reserve(registry_.size());
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    sample.values.push_back(registry_.scalar_value(i));
  }
  return sample;
}

void Collector::collect_now() {
  for (const auto& sampler : samplers_) sampler();
  ring_.push_back(make_sample());
  ++samples_taken_;
  while (ring_.size() > config_.ring_capacity) {
    ring_.pop_front();
    ++samples_dropped_;
  }
}

double Collector::wall_seconds() const {
  if (wall_start_ == std::chrono::steady_clock::time_point{}) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       wall_start_)
      .count();
}

void register_scheduler_metrics(Collector& collector, MetricsRegistry& registry,
                                const sim::Scheduler& scheduler) {
  Gauge& fired = registry.gauge("ipfsmon_sim_events_fired",
                                "Scheduler events dispatched since start");
  Gauge& cancelled = registry.gauge(
      "ipfsmon_sim_events_cancelled",
      "Scheduled events observed cancelled at dispatch time");
  Gauge& depth =
      registry.gauge("ipfsmon_sim_queue_depth", "Pending scheduler events");
  Gauge& sim_seconds = registry.gauge("ipfsmon_sim_time_seconds",
                                      "Current simulated time in seconds");
  Gauge& speedup = registry.gauge(
      "ipfsmon_sim_speedup",
      "Simulated seconds advanced per wall-clock second since collection "
      "started");
  Gauge& clamped = registry.gauge(
      "ipfsmon_sim_schedule_clamped",
      "Events whose requested time was in the past and got clamped to now "
      "(cross-shard lookahead violations land here)");
  collector.add_sampler(
      [&collector, &scheduler, &fired, &cancelled, &depth, &sim_seconds,
       &speedup, &clamped]() {
        fired.set(static_cast<double>(scheduler.dispatched()));
        cancelled.set(static_cast<double>(scheduler.cancelled()));
        depth.set(static_cast<double>(scheduler.pending_events()));
        sim_seconds.set(util::to_seconds(scheduler.now()));
        clamped.set(static_cast<double>(scheduler.schedule_clamped()));
        const double wall = collector.wall_seconds();
        if (wall > 0.0) {
          speedup.set(util::to_seconds(scheduler.now()) / wall);
        }
      });
}

void register_sharded_scheduler_metrics(Collector& collector,
                                        MetricsRegistry& registry,
                                        const sim::ShardedScheduler& sharded) {
  Gauge& epochs = registry.gauge(
      "ipfsmon_sim_shard_epochs",
      "Barrier epochs completed by the sharded coordinator");
  Gauge& cross = registry.gauge("ipfsmon_sim_shard_cross_posts",
                                "Events posted across shard boundaries");
  Gauge& clamped = registry.gauge(
      "ipfsmon_sim_shard_lookahead_clamped",
      "Cross-shard posts below the safe horizon, clamped up to it "
      "(nonzero means the lookahead contract was violated)");
  Gauge& stalls = registry.gauge(
      "ipfsmon_sim_shard_horizon_stalls",
      "Shard-epoch pairs that dispatched zero events (idle windows)");
  // Per-shard dispatch counters are published from atomics snapshotted at
  // each barrier, so this sampler (running on shard 0) reads them safely
  // while other shards keep executing.
  std::vector<Gauge*> dispatched;
  dispatched.reserve(sharded.shard_count());
  for (std::size_t i = 0; i < sharded.shard_count(); ++i) {
    dispatched.push_back(&registry.gauge(
        "ipfsmon_sim_shard_events_fired", "Events dispatched by this shard",
        "shard=\"" + std::to_string(i) + "\""));
  }
  collector.add_sampler([&sharded, &epochs, &cross, &clamped, &stalls,
                         dispatched = std::move(dispatched)]() {
    epochs.set(static_cast<double>(sharded.epochs()));
    cross.set(static_cast<double>(sharded.cross_posts()));
    clamped.set(static_cast<double>(sharded.lookahead_clamped()));
    stalls.set(static_cast<double>(sharded.horizon_stalls()));
    for (std::size_t i = 0; i < dispatched.size(); ++i) {
      dispatched[i]->set(static_cast<double>(sharded.shard_dispatched(i)));
    }
  });
}

}  // namespace ipfsmon::obs
