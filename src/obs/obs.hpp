// Umbrella context bundling the metrics registry and the event hub. One
// Obs instance is owned by each net::Network, so every protocol layer built
// on the network (DHT, Bitswap, nodes, monitors) reaches the same registry
// without extra plumbing.
#pragma once

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace ipfsmon::obs {

struct Obs {
  MetricsRegistry metrics;
  EventHub events;
};

}  // namespace ipfsmon::obs
