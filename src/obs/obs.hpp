// Umbrella context bundling the metrics registry, the event hub, and the
// span tracer. One Obs instance is owned by each net::Network, so every
// protocol layer built on the network (DHT, Bitswap, nodes, monitors)
// reaches the same registry without extra plumbing.
#pragma once

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ipfsmon::obs {

struct Obs {
  MetricsRegistry metrics;
  EventHub events;
  Tracer tracer;  // inert until configured with enabled = true
};

}  // namespace ipfsmon::obs
