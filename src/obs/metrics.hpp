// Low-overhead metrics primitives for the simulator: a registry of typed
// instruments (Counter, Gauge, fixed-bucket Histogram) following the
// Prometheus data model. The sim core is single-threaded, so increments are
// plain inline arithmetic — no atomics, no locks. Instrument handles stay
// valid for the registry's lifetime (instruments are never removed), so hot
// paths grab a reference once at construction and bump it directly.
//
// Naming convention: `ipfsmon_<layer>_<name>` with `_total` suffixed to
// monotonic counters; labels are reserved for low-cardinality dimensions
// (country codes, monitor ids) — see DESIGN.md "Observability".
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace ipfsmon::obs {

/// Monotonically increasing count (events fired, messages delivered, …).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous value that can move both ways (queue depth, coverage, …).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// value <= bounds[i] that fall in no earlier bucket; one implicit +Inf
/// bucket catches the rest (Prometheus `le` semantics, non-cumulative
/// storage — the exporter cumulates).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) {
    ++count_;
    sum_ += v;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        ++bucket_counts_[i];
        return;
      }
    }
    ++bucket_counts_.back();  // +Inf
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; last element is the +Inf bucket.
  const std::vector<std::uint64_t>& bucket_counts() const {
    return bucket_counts_;
  }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;           // strictly increasing upper bounds
  std::vector<std::uint64_t> bucket_counts_;  // bounds_.size() + 1 (+Inf)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// `count` buckets growing geometrically from `start` by `factor`.
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count);

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// Export-facing metadata for one registered instrument. `name` is the base
/// metric name; `labels` is the Prometheus label body without braces (e.g.
/// `country="US"`), empty for unlabelled instruments.
struct InstrumentInfo {
  std::string name;
  std::string labels;
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;
  // Index into the registry's per-kind storage.
  std::size_t slot = 0;

  std::string full_name() const {
    return labels.empty() ? name : name + "{" + labels + "}";
  }
};

/// Owns all instruments. Lookup is by (name, labels): re-registering the
/// same pair with the same kind returns the existing instrument; a kind
/// mismatch throws std::invalid_argument. Registration is append-only, so
/// instrument indices are stable — the Collector relies on that to align
/// ring samples taken at different times.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help = {},
                   std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = {},
               std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = {},
                       std::string_view labels = {});

  /// Registered instrument count (all kinds).
  std::size_t size() const { return infos_.size(); }

  /// Metadata in registration order; index i matches scalar_value(i).
  const std::vector<InstrumentInfo>& instruments() const { return infos_; }

  /// One scalar per instrument for time-series sampling: counter value,
  /// gauge value, or histogram observation count.
  double scalar_value(std::size_t index) const;

  /// Lookup without creating; nullptr when absent.
  const InstrumentInfo* find(std::string_view name,
                             std::string_view labels = {}) const;

  const Counter& counter_at(std::size_t slot) const { return counters_[slot]; }
  const Gauge& gauge_at(std::size_t slot) const { return gauges_[slot]; }
  const Histogram& histogram_at(std::size_t slot) const {
    return histograms_[slot];
  }

 private:
  std::size_t find_index(std::string_view name, std::string_view labels,
                         InstrumentKind kind);

  // deques: stable addresses while growing (hot paths hold references).
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<InstrumentInfo> infos_;
};

}  // namespace ipfsmon::obs
