// Periodic snapshotting of a MetricsRegistry on a *sim-time* cadence. Each
// tick runs the registered samplers (pull-style: they refresh gauges from
// live objects — scheduler depth, population counts, coverage) and then
// appends one timestamped sample holding every instrument's scalar value to
// a bounded ring. The ring is what the JSONL exporter serializes, giving
// every experiment a machine-readable time series next to its stdout report.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace ipfsmon::sim {
class ShardedScheduler;
}

namespace ipfsmon::obs {

struct CollectorConfig {
  /// Sim-time distance between samples (the "default cadence").
  util::SimDuration interval = 5 * util::kMinute;
  /// Ring capacity; the oldest samples are dropped (and counted) beyond it.
  std::size_t ring_capacity = 4096;
};

class Collector {
 public:
  struct Sample {
    util::SimTime time = 0;
    /// values[i] = registry.scalar_value(i) at sample time. Shorter than
    /// the registry's current size if instruments were registered later —
    /// indices are stable (the registry is append-only).
    std::vector<double> values;
  };

  Collector(sim::Scheduler& scheduler, MetricsRegistry& registry,
            CollectorConfig config = {});
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Runs before every sample; refresh sampled gauges here.
  void add_sampler(std::function<void()> sampler);

  /// Starts (or restarts) periodic collection at `config.interval`.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Takes one sample immediately (also used for the exit snapshot).
  void collect_now();

  /// Builds a sample of current values without storing it in the ring.
  Sample make_sample() const;

  const std::deque<Sample>& samples() const { return ring_; }
  std::uint64_t samples_taken() const { return samples_taken_; }
  std::uint64_t samples_dropped() const { return samples_dropped_; }

  /// Wall-clock seconds since start() — basis for the sim/wall speed ratio.
  double wall_seconds() const;

  const MetricsRegistry& registry() const { return registry_; }
  const CollectorConfig& config() const { return config_; }

 private:
  void schedule_tick();

  sim::Scheduler& scheduler_;
  MetricsRegistry& registry_;
  CollectorConfig config_;
  std::vector<std::function<void()>> samplers_;
  std::deque<Sample> ring_;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t samples_dropped_ = 0;
  bool running_ = false;
  sim::EventHandle tick_timer_;
  std::chrono::steady_clock::time_point wall_start_{};
};

/// Registers the standard scheduler instruments on `collector`'s registry
/// and a sampler keeping them fresh: events fired/cancelled, queue depth,
/// sim time, and the sim-time/wall-time speedup ratio.
void register_scheduler_metrics(Collector& collector, MetricsRegistry& registry,
                                const sim::Scheduler& scheduler);

/// Registers the sharded-coordinator instruments (epochs, cross-shard
/// posts, lookahead clamps, horizon stalls, per-shard dispatch counts) and
/// a sampler keeping them fresh. Call on shard 0's collector only — the
/// counters are atomics snapshotted at epoch barriers, safe to read while
/// other shards run.
void register_sharded_scheduler_metrics(Collector& collector,
                                        MetricsRegistry& registry,
                                        const sim::ShardedScheduler& sharded);

}  // namespace ipfsmon::obs
