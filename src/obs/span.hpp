// Causal span tracing: deterministic, low-overhead request traces.
//
// A *trace* is a tree of *spans* (named, timed operations) describing one
// request end-to-end — e.g. a gateway fetch fanning into DHT lookup RPCs,
// Bitswap want broadcasts, and monitor captures; or one query-daemon HTTP
// request descending into cache lookup, rollup decode, and per-segment
// scans. Spans carry both simulated time (when produced inside the
// discrete-event simulator) and wall time (a process-wide steady-clock
// epoch, microseconds), so the same machinery profiles the simulator and
// the real daemon.
//
// Determinism: trace and span IDs are derived from (config seed, a
// monotonic sequence number) via a splitmix64 mix — no RNG stream is
// consumed and the same seed reproduces the same IDs and parent links
// byte-for-byte, provided spans are started in a deterministic order
// (single-threaded simulation, or externally serialized daemon handlers).
// Head sampling keeps overhead bounded: the n-th trace is sampled iff
// n % sample_every == 0, and unsampled traces cost one atomic increment
// with no allocation.
//
// The tracer is inert by default (TracerConfig::enabled = false): no
// allocations, no metrics, no scheduled work — a tracing-off run is
// byte-identical to a build without this layer, the same invariant the
// churn subsystem establishes for fault injection.
//
// Thread-safety: start/end/add_span are safe from multiple threads (the
// span buffer is lock-sharded; sequence counters are atomic). The
// *implicit* current() context is a plain member — it requires external
// serialization, which both intended hosts provide (the simulator is
// single-threaded; the query service serializes handlers on one mutex).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace ipfsmon::obs {

/// Microseconds since a process-wide steady-clock epoch (first call).
/// Monotonic, comparable across threads, unaffected by NTP steps.
std::int64_t wall_micros_now();

/// Identifies a span within a trace; propagated across async boundaries
/// (scheduler events, network payloads) to parent downstream spans.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool sampled = false;

  bool valid() const { return trace_id != 0; }
};

using SpanAttrs = std::vector<std::pair<std::string, std::string>>;

/// One finished span as stored in the buffer and fed to exporters.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = trace root
  /// Global record order (assigned when the span ends); snapshot() sorts
  /// by this, so exports are reproducible.
  std::uint64_t seq = 0;
  std::string name;
  util::SimTime start_sim = 0;
  util::SimTime end_sim = 0;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  SpanAttrs attrs;
};

struct TracerConfig {
  /// Master switch. Off (the default) makes every tracer call a no-op.
  bool enabled = false;
  /// Seed for trace/span ID derivation; same seed ⇒ same IDs.
  std::uint64_t seed = 0;
  /// Head sampling: trace n (0-based) is kept iff n % sample_every == 0.
  /// 1 keeps everything; 0 is treated as 1.
  std::uint64_t sample_every = 64;
  /// Lock shards for the span buffer (by trace id); >= 1.
  std::size_t shards = 4;
  /// Finished spans kept per shard; the oldest are dropped on overflow
  /// (and counted), so /debug/spans always shows the most recent work.
  std::size_t shard_capacity = 4096;
};

class Tracer;

/// RAII handle for an in-flight span. Move-only; ends (and records) on
/// destruction unless end() was called. Inert spans — from a disabled
/// tracer, an unsampled trace, or an invalid parent — hold no allocation
/// and every method is a cheap no-op.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept
      : tracer_(other.tracer_), ctx_(other.ctx_), rec_(std::move(other.rec_)) {
    other.tracer_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = other.tracer_;
      ctx_ = other.ctx_;
      rec_ = std::move(other.rec_);
      other.tracer_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// True while the span is live and will be recorded.
  bool active() const { return tracer_ != nullptr; }

  /// Context to hand to children / stamp on payloads. Invalid for inert
  /// spans, so downstream instrumentation short-circuits naturally.
  const SpanContext& context() const { return ctx_; }

  void set_attr(std::string_view key, std::string value);
  void set_attr(std::string_view key, std::uint64_t value);

  /// Records the span (idempotent). Timestamps are taken here.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, const SpanContext& ctx,
       std::unique_ptr<SpanRecord> rec)
      : tracer_(tracer), ctx_(ctx), rec_(std::move(rec)) {}

  Tracer* tracer_ = nullptr;
  SpanContext ctx_{};
  std::unique_ptr<SpanRecord> rec_;
};

class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(const TracerConfig& config) { configure(config); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// (Re)arms the tracer: installs the config and resets buffers and
  /// sequence counters. Not safe against concurrent span activity.
  void configure(const TracerConfig& config);

  const TracerConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// Source for simulated-time stamps; unset ⇒ sim timestamps are 0
  /// (the daemon case).
  void set_sim_clock(std::function<util::SimTime()> clock) {
    sim_clock_ = std::move(clock);
  }

  /// Starts a new root span, applying head sampling. Returns an inert
  /// span when disabled or when this trace is not sampled.
  Span start_trace(std::string_view name);

  /// Starts a child span. Inert unless `parent` is valid and sampled.
  Span start_span(std::string_view name, const SpanContext& parent);

  /// Records an already-finished span with explicit timestamps (for
  /// retroactive instrumentation, e.g. HTTP accept→parse measured before
  /// the request span exists, or instant point events with start == end).
  /// Wall times of -1 mean "now". Returns the new span's context
  /// (invalid if nothing was recorded).
  SpanContext add_span(std::string_view name, const SpanContext& parent,
                       util::SimTime start_sim, util::SimTime end_sim,
                       SpanAttrs attrs = {}, std::int64_t start_us = -1,
                       std::int64_t end_us = -1);

  /// Implicit context for synchronous call chains (see thread-safety
  /// note in the header comment). Prefer ScopedContext over raw
  /// set_current().
  const SpanContext& current() const { return current_; }
  void set_current(const SpanContext& ctx) { current_ = ctx; }

  /// All buffered spans, ordered by record sequence.
  std::vector<SpanRecord> snapshot() const;

  /// Drops all buffered spans (counters keep running).
  void clear();

  std::uint64_t traces_started() const {
    return trace_seq_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_dropped() const;
  std::size_t spans_buffered() const;

  /// The ID mix: splitmix64 over (seed, stream, n), forced nonzero.
  /// Exposed for the microbenchmarks and determinism tests.
  static std::uint64_t derive_id(std::uint64_t seed, std::uint64_t stream,
                                 std::uint64_t n);

 private:
  friend class Span;

  struct Shard {
    mutable std::mutex mu;
    std::deque<SpanRecord> spans;
    std::uint64_t dropped = 0;
  };

  Span make_span(std::string_view name, const SpanContext& ctx,
                 std::uint64_t parent_id);
  void record(std::unique_ptr<SpanRecord> rec);
  util::SimTime sim_now() const { return sim_clock_ ? sim_clock_() : 0; }

  TracerConfig config_{};
  std::function<util::SimTime()> sim_clock_;
  std::atomic<std::uint64_t> trace_seq_{0};
  std::atomic<std::uint64_t> span_seq_{0};
  std::atomic<std::uint64_t> record_seq_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  SpanContext current_{};
};

/// Sets the tracer's implicit context for the current scope, restoring
/// the previous one on exit. The cheap way to parent synchronous callees
/// without threading SpanContext through every signature.
class ScopedContext {
 public:
  ScopedContext(Tracer& tracer, const SpanContext& ctx)
      : tracer_(tracer), prev_(tracer.current()) {
    tracer_.set_current(ctx);
  }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;
  ~ScopedContext() { tracer_.set_current(prev_); }

 private:
  Tracer& tracer_;
  SpanContext prev_;
};

}  // namespace ipfsmon::obs
