// Exporters for finished spans: Chrome trace-event / Perfetto JSON for
// the timeline UI, JSONL for scripted analysis, and compact per-trace
// summaries backing the daemon's /debug/spans endpoint.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace ipfsmon::obs {

/// One trace collapsed to its root: identity, fan-out, and duration in
/// both timebases (wall for the daemon, sim for the simulator).
struct TraceSummary {
  std::uint64_t trace_id = 0;
  std::string root_name;
  std::size_t span_count = 0;
  util::SimTime start_sim = 0;
  util::SimDuration sim_duration = 0;
  std::int64_t start_us = 0;
  std::int64_t wall_us = 0;
};

/// 16-digit lowercase hex, the ID form used in every export format.
std::string span_id_hex(std::uint64_t id);

/// True if any span carries a nonzero sim timestamp — used to pick the
/// export timebase automatically (simulator runs vs. daemon runs).
bool has_sim_times(const std::vector<SpanRecord>& spans);

/// Groups spans by trace and collapses each to a TraceSummary, ordered
/// by trace start time (chosen timebase).
std::vector<TraceSummary> summarize_traces(const std::vector<SpanRecord>& spans,
                                           bool use_sim_time);

/// Top `k` summaries by duration in the chosen timebase, slowest first.
std::vector<TraceSummary> slowest_traces(std::vector<TraceSummary> summaries,
                                         std::size_t k, bool use_sim_time);

/// Last `k` summaries by start time, most recent first.
std::vector<TraceSummary> recent_traces(std::vector<TraceSummary> summaries,
                                        std::size_t k);

/// Chrome trace-event JSON ({"traceEvents": [...]}) loadable in Perfetto
/// (ui.perfetto.dev) and chrome://tracing. Each trace renders as one
/// process; overlapping spans within a trace are spread over lanes
/// ("threads") by greedy interval partitioning so parallel children (DHT
/// RPC fan-out, per-segment scans) stay visible.
std::string to_perfetto_json(const std::vector<SpanRecord>& spans,
                             bool use_sim_time);

/// One JSON object per line per span — grep/jq-friendly.
std::string to_spans_jsonl(const std::vector<SpanRecord>& spans);

bool write_perfetto_json(const std::string& path,
                         const std::vector<SpanRecord>& spans,
                         bool use_sim_time, std::string* error = nullptr);

bool write_spans_jsonl(const std::string& path,
                       const std::vector<SpanRecord>& spans,
                       std::string* error = nullptr);

/// The /debug/spans body: tracer state plus the `k` most recent and `k`
/// slowest traces.
std::string to_debug_json(const Tracer& tracer, std::size_t k);

}  // namespace ipfsmon::obs
