// Exporters for the metrics registry and collector ring:
//
//  * Prometheus text exposition format (version 0.0.4) — one full snapshot
//    of every instrument, histogram buckets cumulated with `le` labels.
//  * JSONL time series — one JSON object per collected sample, keyed by
//    full instrument name; the `*.metrics.jsonl` sidecar every experiment
//    writes at exit.
#pragma once

#include <string>

#include "obs/collector.hpp"
#include "obs/metrics.hpp"

namespace ipfsmon::obs {

/// Full registry snapshot in Prometheus text exposition format.
std::string to_prometheus(const MetricsRegistry& registry);

/// One JSONL line for `sample`: {"t_seconds":…,"<name>":value,…}. Histogram
/// instruments contribute their observation count under "<name>_count".
std::string to_jsonl_line(const MetricsRegistry& registry,
                          const Collector::Sample& sample);

/// Writes every ring sample as one JSONL line, plus (by default) a final
/// snapshot of current values — so short runs that never crossed a
/// collection interval still produce a sidecar. Returns false when the file
/// cannot be opened.
bool write_jsonl(const Collector& collector, const std::string& path,
                 bool append_final_snapshot = true);

}  // namespace ipfsmon::obs
