#include "obs/exporters.hpp"

#include <cstdio>
#include <unordered_set>

#include "util/strings.hpp"

namespace ipfsmon::obs {

namespace {

// Trailing-zero-trimmed value formatting: counters print as integers,
// gauges keep up to 6 significant decimals.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 1e15 && v > -1e15) {
    return util::format("%lld", static_cast<long long>(v));
  }
  return util::format("%.6g", v);
}

// Label values carry double quotes (`{monitor="0"}`), which must be
// backslash-escaped when a full_name is used as a JSON object key.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string_view kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "untyped";
}

void append_series(std::string& out, const std::string& name,
                   const std::string& labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += format_value(value);
  out += '\n';
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(registry.size() * 64);
  // TYPE/HELP headers are emitted once per base name (labelled variants of
  // one metric share them), in first-seen registration order.
  std::unordered_set<std::string> headered;
  for (const auto& info : registry.instruments()) {
    if (headered.insert(info.name).second) {
      if (!info.help.empty()) {
        out += "# HELP " + info.name + " " + info.help + "\n";
      }
      out += "# TYPE " + info.name + " " + std::string(kind_name(info.kind)) +
             "\n";
    }
    switch (info.kind) {
      case InstrumentKind::kCounter:
        append_series(out, info.name, info.labels,
                      static_cast<double>(registry.counter_at(info.slot).value()));
        break;
      case InstrumentKind::kGauge:
        append_series(out, info.name, info.labels,
                      registry.gauge_at(info.slot).value());
        break;
      case InstrumentKind::kHistogram: {
        const Histogram& h = registry.histogram_at(info.slot);
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          cumulative += h.bucket_counts()[b];
          std::string labels = info.labels;
          if (!labels.empty()) labels += ",";
          labels += "le=\"" + format_value(h.bounds()[b]) + "\"";
          append_series(out, info.name + "_bucket", labels,
                        static_cast<double>(cumulative));
        }
        cumulative += h.bucket_counts().back();
        std::string inf_labels = info.labels;
        if (!inf_labels.empty()) inf_labels += ",";
        inf_labels += "le=\"+Inf\"";
        append_series(out, info.name + "_bucket", inf_labels,
                      static_cast<double>(cumulative));
        append_series(out, info.name + "_sum", info.labels, h.sum());
        append_series(out, info.name + "_count", info.labels,
                      static_cast<double>(h.count()));
        break;
      }
    }
  }
  return out;
}

std::string to_jsonl_line(const MetricsRegistry& registry,
                          const Collector::Sample& sample) {
  std::string out = "{\"t_seconds\":" + format_value(util::to_seconds(sample.time));
  const auto& infos = registry.instruments();
  for (std::size_t i = 0; i < sample.values.size() && i < infos.size(); ++i) {
    out += ",\"";
    out += json_escape(infos[i].full_name());
    if (infos[i].kind == InstrumentKind::kHistogram) out += "_count";
    out += "\":";
    out += format_value(sample.values[i]);
  }
  out += "}";
  return out;
}

bool write_jsonl(const Collector& collector, const std::string& path,
                 bool append_final_snapshot) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const MetricsRegistry& registry = collector.registry();
  for (const auto& sample : collector.samples()) {
    const std::string line = to_jsonl_line(registry, sample);
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  if (append_final_snapshot) {
    // Skip the extra snapshot when a ring sample already covers "now" —
    // keeps t_seconds strictly increasing for time-series consumers.
    const Collector::Sample final_sample = collector.make_sample();
    if (collector.samples().empty() ||
        collector.samples().back().time < final_sample.time) {
      const std::string line = to_jsonl_line(registry, final_sample);
      std::fwrite(line.data(), 1, line.size(), f);
      std::fputc('\n', f);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace ipfsmon::obs
