// The multicodec registry subset relevant to IPFS data requests. Codes match
// the canonical multiformats table; Table I of the paper reports request
// shares broken down by exactly these codecs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ipfsmon::cid {

enum class Multicodec : std::uint64_t {
  Raw = 0x55,          // unencoded binary / file-DAG leaves
  DagProtobuf = 0x70,  // Merkle-DAG nodes (files, directories)
  DagCBOR = 0x71,      // IPLD CBOR
  GitRaw = 0x78,       // raw git objects
  EthereumBlock = 0x90,
  EthereumTx = 0x93,
  BitcoinBlock = 0xb0,
  ZcashBlock = 0xc0,
  DagJSON = 0x0129,  // IPLD JSON
  Libp2pKey = 0x72,
};

/// Human-readable codec name as used in the paper's Table I.
std::string_view multicodec_name(Multicodec codec);

/// Parses a codec name (inverse of multicodec_name).
std::optional<Multicodec> multicodec_from_name(std::string_view name);

/// Parses a raw multicodec code. Unknown codes are rejected.
std::optional<Multicodec> multicodec_from_code(std::uint64_t code);

/// All codecs known to this registry, in code order.
const std::vector<Multicodec>& all_multicodecs();

}  // namespace ipfsmon::cid
