#include "cid/cid.hpp"

#include "util/base32.hpp"
#include "util/base58.hpp"
#include "util/varint.hpp"

namespace ipfsmon::cid {

Cid::Cid(std::uint32_t version, Multicodec codec, Multihash hash)
    : version_(version), codec_(codec), hash_(std::move(hash)) {}

Cid Cid::of_data(Multicodec codec, util::BytesView data) {
  return Cid(1, codec, Multihash::sha256_of(data));
}

Cid Cid::v0_of_data(util::BytesView data) {
  return Cid(0, Multicodec::DagProtobuf, Multihash::sha256_of(data));
}

std::optional<Cid> Cid::from_string(std::string_view text) {
  if (text.size() >= 2 && text.substr(0, 2) == "Qm") {
    const auto bytes = util::base58_decode(text);
    if (!bytes) return std::nullopt;
    const auto mh = Multihash::decode(*bytes);
    if (!mh || mh->second != bytes->size()) return std::nullopt;
    return Cid(0, Multicodec::DagProtobuf, mh->first);
  }
  if (!text.empty() && text[0] == 'b') {
    const auto bytes = util::base32_decode(text.substr(1));
    if (!bytes) return std::nullopt;
    return decode(*bytes);
  }
  return std::nullopt;
}

std::optional<Cid> Cid::decode(util::BytesView data) {
  // CIDv0 binary form is a bare sha2-256 multihash (starts 0x12 0x20).
  if (data.size() == 34 && data[0] == 0x12 && data[1] == 0x20) {
    const auto mh = Multihash::decode(data);
    if (!mh) return std::nullopt;
    return Cid(0, Multicodec::DagProtobuf, mh->first);
  }
  const auto version = util::varint_decode(data);
  if (!version || version->value != 1) return std::nullopt;
  auto rest = data.subspan(version->consumed);
  const auto codec_code = util::varint_decode(rest);
  if (!codec_code) return std::nullopt;
  const auto codec = multicodec_from_code(codec_code->value);
  if (!codec) return std::nullopt;
  rest = rest.subspan(codec_code->consumed);
  const auto mh = Multihash::decode(rest);
  if (!mh || mh->second != rest.size()) return std::nullopt;
  return Cid(1, *codec, mh->first);
}

util::Bytes Cid::encode() const {
  if (version_ == 0) return hash_.encode();
  util::Bytes out;
  util::varint_append(out, 1);
  util::varint_append(out, static_cast<std::uint64_t>(codec_));
  const auto mh = hash_.encode();
  out.insert(out.end(), mh.begin(), mh.end());
  return out;
}

std::string Cid::to_string() const {
  if (version_ == 0) return util::base58_encode(hash_.encode());
  return "b" + util::base32_encode(encode());
}

std::string Cid::short_hex() const {
  const auto& d = hash_.digest();
  const std::size_t n = d.size() < 6 ? d.size() : 6;
  return util::to_hex(util::BytesView(d.data(), n));
}

bool Cid::operator<(const Cid& other) const {
  if (codec_ != other.codec_) return codec_ < other.codec_;
  return util::lex_less(hash_.digest(), other.hash_.digest());
}

}  // namespace ipfsmon::cid
