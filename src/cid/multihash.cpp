#include "cid/multihash.hpp"

#include "util/varint.hpp"

namespace ipfsmon::cid {

Multihash Multihash::sha256_of(util::BytesView data) {
  return wrap_sha256(crypto::sha256(data));
}

Multihash Multihash::wrap_sha256(const crypto::Sha256Digest& digest) {
  return Multihash(HashCode::Sha2_256,
                   util::Bytes(digest.begin(), digest.end()));
}

util::Bytes Multihash::encode() const {
  util::Bytes out;
  util::varint_append(out, static_cast<std::uint64_t>(code_));
  util::varint_append(out, digest_.size());
  out.insert(out.end(), digest_.begin(), digest_.end());
  return out;
}

std::optional<std::pair<Multihash, std::size_t>> Multihash::decode(
    util::BytesView data) {
  const auto code = util::varint_decode(data);
  if (!code) return std::nullopt;
  if (code->value != static_cast<std::uint64_t>(HashCode::Identity) &&
      code->value != static_cast<std::uint64_t>(HashCode::Sha2_256)) {
    return std::nullopt;
  }
  const auto rest = data.subspan(code->consumed);
  const auto len = util::varint_decode(rest);
  if (!len) return std::nullopt;
  const auto digest_view = rest.subspan(len->consumed);
  if (digest_view.size() < len->value) return std::nullopt;
  util::Bytes digest(digest_view.begin(),
                     digest_view.begin() + static_cast<std::ptrdiff_t>(len->value));
  const std::size_t consumed = code->consumed + len->consumed + len->value;
  return std::make_pair(
      Multihash(static_cast<HashCode>(code->value), std::move(digest)),
      consumed);
}

bool Multihash::verifies(util::BytesView data) const {
  switch (code_) {
    case HashCode::Identity:
      return digest_ == util::Bytes(data.begin(), data.end());
    case HashCode::Sha2_256: {
      const auto d = crypto::sha256(data);
      return digest_.size() == d.size() &&
             std::equal(digest_.begin(), digest_.end(), d.begin());
    }
  }
  return false;
}

}  // namespace ipfsmon::cid
