#include "cid/multicodec.hpp"

#include <array>

namespace ipfsmon::cid {

namespace {
struct Entry {
  Multicodec codec;
  std::string_view name;
};

constexpr std::array<Entry, 10> kEntries = {{
    {Multicodec::Raw, "Raw"},
    {Multicodec::DagProtobuf, "DagProtobuf"},
    {Multicodec::DagCBOR, "DagCBOR"},
    {Multicodec::Libp2pKey, "Libp2pKey"},
    {Multicodec::GitRaw, "GitRaw"},
    {Multicodec::EthereumBlock, "EthereumBlock"},
    {Multicodec::EthereumTx, "EthereumTx"},
    {Multicodec::BitcoinBlock, "BitcoinBlock"},
    {Multicodec::ZcashBlock, "ZcashBlock"},
    {Multicodec::DagJSON, "DagJSON"},
}};
}  // namespace

std::string_view multicodec_name(Multicodec codec) {
  for (const auto& e : kEntries) {
    if (e.codec == codec) return e.name;
  }
  return "Unknown";
}

std::optional<Multicodec> multicodec_from_name(std::string_view name) {
  for (const auto& e : kEntries) {
    if (e.name == name) return e.codec;
  }
  return std::nullopt;
}

std::optional<Multicodec> multicodec_from_code(std::uint64_t code) {
  for (const auto& e : kEntries) {
    if (static_cast<std::uint64_t>(e.codec) == code) return e.codec;
  }
  return std::nullopt;
}

const std::vector<Multicodec>& all_multicodecs() {
  static const std::vector<Multicodec> codecs = [] {
    std::vector<Multicodec> v;
    for (const auto& e : kEntries) v.push_back(e.codec);
    return v;
  }();
  return codecs;
}

}  // namespace ipfsmon::cid
