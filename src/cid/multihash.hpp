// Multihash: self-describing hash digests (<code><length><digest>).
// We support sha2-256 (the IPFS default) and identity hashes.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace ipfsmon::cid {

enum class HashCode : std::uint64_t {
  Identity = 0x00,
  Sha2_256 = 0x12,
};

class Multihash {
 public:
  Multihash() = default;
  Multihash(HashCode code, util::Bytes digest)
      : code_(code), digest_(std::move(digest)) {}

  /// Hashes `data` with sha2-256 and wraps the digest.
  static Multihash sha256_of(util::BytesView data);

  /// Wraps a precomputed sha2-256 digest.
  static Multihash wrap_sha256(const crypto::Sha256Digest& digest);

  HashCode code() const { return code_; }
  const util::Bytes& digest() const { return digest_; }

  /// Binary form: varint(code) varint(len) digest.
  util::Bytes encode() const;

  /// Decodes a multihash from the front of `data`; returns the multihash
  /// and the number of bytes consumed, or nullopt if malformed.
  static std::optional<std::pair<Multihash, std::size_t>> decode(
      util::BytesView data);

  /// True if `data` hashes to this multihash (integrity verification —
  /// the Self-Certifying-Filesystem property from paper Sec. III-B).
  bool verifies(util::BytesView data) const;

  bool operator==(const Multihash&) const = default;

 private:
  HashCode code_ = HashCode::Sha2_256;
  util::Bytes digest_;
};

}  // namespace ipfsmon::cid
