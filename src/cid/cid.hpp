// Content identifiers (CIDs). A CID binds a multicodec (what the bytes are)
// to a multihash (which bytes). CIDv0 is the legacy base58 "Qm..." form and
// implies DagProtobuf + sha2-256; CIDv1 is self-describing and renders as
// multibase 'b' + base32.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "cid/multicodec.hpp"
#include "cid/multihash.hpp"
#include "util/bytes.hpp"

namespace ipfsmon::cid {

class Cid {
 public:
  Cid() = default;
  Cid(std::uint32_t version, Multicodec codec, Multihash hash);

  /// Builds the CIDv1 for a data block under the given codec.
  static Cid of_data(Multicodec codec, util::BytesView data);

  /// Builds the legacy CIDv0 (DagProtobuf, sha2-256) of a block.
  static Cid v0_of_data(util::BytesView data);

  /// Parses either a CIDv0 ("Qm...") or multibase-'b' CIDv1 string.
  static std::optional<Cid> from_string(std::string_view text);

  /// Decodes the binary form (CIDv0 = bare multihash, CIDv1 = varint
  /// version + varint codec + multihash).
  static std::optional<Cid> decode(util::BytesView data);

  std::uint32_t version() const { return version_; }
  Multicodec codec() const { return codec_; }
  const Multihash& hash() const { return hash_; }

  /// Binary encoding (see decode()).
  util::Bytes encode() const;

  /// Canonical string form (v0: base58, v1: 'b' + base32).
  std::string to_string() const;

  /// Short digest prefix for logs and table rows.
  std::string short_hex() const;

  bool operator==(const Cid& other) const = default;

  /// Strict weak order (codec, then digest) so CIDs can key ordered maps.
  bool operator<(const Cid& other) const;

 private:
  std::uint32_t version_ = 1;
  Multicodec codec_ = Multicodec::Raw;
  Multihash hash_;
};

}  // namespace ipfsmon::cid

namespace std {
template <>
struct hash<ipfsmon::cid::Cid> {
  size_t operator()(const ipfsmon::cid::Cid& c) const noexcept {
    const auto& digest = c.hash().digest();
    size_t h = static_cast<size_t>(c.codec()) * 0x9e3779b97f4a7c15ull;
    const size_t n = digest.size() < 8 ? digest.size() : 8;
    for (size_t i = 0; i < n; ++i) {
      h = (h << 8) ^ digest[i];
    }
    return h;
  }
};
}  // namespace std
