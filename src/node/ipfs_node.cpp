#include "node/ipfs_node.hpp"

#include <unordered_set>

namespace ipfsmon::node {

IpfsNode::IpfsNode(net::Network& network, crypto::KeyPair keys,
                   const net::Address& address, const std::string& country,
                   NodeConfig config, util::RngStream rng)
    : network_(network),
      keys_(std::move(keys)),
      id_(keys_.peer_id()),
      address_(address),
      config_(config),
      rng_(std::move(rng)),
      blockstore_(config.blockstore_capacity) {
  // NAT'd nodes run as DHT clients (they are unreachable, so server mode
  // would be useless to the network) — mirrors go-ipfs's AutoNAT decision.
  config_.dht.server_mode = config_.dht_server && !config_.nat;
  config_.bitswap.use_want_have = !config_.legacy_protocol;

  dht_ = std::make_unique<dht::DhtNode>(network_, id_, config_.dht,
                                        rng_.fork("dht"));
  engine_ = std::make_unique<bitswap::BitswapEngine>(
      network_, id_,
      [this](const cid::Cid& cid) { return blockstore_.get(cid); },
      [this]() { return blockstore_.all_cids(); });
  engine_->set_serve_blocks(config_.serve_blocks);
  client_ = std::make_unique<bitswap::BitswapClient>(
      network_, id_, config_.bitswap,
      [this](const cid::Cid& cid,
             std::function<void(std::vector<dht::PeerRecord>)> cb) {
        dht_->find_providers(cid, std::move(cb));
      },
      rng_.fork("bitswap"));

  network_.register_node(id_, address_, country, config_.nat, this,
                         config_.discovery_weight);
}

IpfsNode::~IpfsNode() {
  if (online_) go_offline();
}

void IpfsNode::go_online(const std::vector<crypto::PeerId>& bootstrap) {
  if (online_) return;
  online_ = true;
  network_.set_online(id_, true);
  client_->restart();
  dht_->start();
  dht_->bootstrap(bootstrap);
  schedule_discovery();
  schedule_reprovide();
}

void IpfsNode::go_offline() {
  if (!online_) return;
  online_ = false;
  discovery_timer_.cancel();
  reprovide_timer_.cancel();
  client_->shutdown();
  dht_->stop();
  network_.set_online(id_, false);
}

cid::Cid IpfsNode::add_bytes(util::Bytes data, cid::Multicodec codec) {
  auto block = std::make_shared<dag::Block>(
      dag::Block::create(codec, std::move(data)));
  const cid::Cid id = block->id();
  blockstore_.pin(id);
  store_block(block, /*provide=*/true);
  return id;
}

dag::DagBuildResult IpfsNode::add_file(util::BytesView data,
                                       const dag::BuilderOptions& options) {
  dag::DagBuildResult result = dag::build_file(data, options);
  for (const auto& b : result.blocks) {
    auto block = std::make_shared<dag::Block>(b);
    blockstore_.pin(block->id());
    store_block(block, /*provide=*/false);
  }
  // Only the root is announced: consumers resolve children via sessions.
  if (online_) dht_->provide(result.root, address_);
  provided_.push_back(result.root);
  return result;
}

void IpfsNode::add_block(dag::BlockPtr block, bool provide) {
  if (block == nullptr) return;
  blockstore_.pin(block->id());
  store_block(block, provide);
}

void IpfsNode::add_blocks(const std::vector<dag::BlockPtr>& blocks,
                          const cid::Cid& provide_root) {
  for (const auto& block : blocks) {
    if (block == nullptr) continue;
    blockstore_.pin(block->id());
    store_block(block, /*provide=*/false);
  }
  provided_.push_back(provide_root);
  if (online_) dht_->provide(provide_root, address_);
}

void IpfsNode::pin(const cid::Cid& cid) { blockstore_.pin(cid); }

void IpfsNode::store_block(const dag::BlockPtr& block, bool provide) {
  blockstore_.put(block);
  engine_->notify_new_block(block);
  if (provide) {
    provided_.push_back(block->id());
    if (online_) dht_->provide(block->id(), address_);
  }
}

void IpfsNode::fetch(const cid::Cid& cid, FetchCallback on_done) {
  // Cache first: repeat requests never reach the network, which is why
  // monitors only observe a node's *first* request for a data item.
  if (const dag::BlockPtr cached = blockstore_.get(cid)) {
    auto& tracer = network_.obs().tracer;
    if (tracer.current().valid()) {
      const util::SimTime now = network_.scheduler().now();
      tracer.add_span("node.blockstore_hit", tracer.current(), now, now);
    }
    if (on_done) on_done(cached);
    return;
  }
  if (!online_) {
    if (on_done) on_done(nullptr);
    return;
  }
  client_->fetch(cid, bitswap::kNoSession,
                 [this, on_done = std::move(on_done)](dag::BlockPtr block) {
                   if (block != nullptr) {
                     store_block(block, config_.provide_downloaded);
                   }
                   if (on_done) on_done(block);
                 });
}

struct IpfsNode::DagFetchState {
  bitswap::SessionId session = bitswap::kNoSession;
  std::size_t fetched = 0;
  std::size_t outstanding = 0;
  bool failed = false;
  DagFetchCallback on_done;
  std::unordered_set<cid::Cid> requested;
};

void IpfsNode::fetch_dag(const cid::Cid& root, DagFetchCallback on_done) {
  auto state = std::make_shared<DagFetchState>();
  state->session = client_->create_session();
  state->on_done = std::move(on_done);
  state->outstanding = 1;
  state->requested.insert(root);

  // Root request: the session is empty, so this is a full broadcast.
  if (const dag::BlockPtr cached = blockstore_.get(root)) {
    ++state->fetched;
    --state->outstanding;
    fetch_dag_children(state, cached);
    if (state->outstanding == 0 && state->on_done) {
      auto cb = std::move(state->on_done);
      cb(state->fetched, !state->failed);
    }
    return;
  }
  client_->fetch(root, state->session, [this, state](dag::BlockPtr block) {
    --state->outstanding;
    if (block == nullptr) {
      state->failed = true;
    } else {
      ++state->fetched;
      store_block(block, config_.provide_downloaded);
      fetch_dag_children(state, block);
    }
    if (state->outstanding == 0 && state->on_done) {
      auto cb = std::move(state->on_done);
      cb(state->fetched, !state->failed);
    }
  });
}

void IpfsNode::fetch_dag_children(const std::shared_ptr<DagFetchState>& state,
                                  const dag::BlockPtr& block) {
  if (block->id().codec() != cid::Multicodec::DagProtobuf) return;
  const auto node = dag::DagNode::from_bytes(block->data());
  if (!node) return;
  for (const auto& link : node->links) {
    if (!state->requested.insert(link.target).second) continue;
    ++state->outstanding;
    if (const dag::BlockPtr cached = blockstore_.get(link.target)) {
      ++state->fetched;
      --state->outstanding;
      fetch_dag_children(state, cached);
      continue;
    }
    // Child requests are scoped to the session's peers — the behaviour
    // that hides non-root CIDs from passive monitors.
    client_->fetch(link.target, state->session,
                   [this, state](dag::BlockPtr child) {
                     --state->outstanding;
                     if (child == nullptr) {
                       state->failed = true;
                     } else {
                       ++state->fetched;
                       store_block(child, config_.provide_downloaded);
                       fetch_dag_children(state, child);
                     }
                     if (state->outstanding == 0 && state->on_done) {
                       auto cb = std::move(state->on_done);
                       cb(state->fetched, !state->failed);
                     }
                   });
  }
}

void IpfsNode::schedule_discovery() {
  if (!online_) return;
  const auto jitter = static_cast<util::SimDuration>(
      rng_.uniform(0.5, 1.5) * static_cast<double>(config_.discovery_interval));
  discovery_timer_ = network_.scheduler().schedule_after(jitter, [this]() {
    discovery_round();
    schedule_discovery();
  });
}

void IpfsNode::discovery_round() {
  if (!online_) return;
  // Connection-manager trim (go-ipfs watermarks): above high_water, close
  // random connections down to low_water. Connections to peers currently
  // serving us are not specially protected — the real manager's grace
  // period mostly shields brand-new connections, which a 1-minute cadence
  // approximates well enough.
  if (config_.high_water > 0 &&
      network_.connection_count(id_) > config_.high_water) {
    // Eligible victims: young connections only (older ones are protected,
    // as go-ipfs protects valued long-lived connections).
    std::vector<net::ConnectionId> victims;
    const util::SimTime now = network_.scheduler().now();
    for (const auto& peer : network_.connected_peers(id_)) {
      const auto conn = network_.connection_between(id_, peer);
      if (!conn) continue;
      const auto established = network_.connection_established_at(*conn);
      if (config_.trim_protect_age > 0 && established &&
          now - *established > config_.trim_protect_age) {
        continue;
      }
      victims.push_back(*conn);
    }
    const std::size_t excess = network_.connection_count(id_) -
                               std::min(network_.connection_count(id_),
                                        config_.low_water);
    const std::size_t to_close = std::min(excess, victims.size());
    for (std::size_t i = 0; i < to_close; ++i) {
      const std::size_t pick = rng_.uniform_index(victims.size() - i) + i;
      std::swap(victims[i], victims[pick]);
      network_.close(victims[i]);
    }
    if (to_close > 0 && network_.obs().events.active()) {
      network_.obs().events.emit(
          network_.scheduler().now(), obs::Severity::kInfo, "node",
          id_.short_hex() + " trimmed " + std::to_string(to_close) +
              " connections (above high water)");
    }
  }
  // Maintain the target degree by dialing randomly discovered public
  // peers. (Abstraction of libp2p discovery; see DESIGN.md.)
  if (network_.connection_count(id_) >= config_.target_degree) return;
  for (std::size_t i = 0; i < config_.discovery_dials; ++i) {
    const auto peer = network_.sample_online_public(rng_);
    if (!peer || *peer == id_) continue;
    network_.dial(id_, *peer, nullptr);
  }
}

void IpfsNode::schedule_reprovide() {
  if (!online_) return;
  const auto jitter = static_cast<util::SimDuration>(
      rng_.uniform(0.9, 1.1) * static_cast<double>(config_.reprovide_interval));
  reprovide_timer_ = network_.scheduler().schedule_after(jitter, [this]() {
    reprovide_round();
    schedule_reprovide();
  });
}

void IpfsNode::reprovide_round() {
  if (!online_) return;
  for (const auto& cid : provided_) {
    if (blockstore_.has(cid)) dht_->provide(cid, address_);
  }
}

bool IpfsNode::accept_inbound(const crypto::PeerId& /*from*/) {
  if (!online_) return false;
  return network_.connection_count(id_) < config_.max_degree;
}

void IpfsNode::on_connection(net::ConnectionId conn, const crypto::PeerId& peer,
                             bool /*outbound*/) {
  client_->on_peer_connected(conn, peer);
  on_peer_connected_hook(peer);
}

void IpfsNode::on_disconnect(net::ConnectionId /*conn*/,
                             const crypto::PeerId& peer) {
  engine_->on_peer_disconnected(peer);
  dht_->on_peer_disconnected(peer);
  on_peer_disconnected_hook(peer);
}

void IpfsNode::on_message(net::ConnectionId conn, const crypto::PeerId& from,
                          const net::PayloadPtr& payload) {
  if (!online_) return;
  if (const auto* dht_msg = dynamic_cast<const dht::DhtMessage*>(payload.get())) {
    dht_->handle_message(conn, from, *dht_msg);
    return;
  }
  if (const auto* bs_msg =
          dynamic_cast<const bitswap::BitswapMessage*>(payload.get())) {
    engine_->handle_message(conn, from, *bs_msg);
    client_->handle_response(from, *bs_msg);
    return;
  }
}

}  // namespace ipfsmon::node
