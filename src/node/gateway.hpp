// An HTTP/IPFS gateway (paper Sec. VI-B): a publicly reachable IPFS node
// fronted by an HTTP cache. HTTP requests for cached, fresh content produce
// no Bitswap traffic (Cloudflare reports a 97% hit ratio); misses and TTL
// revalidations do — which is the signal the paper's gateway-tracking
// experiment (Fig. 6) measures.
#pragma once

#include <unordered_map>

#include "node/ipfs_node.hpp"

namespace ipfsmon::node {

struct GatewayConfig {
  /// Time-to-live after which cached content is revalidated via Bitswap.
  util::SimDuration cache_ttl = 1 * util::kHour;
};

class GatewayNode {
 public:
  /// ok: content delivered; cache_hit: served without Bitswap traffic.
  using HttpCallback = std::function<void(bool ok, bool cache_hit)>;

  GatewayNode(net::Network& network, crypto::KeyPair keys,
              const net::Address& address, const std::string& country,
              NodeConfig node_config, GatewayConfig gateway_config,
              util::RngStream rng);

  /// Serves an HTTP request for a CID through the gateway.
  void handle_http_request(const cid::Cid& cid, HttpCallback on_done);

  IpfsNode& node() { return node_; }
  const crypto::PeerId& id() const { return node_.id(); }

  std::uint64_t http_requests() const { return http_requests_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t bitswap_fetches() const { return bitswap_fetches_; }
  double cache_hit_ratio() const {
    return http_requests_ == 0
               ? 0.0
               : static_cast<double>(cache_hits_) /
                     static_cast<double>(http_requests_);
  }

 private:
  IpfsNode node_;
  GatewayConfig config_;
  std::unordered_map<cid::Cid, util::SimTime> fresh_until_;
  std::uint64_t http_requests_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t bitswap_fetches_ = 0;
};

}  // namespace ipfsmon::node
