// The full IPFS node: composes the overlay host, Kademlia DHT (server or
// client mode), Bitswap engine + client, and the blockstore, implementing
// the content-retrieval strategy and caching/reproviding behaviour from
// paper Sec. III. Monitors, gateways, and the synthetic population are all
// built from this class (monitors via monitor::PassiveMonitor).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "bitswap/client.hpp"
#include "bitswap/engine.hpp"
#include "dag/builder.hpp"
#include "dht/dht_node.hpp"
#include "net/network.hpp"
#include "node/blockstore.hpp"

namespace ipfsmon::node {

struct NodeConfig {
  /// DHT server vs client (paper Sec. III-A). In real IPFS this is decided
  /// by reachability; the scenario sets it explicitly (NAT'd ⇒ client).
  bool dht_server = true;
  /// NAT'd nodes cannot accept inbound connections and run as DHT clients.
  bool nat = false;
  /// Pre-v0.5 protocol: WANT_BLOCK broadcasts, no inventory round.
  bool legacy_protocol = false;

  /// Blockstore cap. Simulated blocks are small; scale accordingly.
  std::size_t blockstore_capacity = 10ull * 1024 * 1024 * 1024;

  /// Outbound dialing keeps at least this many connections.
  std::size_t target_degree = 20;
  /// Inbound connections accepted until this many total.
  std::size_t max_degree = 2000;
  /// go-ipfs connection-manager watermarks: when the connection count
  /// exceeds `high_water`, random connections are closed down to
  /// `low_water`. 0 disables trimming (monitors never evict peers —
  /// that asymmetry is what lets them accumulate network-wide coverage).
  std::size_t high_water = 0;
  std::size_t low_water = 0;
  /// Connections older than this are protected from trimming (go-ipfs
  /// values established, long-useful connections) — the mechanism that
  /// lets stable nodes like monitors retain session-long connectivity.
  /// 0 protects nothing.
  util::SimDuration trim_protect_age = 90 * util::kMinute;
  /// Ambient discovery cadence (random public peers dialed per round).
  util::SimDuration discovery_interval = 1 * util::kMinute;
  std::size_t discovery_dials = 2;

  /// Re-announce provider records (go-ipfs reproviding, default 12h).
  util::SimDuration reprovide_interval = 12 * util::kHour;

  /// Ambient-discovery weight (see net::Network::register_node): > 1 for
  /// stable hubs that peer discovery surfaces disproportionately often.
  double discovery_weight = 1.0;

  /// Cache + reprovide downloaded content (countermeasure 5 disables).
  bool provide_downloaded = true;
  /// Serve cached blocks to peers (TPI countermeasure disables).
  bool serve_blocks = true;

  dht::DhtConfig dht;
  bitswap::ClientConfig bitswap;
};

class IpfsNode : public net::Host {
 public:
  using FetchCallback = bitswap::BitswapClient::FetchCallback;
  /// DAG fetch result: number of blocks obtained, true if complete.
  using DagFetchCallback = std::function<void(std::size_t blocks, bool complete)>;

  IpfsNode(net::Network& network, crypto::KeyPair keys,
           const net::Address& address, const std::string& country,
           NodeConfig config, util::RngStream rng);
  ~IpfsNode() override;

  IpfsNode(const IpfsNode&) = delete;
  IpfsNode& operator=(const IpfsNode&) = delete;

  const crypto::PeerId& id() const { return id_; }
  const net::Address& address() const { return address_; }
  const NodeConfig& config() const { return config_; }
  bool online() const { return online_; }

  /// Joins the network: dials bootstrap peers, starts the DHT refresh
  /// cycle, ambient discovery, and reproviding.
  void go_online(const std::vector<crypto::PeerId>& bootstrap);

  /// Leaves the network: closes all connections, fails in-flight fetches.
  /// The blockstore survives (IPFS persists its cache across restarts).
  void go_offline();

  // --- Content API -------------------------------------------------------

  /// Adds a single block of data, pins it, and announces it in the DHT.
  cid::Cid add_bytes(util::Bytes data,
                     cid::Multicodec codec = cid::Multicodec::Raw);

  /// Imports a file as a Merkle DAG (chunked), pins all blocks, announces
  /// the root.
  dag::DagBuildResult add_file(util::BytesView data,
                               const dag::BuilderOptions& options = {});

  /// Stores and pins an existing block; announces it when `provide` is set.
  void add_block(dag::BlockPtr block, bool provide = true);

  /// Stores and pins a pre-built block set (e.g. a catalog DAG) and
  /// announces only `provide_root`.
  void add_blocks(const std::vector<dag::BlockPtr>& blocks,
                  const cid::Cid& provide_root);

  /// Fetches one block: local cache, then Bitswap broadcast, then DHT
  /// (paper Fig. 1). The retrieved block is cached and — by default —
  /// reprovided.
  void fetch(const cid::Cid& cid, FetchCallback on_done);

  /// Fetches a whole DAG: root via broadcast, children scoped to the
  /// root's session (which is why monitors only see root requests).
  void fetch_dag(const cid::Cid& root, DagFetchCallback on_done);

  /// Pins a CID so GC never evicts it.
  void pin(const cid::Cid& cid);

  // --- Subsystem access ---------------------------------------------------
  Blockstore& blockstore() { return blockstore_; }
  bitswap::BitswapEngine& engine() { return *engine_; }
  bitswap::BitswapClient& client() { return *client_; }
  dht::DhtNode& dht() { return *dht_; }
  net::Network& network() { return network_; }

  // --- net::Host ----------------------------------------------------------
  bool accept_inbound(const crypto::PeerId& from) override;
  void on_connection(net::ConnectionId conn, const crypto::PeerId& peer,
                     bool outbound) override;
  void on_disconnect(net::ConnectionId conn, const crypto::PeerId& peer) override;
  void on_message(net::ConnectionId conn, const crypto::PeerId& from,
                  const net::PayloadPtr& payload) override;

 protected:
  /// Hook for subclasses (monitors) observing connection churn.
  virtual void on_peer_connected_hook(const crypto::PeerId&) {}
  virtual void on_peer_disconnected_hook(const crypto::PeerId&) {}

 private:
  struct DagFetchState;

  void store_block(const dag::BlockPtr& block, bool provide);
  void schedule_discovery();
  void discovery_round();
  void schedule_reprovide();
  void reprovide_round();
  void fetch_dag_children(const std::shared_ptr<DagFetchState>& state,
                          const dag::BlockPtr& block);

  net::Network& network_;
  crypto::KeyPair keys_;
  crypto::PeerId id_;
  net::Address address_;
  NodeConfig config_;
  util::RngStream rng_;

  Blockstore blockstore_;
  std::unique_ptr<dht::DhtNode> dht_;
  std::unique_ptr<bitswap::BitswapEngine> engine_;
  std::unique_ptr<bitswap::BitswapClient> client_;

  /// CIDs this node announces as provider (authored + pinned + cached).
  std::vector<cid::Cid> provided_;

  sim::EventHandle discovery_timer_;
  sim::EventHandle reprovide_timer_;
  bool online_ = false;
};

}  // namespace ipfsmon::node
