#include "node/gateway.hpp"

namespace ipfsmon::node {

namespace {
NodeConfig gateway_node_config(NodeConfig config) {
  // Gateways are publicly reachable, well-connected DHT servers.
  config.nat = false;
  config.dht_server = true;
  return config;
}
}  // namespace

GatewayNode::GatewayNode(net::Network& network, crypto::KeyPair keys,
                         const net::Address& address,
                         const std::string& country, NodeConfig node_config,
                         GatewayConfig gateway_config, util::RngStream rng)
    : node_(network, std::move(keys), address, country,
            gateway_node_config(node_config), std::move(rng)),
      config_(gateway_config) {}

void GatewayNode::handle_http_request(const cid::Cid& cid,
                                      HttpCallback on_done) {
  ++http_requests_;
  const util::SimTime now = node_.network().scheduler().now();

  if (node_.blockstore().has(cid)) {
    const auto it = fresh_until_.find(cid);
    if (it != fresh_until_.end() && it->second > now) {
      ++cache_hits_;
      if (on_done) on_done(true, true);
      return;
    }
    // Stale: serve from cache but revalidate over Bitswap. The
    // revalidation bypasses the blockstore shortcut on purpose — it is the
    // network request the paper's monitors still observe for cached CIDs.
    ++cache_hits_;
    ++bitswap_fetches_;
    fresh_until_[cid] = now + config_.cache_ttl;
    node_.client().fetch(cid, bitswap::kNoSession, nullptr);
    if (on_done) on_done(true, true);
    return;
  }

  ++bitswap_fetches_;
  node_.fetch(cid, [this, cid, on_done = std::move(on_done)](
                       dag::BlockPtr block) {
    if (block != nullptr) {
      fresh_until_[cid] =
          node_.network().scheduler().now() + config_.cache_ttl;
    }
    if (on_done) on_done(block != nullptr, false);
  });
}

}  // namespace ipfsmon::node
