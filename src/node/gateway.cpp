#include "node/gateway.hpp"

namespace ipfsmon::node {

namespace {
NodeConfig gateway_node_config(NodeConfig config) {
  // Gateways are publicly reachable, well-connected DHT servers.
  config.nat = false;
  config.dht_server = true;
  return config;
}
}  // namespace

GatewayNode::GatewayNode(net::Network& network, crypto::KeyPair keys,
                         const net::Address& address,
                         const std::string& country, NodeConfig node_config,
                         GatewayConfig gateway_config, util::RngStream rng)
    : node_(network, std::move(keys), address, country,
            gateway_node_config(node_config), std::move(rng)),
      config_(gateway_config) {}

void GatewayNode::handle_http_request(const cid::Cid& cid,
                                      HttpCallback on_done) {
  ++http_requests_;
  const util::SimTime now = node_.network().scheduler().now();

  // Root of the request's trace tree: everything the gateway triggers —
  // Bitswap fetch, DHT lookup hops, monitor captures — parents here.
  auto& tracer = node_.network().obs().tracer;
  obs::Span span = tracer.start_trace("gateway.request");
  span.set_attr("cid", cid.short_hex());

  if (node_.blockstore().has(cid)) {
    const auto it = fresh_until_.find(cid);
    if (it != fresh_until_.end() && it->second > now) {
      ++cache_hits_;
      span.set_attr("cache", "hit");
      if (on_done) on_done(true, true);
      return;
    }
    // Stale: serve from cache but revalidate over Bitswap. The
    // revalidation bypasses the blockstore shortcut on purpose — it is the
    // network request the paper's monitors still observe for cached CIDs.
    ++cache_hits_;
    ++bitswap_fetches_;
    fresh_until_[cid] = now + config_.cache_ttl;
    span.set_attr("cache", "revalidate");
    {
      obs::ScopedContext scope(tracer, span.context());
      node_.client().fetch(cid, bitswap::kNoSession, nullptr);
    }
    if (on_done) on_done(true, true);
    return;
  }

  ++bitswap_fetches_;
  span.set_attr("cache", "miss");
  // The span must outlive this frame (the fetch completes asynchronously);
  // park it in the completion callback.
  auto shared_span = std::make_shared<obs::Span>(std::move(span));
  obs::ScopedContext scope(tracer, shared_span->context());
  node_.fetch(cid, [this, cid, shared_span, on_done = std::move(on_done)](
                       dag::BlockPtr block) {
    if (block != nullptr) {
      fresh_until_[cid] =
          node_.network().scheduler().now() + config_.cache_ttl;
    }
    shared_span->set_attr("ok", block != nullptr ? "1" : "0");
    shared_span->end();
    if (on_done) on_done(block != nullptr, false);
  });
}

}  // namespace ipfsmon::node
