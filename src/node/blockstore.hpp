// The local block cache (paper Sec. III-C): nodes store downloaded blocks
// (default cap 10 GB in go-ipfs), garbage-collect least-recently-used
// unpinned blocks when over capacity, and users may pin CIDs to exempt them.
// This cooperative caching is the mechanism the TPI privacy attack probes.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "dag/block.hpp"
#include "util/time.hpp"

namespace ipfsmon::node {

class Blockstore {
 public:
  /// `capacity_bytes` of 0 means unbounded.
  explicit Blockstore(std::size_t capacity_bytes = 10ull * 1024 * 1024 * 1024);

  /// Stores a block (idempotent). May evict LRU unpinned blocks to make
  /// room. Returns false if the block alone exceeds capacity.
  bool put(dag::BlockPtr block);

  /// Fetches a block and refreshes its recency; nullptr if absent.
  dag::BlockPtr get(const cid::Cid& cid);

  /// Presence check without recency side effects.
  bool has(const cid::Cid& cid) const;

  /// Pins a CID (need not be present yet; applies when stored).
  void pin(const cid::Cid& cid);
  void unpin(const cid::Cid& cid);
  bool is_pinned(const cid::Cid& cid) const;

  /// User-level purge (the manual TPI countermeasure: "remove problematic
  /// items from the cache"). Removes even pinned blocks.
  void remove(const cid::Cid& cid);

  std::size_t size_bytes() const { return size_bytes_; }
  std::size_t block_count() const { return entries_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  std::vector<cid::Cid> pinned_cids() const;

  /// All stored CIDs (the enumeration a provider must hash through to
  /// answer salted-CID requests — the paper's DoS-amplification concern).
  std::vector<cid::Cid> all_cids() const;

 private:
  void evict_until_fits(std::size_t incoming);

  struct Entry {
    dag::BlockPtr block;
    std::list<cid::Cid>::iterator lru_position;
  };

  std::size_t capacity_;
  std::size_t size_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::unordered_map<cid::Cid, Entry> entries_;
  std::list<cid::Cid> lru_;  // most recent at front
  std::unordered_set<cid::Cid> pins_;
};

}  // namespace ipfsmon::node
