#include "node/blockstore.hpp"

namespace ipfsmon::node {

Blockstore::Blockstore(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool Blockstore::put(dag::BlockPtr block) {
  if (block == nullptr) return false;
  const cid::Cid& cid = block->id();
  const auto it = entries_.find(cid);
  if (it != entries_.end()) {
    // Refresh recency only.
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return true;
  }
  const std::size_t incoming = block->size();
  if (capacity_ != 0 && incoming > capacity_) return false;
  evict_until_fits(incoming);
  lru_.push_front(cid);
  entries_[cid] = Entry{std::move(block), lru_.begin()};
  size_bytes_ += incoming;
  return true;
}

void Blockstore::evict_until_fits(std::size_t incoming) {
  if (capacity_ == 0) return;
  // Walk from the LRU end, skipping pinned blocks.
  auto it = lru_.end();
  while (size_bytes_ + incoming > capacity_ && it != lru_.begin()) {
    --it;
    if (pins_.count(*it) != 0) continue;
    const auto eit = entries_.find(*it);
    size_bytes_ -= eit->second.block->size();
    ++evictions_;
    entries_.erase(eit);
    it = lru_.erase(it);
  }
}

dag::BlockPtr Blockstore::get(const cid::Cid& cid) {
  const auto it = entries_.find(cid);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  return it->second.block;
}

bool Blockstore::has(const cid::Cid& cid) const {
  return entries_.count(cid) != 0;
}

void Blockstore::pin(const cid::Cid& cid) { pins_.insert(cid); }

void Blockstore::unpin(const cid::Cid& cid) { pins_.erase(cid); }

bool Blockstore::is_pinned(const cid::Cid& cid) const {
  return pins_.count(cid) != 0;
}

void Blockstore::remove(const cid::Cid& cid) {
  const auto it = entries_.find(cid);
  if (it == entries_.end()) return;
  size_bytes_ -= it->second.block->size();
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
}

std::vector<cid::Cid> Blockstore::pinned_cids() const {
  return {pins_.begin(), pins_.end()};
}

std::vector<cid::Cid> Blockstore::all_cids() const {
  std::vector<cid::Cid> out;
  out.reserve(entries_.size());
  for (const auto& [cid, entry] : entries_) out.push_back(cid);
  return out;
}

}  // namespace ipfsmon::node
