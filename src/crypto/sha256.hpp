// SHA-256 (FIPS 180-4), implemented from scratch. Used for content
// addressing (CIDs) and peer identity derivation.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace ipfsmon::crypto {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input.
  void update(util::BytesView data);

  /// Finalizes and returns the digest. The context must not be reused
  /// afterwards (construct a fresh one).
  Sha256Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot convenience.
Sha256Digest sha256(util::BytesView data);

/// One-shot over a string's raw characters.
Sha256Digest sha256_str(std::string_view s);

/// Digest as a Bytes buffer.
util::Bytes sha256_bytes(util::BytesView data);

}  // namespace ipfsmon::crypto
