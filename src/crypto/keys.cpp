#include "crypto/keys.hpp"

#include "util/base58.hpp"

namespace ipfsmon::crypto {

PeerId PeerId::from_public_key(util::BytesView public_key) {
  return PeerId(sha256(public_key));
}

std::optional<PeerId> PeerId::from_base58(std::string_view text) {
  const auto bytes = util::base58_decode(text);
  if (!bytes || bytes->size() != 34) return std::nullopt;
  if ((*bytes)[0] != 0x12 || (*bytes)[1] != 0x20) return std::nullopt;
  Digest digest{};
  std::copy(bytes->begin() + 2, bytes->end(), digest.begin());
  return PeerId(digest);
}

std::string PeerId::to_base58() const {
  util::Bytes multihash;
  multihash.reserve(34);
  multihash.push_back(0x12);  // sha2-256
  multihash.push_back(0x20);  // 32-byte digest
  multihash.insert(multihash.end(), digest_.begin(), digest_.end());
  return util::base58_encode(multihash);
}

std::string PeerId::short_hex() const {
  return util::to_hex(util::BytesView(digest_.data(), 6));
}

double PeerId::as_unit_interval() const {
  std::uint64_t top = 0;
  for (int i = 0; i < 8; ++i) {
    top = (top << 8) | digest_[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(top >> 11) * 0x1.0p-53;
}

KeyPair KeyPair::generate(util::RngStream& rng) {
  KeyPair kp;
  kp.public_key.resize(32);
  kp.private_key.resize(32);
  rng.fill_bytes(kp.public_key.data(), kp.public_key.size());
  rng.fill_bytes(kp.private_key.data(), kp.private_key.size());
  return kp;
}

PeerId KeyPair::peer_id() const {
  return PeerId::from_public_key(public_key);
}

}  // namespace ipfsmon::crypto
