// Peer identity. IPFS nodes are identified by the hash of their public key,
// H(k_pub). The simulator generates synthetic Ed25519-shaped keypairs (random
// 32-byte keys) — only the *identity derivation* matters for the monitoring
// methodology, not the signature math, which no studied mechanism exercises.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace ipfsmon::crypto {

/// A 256-bit peer identifier: the SHA-256 digest of the node's public key.
/// Doubles as the node's Kademlia ID (XOR metric operates on these bytes).
class PeerId {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  PeerId() = default;
  explicit PeerId(const Digest& digest) : digest_(digest) {}

  /// Derives the PeerId for a public key.
  static PeerId from_public_key(util::BytesView public_key);

  /// Parses the base58btc multihash string form ("Qm...").
  static std::optional<PeerId> from_base58(std::string_view text);

  const Digest& digest() const { return digest_; }

  /// Multihash-wrapped (0x12 0x20 <digest>) base58btc form, the familiar
  /// "Qm..." representation.
  std::string to_base58() const;

  /// Short hex prefix for logs.
  std::string short_hex() const;

  /// Interprets the leading 8 bytes as a big-endian fraction of the ID
  /// space, mapped to [0, 1). Used for uniformity QQ plots (paper Fig. 3).
  double as_unit_interval() const;

  auto operator<=>(const PeerId&) const = default;

 private:
  Digest digest_{};
};

/// A synthetic keypair: 32 random bytes of "public key" material (and the
/// matching private half, unused by the protocols we model).
struct KeyPair {
  util::Bytes public_key;
  util::Bytes private_key;

  /// Generates a fresh keypair from the given stream.
  static KeyPair generate(util::RngStream& rng);

  PeerId peer_id() const;
};

}  // namespace ipfsmon::crypto

namespace std {
template <>
struct hash<ipfsmon::crypto::PeerId> {
  size_t operator()(const ipfsmon::crypto::PeerId& id) const noexcept {
    // The digest is already uniformly distributed; take the first 8 bytes.
    size_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h = (h << 8) | id.digest()[static_cast<size_t>(i)];
    }
    return h;
  }
};
}  // namespace std
