// Kolmogorov-Smirnov statistics: goodness-of-fit against the uniform
// distribution (Fig. 3's uniformity check) and two-sample comparison.
#pragma once

#include <vector>

namespace ipfsmon::analysis {

/// One-sample KS statistic of `samples` (values in [0, 1]) against U(0, 1).
double ks_statistic_uniform(std::vector<double> samples);

/// Two-sample KS statistic.
double ks_statistic_two_sample(std::vector<double> a, std::vector<double> b);

/// Asymptotic p-value for a one-sample KS statistic with n samples
/// (Kolmogorov distribution tail sum).
double ks_p_value(double statistic, std::size_t n);

}  // namespace ipfsmon::analysis
