#include "analysis/qq.hpp"

#include <algorithm>
#include <cmath>

namespace ipfsmon::analysis {

std::vector<QqPoint> qq_against_uniform(
    const std::vector<crypto::PeerId>& peers, std::size_t points) {
  std::vector<QqPoint> out;
  if (peers.empty() || points == 0) return out;
  std::vector<double> values;
  values.reserve(peers.size());
  for (const auto& p : peers) values.push_back(p.as_unit_interval());
  std::sort(values.begin(), values.end());

  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(points);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size()));
    out.push_back(QqPoint{q, values[std::min(idx, values.size() - 1)]});
  }
  return out;
}

double qq_max_deviation(const std::vector<QqPoint>& points) {
  double d = 0.0;
  for (const auto& p : points) {
    d = std::max(d, std::abs(p.empirical - p.theoretical));
  }
  return d;
}

}  // namespace ipfsmon::analysis
