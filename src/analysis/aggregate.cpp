#include "analysis/aggregate.hpp"

#include <algorithm>
#include <unordered_map>

#include "cid/multicodec.hpp"

namespace ipfsmon::analysis {

namespace {
std::vector<ShareRow> to_share_rows(
    std::unordered_map<std::string, std::uint64_t> counts) {
  std::uint64_t total = 0;
  for (const auto& [label, count] : counts) total += count;
  std::vector<ShareRow> rows;
  rows.reserve(counts.size());
  for (auto& [label, count] : counts) {
    const double share = total == 0 ? 0.0
                                    : 100.0 * static_cast<double>(count) /
                                          static_cast<double>(total);
    rows.push_back(ShareRow{label, count, share});
  }
  std::sort(rows.begin(), rows.end(), [](const ShareRow& a, const ShareRow& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.label < b.label;
  });
  return rows;
}
}  // namespace

ShareAccumulator::ShareAccumulator(
    std::function<std::string(const trace::TraceEntry&)> group)
    : group_(std::move(group)) {}

void ShareAccumulator::add(const trace::TraceEntry& entry) {
  if (!entry.is_request()) return;
  ++counts_[group_(entry)];
}

std::vector<ShareRow> ShareAccumulator::rows() const {
  return to_share_rows(counts_);
}

std::vector<ShareRow> share_by(
    const trace::Trace& trace,
    const std::function<std::string(const trace::TraceEntry&)>& group) {
  ShareAccumulator acc(group);
  for (const auto& e : trace.entries()) acc.add(e);
  return acc.rows();
}

std::vector<ShareRow> share_by_codec(const trace::Trace& raw) {
  return share_by(raw, [](const trace::TraceEntry& e) {
    return std::string(cid::multicodec_name(e.cid.codec()));
  });
}

std::vector<ShareRow> share_by_country(const trace::Trace& deduplicated,
                                       const net::GeoDatabase& geo) {
  return share_by(deduplicated, [&geo](const trace::TraceEntry& e) {
    return geo.lookup(e.address);
  });
}

std::vector<TypeBucket> requests_by_type_over_time(const trace::Trace& trace,
                                                   util::SimDuration bucket) {
  std::map<util::SimTime, TypeBucket> buckets;
  for (const auto& e : trace.entries()) {
    if (!e.is_request()) continue;
    const util::SimTime start = (e.timestamp / bucket) * bucket;
    TypeBucket& b = buckets[start];
    b.bucket_start = start;
    if (e.type == bitswap::WantType::WantBlock) {
      ++b.want_block;
    } else {
      ++b.want_have;
    }
  }
  std::vector<TypeBucket> out;
  out.reserve(buckets.size());
  for (const auto& [start, b] : buckets) out.push_back(b);
  return out;
}

std::vector<GroupRateBucket> request_rate_by_group(
    const trace::Trace& deduplicated,
    const std::function<std::string(const crypto::PeerId&)>& group_of,
    util::SimDuration bucket) {
  std::map<util::SimTime, std::map<std::string, std::uint64_t>> counts;
  for (const auto& e : deduplicated.entries()) {
    if (!e.is_request()) continue;
    const util::SimTime start = (e.timestamp / bucket) * bucket;
    ++counts[start][group_of(e.peer)];
  }
  const double bucket_seconds = util::to_seconds(bucket);
  std::vector<GroupRateBucket> out;
  out.reserve(counts.size());
  for (const auto& [start, groups] : counts) {
    GroupRateBucket b;
    b.bucket_start = start;
    for (const auto& [group, count] : groups) {
      b.rate_per_second[group] =
          static_cast<double>(count) / bucket_seconds;
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<std::pair<crypto::PeerId, std::uint64_t>> requests_per_peer(
    const trace::Trace& trace) {
  std::unordered_map<crypto::PeerId, std::uint64_t> counts;
  for (const auto& e : trace.entries()) {
    if (!e.is_request()) continue;
    ++counts[e.peer];
  }
  std::vector<std::pair<crypto::PeerId, std::uint64_t>> out(counts.begin(),
                                                            counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace ipfsmon::analysis
