// Discrete power-law fitting and hypothesis testing following Clauset,
// Shalizi & Newman (SIAM Review 2009) — the method the paper applies to its
// popularity scores and uses to REJECT the power-law hypothesis (p < 0.1
// regardless of x_min; paper Sec. V-E).
//
//  * α is estimated by (approximate) discrete MLE for each candidate x_min;
//  * x_min minimizes the KS distance between the empirical tail and the
//    fitted model;
//  * the p-value comes from a semiparametric bootstrap: synthetic datasets
//    combine the empirical body (below x_min) with power-law tails, are
//    re-fitted, and compared by KS distance.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ipfsmon::analysis {

struct PowerLawFit {
  double alpha = 0.0;
  double xmin = 1.0;
  double ks_distance = 0.0;
  std::size_t tail_size = 0;  // samples ≥ xmin
};

struct PowerLawTest {
  PowerLawFit fit;
  double p_value = 0.0;
  std::size_t bootstrap_rounds = 0;
  /// CSN convention: reject the power-law hypothesis when p < 0.1.
  bool rejected() const { return p_value < 0.1; }
};

/// Hurwitz zeta ζ(s, a) via Euler-Maclaurin; needs s > 1, a > 0.
double hurwitz_zeta(double s, double a);

/// MLE of α for a discrete power law with known xmin (approximate discrete
/// MLE, CSN eq. 3.7).
double fit_alpha_discrete(const std::vector<double>& samples, double xmin);

/// KS distance between the empirical tail (≥ xmin) and the fitted discrete
/// power law.
double ks_distance_powerlaw(const std::vector<double>& samples, double xmin,
                            double alpha);

/// Full fit: scans candidate xmin values (all distinct sample values, or a
/// capped subset for large inputs), picks the KS-minimizing one.
PowerLawFit fit_power_law(const std::vector<double>& samples,
                          std::size_t max_xmin_candidates = 50);

/// Goodness-of-fit test with `bootstrap_rounds` synthetic datasets.
PowerLawTest test_power_law(const std::vector<double>& samples,
                            util::RngStream& rng,
                            std::size_t bootstrap_rounds = 100,
                            std::size_t max_xmin_candidates = 50);

/// Samples one value from a discrete power law (tail ≥ xmin) by inverse
/// transform (CSN appendix D approximation).
double sample_discrete_power_law(util::RngStream& rng, double xmin,
                                 double alpha);

}  // namespace ipfsmon::analysis
