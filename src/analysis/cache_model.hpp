// LRU cache-hit-ratio model (Che's approximation, as refined by Fricker,
// Robert & Roberts — the paper's ref. [28]). The paper motivates measuring
// content popularity precisely because it is "an important building block
// for the formal analysis of cache hit ratios (especially relevant for
// IPFS gateways)". This module closes that loop: feed measured popularity
// (e.g. RRP scores) into the model and predict gateway cache behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipfsmon::analysis {

struct CachePrediction {
  /// Che's characteristic time T_C (in request-count units).
  double characteristic_time = 0.0;
  /// Predicted overall hit ratio under IRM + LRU.
  double hit_ratio = 0.0;
  /// Per-item hit probabilities, aligned with the input weights.
  std::vector<double> per_item_hit;
};

/// Predicts the steady-state hit ratio of an LRU cache holding
/// `cache_items` objects under the Independent Reference Model, where item
/// i is requested with (unnormalized) rate `weights[i]`.
///
/// Che's approximation: the characteristic time T solves
///     Σ_i (1 − e^{−λ_i T}) = C,
/// and item i's hit probability is 1 − e^{−λ_i T}. The equation is solved
/// by bisection (the left side is strictly increasing in T).
CachePrediction che_hit_ratio(const std::vector<double>& weights,
                              std::size_t cache_items);

/// Simulates an LRU cache of `cache_items` entries under the same IRM
/// workload for `requests` draws — the ground truth Che approximates.
/// Deterministic given `seed`.
double simulate_lru_hit_ratio(const std::vector<double>& weights,
                              std::size_t cache_items, std::size_t requests,
                              std::uint64_t seed);

}  // namespace ipfsmon::analysis
