#include "analysis/popularity.hpp"

#include <algorithm>
#include <unordered_set>

namespace ipfsmon::analysis {

namespace {
std::vector<std::pair<cid::Cid, std::uint64_t>> top_of(
    const std::unordered_map<cid::Cid, std::uint64_t>& scores, std::size_t k) {
  std::vector<std::pair<cid::Cid, std::uint64_t>> out(scores.begin(),
                                                      scores.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tiebreak
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<double> values_of(
    const std::unordered_map<cid::Cid, std::uint64_t>& scores) {
  std::vector<double> out;
  out.reserve(scores.size());
  for (const auto& [cid, count] : scores) {
    out.push_back(static_cast<double>(count));
  }
  return out;
}
}  // namespace

std::vector<double> PopularityScores::rrp_values() const {
  return values_of(rrp);
}

std::vector<double> PopularityScores::urp_values() const {
  return values_of(urp);
}

std::vector<std::pair<cid::Cid, std::uint64_t>> PopularityScores::top_rrp(
    std::size_t k) const {
  return top_of(rrp, k);
}

std::vector<std::pair<cid::Cid, std::uint64_t>> PopularityScores::top_urp(
    std::size_t k) const {
  return top_of(urp, k);
}

double PopularityScores::single_requester_share() const {
  if (urp.empty()) return 0.0;
  std::size_t singles = 0;
  for (const auto& [cid, count] : urp) {
    if (count == 1) ++singles;
  }
  return static_cast<double>(singles) / static_cast<double>(urp.size());
}

PopularityAccumulator::PopularityAccumulator(bool clean_only)
    : clean_only_(clean_only) {}

void PopularityAccumulator::add(const trace::TraceEntry& e) {
  if (!e.is_request()) return;
  if (clean_only_ && !e.is_clean()) return;
  ++rrp_[e.cid];
  requesters_[e.cid].insert(e.peer);
}

PopularityScores PopularityAccumulator::scores() const {
  PopularityScores scores;
  scores.rrp = rrp_;
  for (const auto& [cid, peers] : requesters_) {
    scores.urp[cid] = peers.size();
  }
  return scores;
}

PopularityScores compute_popularity(const trace::Trace& trace,
                                    bool clean_only) {
  PopularityAccumulator acc(clean_only);
  for (const auto& e : trace.entries()) acc.add(e);
  return acc.scores();
}

}  // namespace ipfsmon::analysis
