#include "analysis/popularity.hpp"

#include <algorithm>
#include <unordered_set>

namespace ipfsmon::analysis {

namespace {
std::vector<std::pair<cid::Cid, std::uint64_t>> top_of(
    const std::unordered_map<cid::Cid, std::uint64_t>& scores, std::size_t k) {
  std::vector<std::pair<cid::Cid, std::uint64_t>> out(scores.begin(),
                                                      scores.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tiebreak
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<double> values_of(
    const std::unordered_map<cid::Cid, std::uint64_t>& scores) {
  std::vector<double> out;
  out.reserve(scores.size());
  for (const auto& [cid, count] : scores) {
    out.push_back(static_cast<double>(count));
  }
  return out;
}
}  // namespace

std::vector<double> PopularityScores::rrp_values() const {
  return values_of(rrp);
}

std::vector<double> PopularityScores::urp_values() const {
  return values_of(urp);
}

std::vector<std::pair<cid::Cid, std::uint64_t>> PopularityScores::top_rrp(
    std::size_t k) const {
  return top_of(rrp, k);
}

std::vector<std::pair<cid::Cid, std::uint64_t>> PopularityScores::top_urp(
    std::size_t k) const {
  return top_of(urp, k);
}

double PopularityScores::single_requester_share() const {
  if (urp.empty()) return 0.0;
  std::size_t singles = 0;
  for (const auto& [cid, count] : urp) {
    if (count == 1) ++singles;
  }
  return static_cast<double>(singles) / static_cast<double>(urp.size());
}

PopularityScores compute_popularity(const trace::Trace& trace,
                                    bool clean_only) {
  PopularityScores scores;
  std::unordered_map<cid::Cid, std::unordered_set<crypto::PeerId>> requesters;
  for (const auto& e : trace.entries()) {
    if (!e.is_request()) continue;
    if (clean_only && !e.is_clean()) continue;
    ++scores.rrp[e.cid];
    requesters[e.cid].insert(e.peer);
  }
  for (const auto& [cid, peers] : requesters) {
    scores.urp[cid] = peers.size();
  }
  return scores;
}

}  // namespace ipfsmon::analysis
