#include "analysis/ecdf.hpp"

#include <algorithm>
#include <stdexcept>

namespace ipfsmon::analysis {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("Ecdf::quantile: empty");
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_.size()));
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double Ecdf::min() const {
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Ecdf::max() const {
  return sorted_.empty() ? 0.0 : sorted_.back();
}

std::vector<std::pair<double, double>> Ecdf::points() const {
  std::vector<std::pair<double, double>> out;
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) /
                                     static_cast<double>(sorted_.size()));
  }
  return out;
}

std::vector<std::pair<double, double>> Ecdf::points(
    std::size_t max_points) const {
  const auto all = points();
  if (all.size() <= max_points || max_points == 0) return all;
  std::vector<std::pair<double, double>> out;
  out.reserve(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    const std::size_t idx = i * (all.size() - 1) / (max_points - 1);
    out.push_back(all[idx]);
  }
  return out;
}

}  // namespace ipfsmon::analysis
