#include "analysis/estimators.hpp"

#include <cmath>
#include <unordered_set>

namespace ipfsmon::analysis {

std::optional<double> estimate_pairwise(std::size_t set1, std::size_t set2,
                                        std::size_t intersection) {
  if (intersection == 0) return std::nullopt;
  return static_cast<double>(set1) * static_cast<double>(set2) /
         static_cast<double>(intersection);
}

std::optional<double> estimate_pairwise(
    const std::vector<crypto::PeerId>& peers1,
    const std::vector<crypto::PeerId>& peers2) {
  const std::unordered_set<crypto::PeerId> s1(peers1.begin(), peers1.end());
  std::size_t intersection = 0;
  std::unordered_set<crypto::PeerId> s2;
  for (const auto& p : peers2) {
    if (!s2.insert(p).second) continue;
    if (s1.count(p) != 0) ++intersection;
  }
  return estimate_pairwise(s1.size(), s2.size(), intersection);
}

std::optional<double> estimate_committee(std::size_t m, std::size_t r,
                                         double w) {
  return estimate_committee(static_cast<double>(m), r, w);
}

std::optional<double> estimate_committee(double m, std::size_t r, double w) {
  if (m <= 0.0 || r == 0 || w <= 0.0) return std::nullopt;
  const double md = m;
  const double rd = static_cast<double>(r);
  // No overlap observed (m == r·w): the MLE diverges.
  if (md >= rd * w - 1e-9) return std::nullopt;

  const auto f = [md, rd, w](double n) {
    return n - n * std::pow(1.0 - md / n, 1.0 / rd) - w;
  };
  // f(m+) = m − w > 0 (each monitor's draw is a subset of the union);
  // f(∞) → m/r − w < 0. Bisect the sign change.
  double lo = md * (1.0 + 1e-9);
  if (f(lo) <= 0.0) return lo;
  double hi = md * 2.0;
  int expansions = 0;
  while (f(hi) > 0.0) {
    hi *= 2.0;
    if (++expansions > 64) return std::nullopt;  // numerically no root
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double EstimateSeries::mean() const {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double EstimateSeries::stddev() const {
  if (values.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

SnapshotEstimates estimate_over_snapshots(
    const std::vector<std::vector<std::vector<crypto::PeerId>>>& snapshots) {
  SnapshotEstimates out;
  if (snapshots.empty()) return out;
  const std::size_t monitors = snapshots.front().size();
  out.mean_set_sizes.assign(monitors, 0.0);
  double union_acc = 0.0;
  std::size_t counted = 0;

  for (const auto& snapshot : snapshots) {
    if (snapshot.size() != monitors || monitors == 0) continue;
    ++counted;
    std::unordered_set<crypto::PeerId> union_set;
    double mean_w = 0.0;
    for (std::size_t i = 0; i < monitors; ++i) {
      union_set.insert(snapshot[i].begin(), snapshot[i].end());
      out.mean_set_sizes[i] += static_cast<double>(snapshot[i].size());
      mean_w += static_cast<double>(snapshot[i].size());
    }
    mean_w /= static_cast<double>(monitors);
    union_acc += static_cast<double>(union_set.size());

    if (monitors >= 2) {
      if (const auto est = estimate_pairwise(snapshot[0], snapshot[1])) {
        out.pairwise.values.push_back(*est);
      }
    }
    if (const auto est =
            estimate_committee(union_set.size(), monitors, mean_w)) {
      out.committee.values.push_back(*est);
    }
  }
  if (counted > 0) {
    out.mean_union_size = union_acc / static_cast<double>(counted);
    for (auto& v : out.mean_set_sizes) v /= static_cast<double>(counted);
  }
  return out;
}

double measure_session_overlap(
    const std::vector<std::vector<std::vector<crypto::PeerId>>>& snapshots) {
  if (snapshots.size() < 2) return 1.0;
  const std::size_t monitors = snapshots.front().size();
  double acc = 0.0;
  std::size_t pairs = 0;
  for (std::size_t t = 0; t + 1 < snapshots.size(); ++t) {
    if (snapshots[t].size() != monitors ||
        snapshots[t + 1].size() != monitors) {
      continue;
    }
    for (std::size_t i = 0; i < monitors; ++i) {
      if (snapshots[t][i].empty() && snapshots[t + 1][i].empty()) continue;
      acc += intersection_over_union(snapshots[t][i], snapshots[t + 1][i]);
      ++pairs;
    }
  }
  return pairs == 0 ? 1.0 : acc / static_cast<double>(pairs);
}

std::optional<double> estimate_pairwise_churned(
    const std::vector<crypto::PeerId>& peers1,
    const std::vector<crypto::PeerId>& peers2, double rho) {
  const auto raw = estimate_pairwise(peers1, peers2);
  if (!raw) return std::nullopt;
  return *raw * rho;
}

ChurnedSnapshotEstimates estimate_over_snapshots_churned(
    const std::vector<std::vector<std::vector<crypto::PeerId>>>& snapshots) {
  ChurnedSnapshotEstimates out;
  out.raw = estimate_over_snapshots(snapshots);
  out.session_overlap = measure_session_overlap(snapshots);
  const double rho = out.session_overlap;

  out.pairwise_adjusted.values.reserve(out.raw.pairwise.values.size());
  for (double v : out.raw.pairwise.values) {
    out.pairwise_adjusted.values.push_back(v * rho);
  }

  const std::size_t monitors =
      snapshots.empty() ? 0 : snapshots.front().size();
  for (const auto& snapshot : snapshots) {
    if (snapshot.size() != monitors || monitors == 0) continue;
    std::unordered_set<crypto::PeerId> union_set;
    double mean_w = 0.0;
    for (const auto& peers : snapshot) {
      union_set.insert(peers.begin(), peers.end());
      mean_w += static_cast<double>(peers.size());
    }
    mean_w /= static_cast<double>(monitors);
    if (const auto est = estimate_committee(
            rho * static_cast<double>(union_set.size()), monitors,
            rho * mean_w)) {
      out.committee_adjusted.values.push_back(*est);
    }
  }
  return out;
}

double intersection_over_union(const std::vector<crypto::PeerId>& a,
                               const std::vector<crypto::PeerId>& b) {
  const std::unordered_set<crypto::PeerId> sa(a.begin(), a.end());
  const std::unordered_set<crypto::PeerId> sb(b.begin(), b.end());
  std::size_t intersection = 0;
  for (const auto& p : sb) {
    if (sa.count(p) != 0) ++intersection;
  }
  const std::size_t union_size = sa.size() + sb.size() - intersection;
  return union_size == 0 ? 0.0
                         : static_cast<double>(intersection) /
                               static_cast<double>(union_size);
}

}  // namespace ipfsmon::analysis
