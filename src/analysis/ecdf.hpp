// Empirical cumulative distribution functions (paper Fig. 5 plots ECDFs of
// the two popularity scores).
#pragma once

#include <cstdint>
#include <vector>

namespace ipfsmon::analysis {

class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// F(x) = share of samples ≤ x.
  double at(double x) const;

  /// Smallest sample v with F(v) ≥ q (q in [0, 1]).
  double quantile(double q) const;

  std::size_t sample_count() const { return sorted_.size(); }
  double min() const;
  double max() const;

  /// (x, F(x)) pairs at every distinct sample value — the plot series.
  std::vector<std::pair<double, double>> points() const;

  /// Downsampled series with at most `max_points` rows (for table output).
  std::vector<std::pair<double, double>> points(std::size_t max_points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace ipfsmon::analysis
