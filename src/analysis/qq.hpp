// Quantile-quantile comparison of peer-ID positions against the uniform
// distribution (paper Fig. 3): if monitors' peers are an unbiased draw from
// the ID space, the QQ curve hugs the diagonal.
#pragma once

#include <vector>

#include "crypto/keys.hpp"

namespace ipfsmon::analysis {

struct QqPoint {
  double theoretical = 0.0;  // uniform quantile
  double empirical = 0.0;    // observed ID quantile (IDs mapped to [0,1))
};

/// QQ points for a peer set vs U(0,1), sampled at `points` quantiles.
std::vector<QqPoint> qq_against_uniform(
    const std::vector<crypto::PeerId>& peers, std::size_t points = 64);

/// Max |empirical − theoretical| over the QQ curve — a quick straightness
/// score (equals the KS statistic at the sampled quantiles).
double qq_max_deviation(const std::vector<QqPoint>& points);

}  // namespace ipfsmon::analysis
