// Network-size estimation from monitor peer sets (paper Sec. IV-C).
//
// Eq. (1): two monitors, hypergeometric capture-recapture MLE
//     N̂ = |P_m1|·|P_m2| / |P_m1 ∩ P_m2|.
//
// Eq. (3): r monitors, committee-occupancy (coupon collector with group
// drawings) MLE — solve  N − N·(1 − m/N)^{1/r} − w = 0  for N, where m is
// the union size and w the (mean) per-monitor peer count.
#pragma once

#include <optional>
#include <vector>

#include "crypto/keys.hpp"

namespace ipfsmon::analysis {

/// Eq. (1). Returns nullopt when the intersection is empty (estimate
/// undefined / infinite).
std::optional<double> estimate_pairwise(std::size_t set1, std::size_t set2,
                                        std::size_t intersection);

/// Convenience over raw peer sets.
std::optional<double> estimate_pairwise(
    const std::vector<crypto::PeerId>& peers1,
    const std::vector<crypto::PeerId>& peers2);

/// Eq. (3): numerically solves for N given union size `m`, monitor count
/// `r`, and per-monitor draw size `w`. Returns nullopt when no finite root
/// exists (m ≥ r·w means zero observed overlap).
std::optional<double> estimate_committee(std::size_t m, std::size_t r,
                                         double w);

/// Summary over a series of per-snapshot estimates.
struct EstimateSeries {
  std::vector<double> values;

  double mean() const;
  double stddev() const;  // sample standard deviation
  bool empty() const { return values.empty(); }
};

/// Applies both estimators to matched per-monitor snapshots: element i of
/// each inner vector is monitor i's peer set at snapshot t. Snapshots where
/// an estimator is undefined are skipped.
struct SnapshotEstimates {
  EstimateSeries pairwise;   // eq. (1), first two monitors
  EstimateSeries committee;  // eq. (3), all monitors
  double mean_union_size = 0.0;
  std::vector<double> mean_set_sizes;  // per monitor
};

SnapshotEstimates estimate_over_snapshots(
    const std::vector<std::vector<std::vector<crypto::PeerId>>>& snapshots);

/// Intersection-over-union of two peer sets (the paper reports >70% IoU of
/// Bitswap-active peers between its two monitors).
double intersection_over_union(const std::vector<crypto::PeerId>& a,
                               const std::vector<crypto::PeerId>& b);

}  // namespace ipfsmon::analysis
