// Network-size estimation from monitor peer sets (paper Sec. IV-C).
//
// Eq. (1): two monitors, hypergeometric capture-recapture MLE
//     N̂ = |P_m1|·|P_m2| / |P_m1 ∩ P_m2|.
//
// Eq. (3): r monitors, committee-occupancy (coupon collector with group
// drawings) MLE — solve  N − N·(1 − m/N)^{1/r} − w = 0  for N, where m is
// the union size and w the (mean) per-monitor peer count.
#pragma once

#include <optional>
#include <vector>

#include "crypto/keys.hpp"

namespace ipfsmon::analysis {

/// Eq. (1). Returns nullopt when the intersection is empty (estimate
/// undefined / infinite).
std::optional<double> estimate_pairwise(std::size_t set1, std::size_t set2,
                                        std::size_t intersection);

/// Convenience over raw peer sets.
std::optional<double> estimate_pairwise(
    const std::vector<crypto::PeerId>& peers1,
    const std::vector<crypto::PeerId>& peers2);

/// Eq. (3): numerically solves for N given union size `m`, monitor count
/// `r`, and per-monitor draw size `w`. Returns nullopt when no finite root
/// exists (m ≥ r·w means zero observed overlap).
std::optional<double> estimate_committee(std::size_t m, std::size_t r,
                                         double w);

/// Summary over a series of per-snapshot estimates.
struct EstimateSeries {
  std::vector<double> values;

  double mean() const;
  double stddev() const;  // sample standard deviation
  bool empty() const { return values.empty(); }
};

/// Applies both estimators to matched per-monitor snapshots: element i of
/// each inner vector is monitor i's peer set at snapshot t. Snapshots where
/// an estimator is undefined are skipped.
struct SnapshotEstimates {
  EstimateSeries pairwise;   // eq. (1), first two monitors
  EstimateSeries committee;  // eq. (3), all monitors
  double mean_union_size = 0.0;
  std::vector<double> mean_set_sizes;  // per monitor
};

SnapshotEstimates estimate_over_snapshots(
    const std::vector<std::vector<std::vector<crypto::PeerId>>>& snapshots);

/// Intersection-over-union of two peer sets (the paper reports >70% IoU of
/// Bitswap-active peers between its two monitors).
double intersection_over_union(const std::vector<crypto::PeerId>& a,
                               const std::vector<crypto::PeerId>& b);

// --- Churn-aware variants ---------------------------------------------------
//
// Under churn a monitor's per-snapshot peer set mixes concurrently-online
// peers with ones that already left (connections linger, sets accumulate
// short sessions between snapshots), so both set sizes and their overlaps
// are inflated relative to the concurrent network size the estimators
// target. "Passively Measuring IPFS Churn and Network Size" (Daniel &
// Tschorsch, 2022) corrects for this with the observed session overlap:
// the fraction ρ of a monitor's peers that persist from one snapshot to
// the next. Scaling the committee occupancy counts (union m, draw w) by ρ
// keeps only the stable-core contribution; eq. (3) is scale-homogeneous,
// so this equals scaling the raw estimate by ρ — which is also how the
// pairwise estimate is corrected. With ρ = 1 (no churn) both variants
// reduce exactly to the raw estimators.

/// Observed session overlap ρ ∈ [0, 1]: the mean Jaccard similarity of
/// each monitor's consecutive snapshots. 1.0 when fewer than two matched
/// snapshots exist (no churn observable).
double measure_session_overlap(
    const std::vector<std::vector<std::vector<crypto::PeerId>>>& snapshots);

/// Eq. (3) over fractional (churn-corrected) occupancy counts.
std::optional<double> estimate_committee(double m, std::size_t r, double w);

/// Eq. (1) corrected by session overlap `rho`.
std::optional<double> estimate_pairwise_churned(
    const std::vector<crypto::PeerId>& peers1,
    const std::vector<crypto::PeerId>& peers2, double rho);

/// Raw + churn-corrected estimates over matched per-monitor snapshots.
struct ChurnedSnapshotEstimates {
  SnapshotEstimates raw;
  /// Observed session overlap ρ used for the corrections.
  double session_overlap = 1.0;
  EstimateSeries pairwise_adjusted;   // eq. (1) · ρ
  EstimateSeries committee_adjusted;  // eq. (3) on (ρ·m, ρ·w)
};

ChurnedSnapshotEstimates estimate_over_snapshots_churned(
    const std::vector<std::vector<std::vector<crypto::PeerId>>>& snapshots);

}  // namespace ipfsmon::analysis
