#include "analysis/cache_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <unordered_map>

#include "util/rng.hpp"

namespace ipfsmon::analysis {

CachePrediction che_hit_ratio(const std::vector<double>& weights,
                              std::size_t cache_items) {
  CachePrediction out;
  if (weights.empty() || cache_items == 0) return out;
  if (cache_items >= weights.size()) {
    // Cache fits the whole catalog: every (repeat) request hits.
    out.per_item_hit.assign(weights.size(), 1.0);
    out.hit_ratio = 1.0;
    out.characteristic_time = std::numeric_limits<double>::infinity();
    return out;
  }

  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return out;

  // Normalized request rates λ_i.
  std::vector<double> rates(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    rates[i] = weights[i] / total;
  }

  const auto occupancy = [&](double t) {
    double acc = 0.0;
    for (double rate : rates) acc += 1.0 - std::exp(-rate * t);
    return acc;
  };

  // Bisection for Σ(1 − e^{−λT}) = C. Occupancy is 0 at T=0 and →N as
  // T→∞, strictly increasing.
  double lo = 0.0;
  double hi = 1.0;
  const double target = static_cast<double>(cache_items);
  while (occupancy(hi) < target) {
    hi *= 2.0;
    if (hi > 1e18) break;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (occupancy(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double t_c = 0.5 * (lo + hi);

  out.characteristic_time = t_c;
  out.per_item_hit.resize(rates.size());
  double hit = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    out.per_item_hit[i] = 1.0 - std::exp(-rates[i] * t_c);
    hit += rates[i] * out.per_item_hit[i];
  }
  out.hit_ratio = hit;
  return out;
}

double simulate_lru_hit_ratio(const std::vector<double>& weights,
                              std::size_t cache_items, std::size_t requests,
                              std::uint64_t seed) {
  if (weights.empty() || cache_items == 0 || requests == 0) return 0.0;
  util::RngStream rng(seed, "lru-sim");

  // Cumulative weights for O(log n) sampling.
  std::vector<double> cumulative(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    cumulative[i] = acc;
  }

  std::list<std::size_t> lru;  // MRU at front
  std::unordered_map<std::size_t, std::list<std::size_t>::iterator> index;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    const double target = rng.uniform() * acc;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(),
                                     target);
    const std::size_t item = std::min<std::size_t>(
        static_cast<std::size_t>(it - cumulative.begin()),
        weights.size() - 1);

    const auto cached = index.find(item);
    if (cached != index.end()) {
      ++hits;
      lru.splice(lru.begin(), lru, cached->second);
    } else {
      lru.push_front(item);
      index[item] = lru.begin();
      if (lru.size() > cache_items) {
        index.erase(lru.back());
        lru.pop_back();
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(requests);
}

}  // namespace ipfsmon::analysis
