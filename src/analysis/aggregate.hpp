// Trace aggregations behind the paper's tables and time-series figures:
// Table I (share by multicodec), Table II (share by country), Fig. 4
// (requests per day by entry type), Fig. 6 (request rate per origin group).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/geo.hpp"
#include "trace/trace.hpp"

namespace ipfsmon::analysis {

struct ShareRow {
  std::string label;
  std::uint64_t count = 0;
  double share_percent = 0.0;
};

/// Table I: request counts per multicodec (raw, as the paper derives it —
/// requested entries only, no CANCELs, unprocessed traces).
std::vector<ShareRow> share_by_codec(const trace::Trace& raw);

/// Table II: request shares per origin country over the deduplicated
/// trace, resolved through the (synthetic) GeoIP database.
std::vector<ShareRow> share_by_country(const trace::Trace& deduplicated,
                                       const net::GeoDatabase& geo);

/// Generic grouped share table.
std::vector<ShareRow> share_by(
    const trace::Trace& trace,
    const std::function<std::string(const trace::TraceEntry&)>& group);

/// Incremental share table for streaming consumers (scan visitors, the
/// out-of-core unify): same rows as share_by without materializing a
/// Trace. Non-request entries are ignored, matching share_by.
class ShareAccumulator {
 public:
  explicit ShareAccumulator(
      std::function<std::string(const trace::TraceEntry&)> group);

  void add(const trace::TraceEntry& entry);
  std::vector<ShareRow> rows() const;

 private:
  std::function<std::string(const trace::TraceEntry&)> group_;
  std::unordered_map<std::string, std::uint64_t> counts_;
};

/// Fig. 4: per-bucket counts of WANT_BLOCK vs WANT_HAVE request entries.
struct TypeBucket {
  util::SimTime bucket_start = 0;
  std::uint64_t want_block = 0;
  std::uint64_t want_have = 0;
};
std::vector<TypeBucket> requests_by_type_over_time(
    const trace::Trace& trace, util::SimDuration bucket = util::kDay);

/// Fig. 6: request rate (entries/s) per origin group over time buckets.
struct GroupRateBucket {
  util::SimTime bucket_start = 0;
  std::map<std::string, double> rate_per_second;
};
std::vector<GroupRateBucket> request_rate_by_group(
    const trace::Trace& deduplicated,
    const std::function<std::string(const crypto::PeerId&)>& group_of,
    util::SimDuration bucket = util::kHour);

/// Requests per peer (activity structure helper).
std::vector<std::pair<crypto::PeerId, std::uint64_t>> requests_per_peer(
    const trace::Trace& trace);

}  // namespace ipfsmon::analysis
