#include "analysis/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace ipfsmon::analysis {

double hurwitz_zeta(double s, double a) {
  // Direct sum for the first terms, Euler-Maclaurin correction for the
  // tail: ζ(s,a) ≈ Σ_{k<N}(a+k)^−s + (a+N)^{1−s}/(s−1) + ½(a+N)^−s
  //               + s(a+N)^{−s−1}/12.
  constexpr int kDirectTerms = 64;
  double sum = 0.0;
  for (int k = 0; k < kDirectTerms; ++k) {
    sum += std::pow(a + k, -s);
  }
  const double tail_start = a + kDirectTerms;
  sum += std::pow(tail_start, 1.0 - s) / (s - 1.0);
  sum += 0.5 * std::pow(tail_start, -s);
  sum += s * std::pow(tail_start, -s - 1.0) / 12.0;
  return sum;
}

double fit_alpha_discrete(const std::vector<double>& samples, double xmin) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : samples) {
    if (x < xmin) continue;
    log_sum += std::log(x);
    ++n;
  }
  if (n == 0) return 0.0;

  // Exact discrete MLE: maximize ℓ(α) = −n·ln ζ(α, xmin) − α·Σ ln xᵢ by
  // ternary search (ℓ is strictly concave in α). The popular closed-form
  // approximation α ≈ 1 + n/Σ ln(xᵢ/(xmin−½)) is badly biased for small
  // xmin — and popularity scores start at 1.
  const double nd = static_cast<double>(n);
  const auto log_likelihood = [&](double alpha) {
    return -nd * std::log(hurwitz_zeta(alpha, xmin)) - alpha * log_sum;
  };
  double lo = 1.0001;
  double hi = 16.0;
  for (int i = 0; i < 80; ++i) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (log_likelihood(m1) < log_likelihood(m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  return 0.5 * (lo + hi);
}

double ks_distance_powerlaw(const std::vector<double>& samples, double xmin,
                            double alpha) {
  std::vector<double> tail;
  for (double x : samples) {
    if (x >= xmin) tail.push_back(x);
  }
  if (tail.empty() || alpha <= 1.0) return 1.0;
  std::sort(tail.begin(), tail.end());

  const double z_xmin = hurwitz_zeta(alpha, xmin);
  const double n = static_cast<double>(tail.size());
  double d = 0.0;
  std::size_t i = 0;
  while (i < tail.size()) {
    // Advance over equal values to evaluate at distinct points.
    std::size_t j = i;
    while (j < tail.size() && tail[j] == tail[i]) ++j;
    const double x = tail[i];
    // Model CDF: P(X ≤ x) = 1 − ζ(α, x+1)/ζ(α, xmin). Both CDFs are
    // right-continuous step functions over the same atoms, so the KS
    // distance is the max difference AT the atoms — comparing against the
    // empirical left limit (as for continuous models) would inflate the
    // distance by the first atom's probability mass.
    const double model_cdf = 1.0 - hurwitz_zeta(alpha, x + 1.0) / z_xmin;
    const double emp_cdf = static_cast<double>(j) / n;
    d = std::max(d, std::abs(emp_cdf - model_cdf));
    i = j;
  }
  return d;
}

PowerLawFit fit_power_law(const std::vector<double>& samples,
                          std::size_t max_xmin_candidates) {
  PowerLawFit best;
  best.ks_distance = 2.0;  // sentinel worse than any real distance
  if (samples.empty()) return best;

  // Candidate xmin values: distinct sample values (capped, evenly spread).
  std::set<double> distinct(samples.begin(), samples.end());
  std::vector<double> candidates(distinct.begin(), distinct.end());
  if (candidates.size() > max_xmin_candidates && max_xmin_candidates > 0) {
    std::vector<double> reduced;
    reduced.reserve(max_xmin_candidates);
    for (std::size_t i = 0; i < max_xmin_candidates; ++i) {
      const std::size_t idx =
          i * (candidates.size() - 1) / (max_xmin_candidates - 1);
      reduced.push_back(candidates[idx]);
    }
    candidates = std::move(reduced);
  }

  // Too-thin tails make the KS distance meaningless (any distribution fits
  // a handful of points); require a minimally informative tail.
  const std::size_t min_tail =
      std::max<std::size_t>(25, samples.size() / 100);

  std::vector<PowerLawFit> fits;
  for (double xmin : candidates) {
    if (xmin < 1.0) continue;
    const double alpha = fit_alpha_discrete(samples, xmin);
    if (alpha <= 1.0) continue;
    std::size_t tail = 0;
    for (double x : samples) {
      if (x >= xmin) ++tail;
    }
    if (tail < min_tail) continue;
    const double d = ks_distance_powerlaw(samples, xmin, alpha);
    fits.push_back(PowerLawFit{alpha, xmin, d, tail});
    if (d < best.ks_distance) {
      best = PowerLawFit{alpha, xmin, d, tail};
    }
  }
  // Tie-break toward the smallest xmin whose KS is within 10% of the
  // optimum: a marginally better distance does not justify discarding most
  // of the data (large xmin ⇒ small tails ⇒ spuriously small distances).
  for (const auto& fit : fits) {
    if (fit.ks_distance <= best.ks_distance * 1.10 && fit.xmin < best.xmin) {
      best = fit;
    }
  }
  if (best.ks_distance > 1.5 && !samples.empty()) {
    // Nothing qualified (e.g. tiny input): fall back to xmin = min sample.
    const double xmin = std::max(1.0, *std::min_element(samples.begin(),
                                                        samples.end()));
    const double alpha = std::max(1.0001, fit_alpha_discrete(samples, xmin));
    std::size_t tail = 0;
    for (double x : samples) {
      if (x >= xmin) ++tail;
    }
    best = PowerLawFit{alpha, xmin, ks_distance_powerlaw(samples, xmin, alpha),
                       tail};
  }
  return best;
}

double sample_discrete_power_law(util::RngStream& rng, double xmin,
                                 double alpha) {
  // Exact inverse-transform sampling on the discrete CDF
  // P(X > k) = ζ(α, k+1) / ζ(α, xmin): doubling search for a bracket,
  // then binary search for the smallest k with P(X ≤ k) ≥ u. (The
  // continuous approximation from CSN appendix D is badly biased for
  // small xmin, which matters here — popularity scores start at 1.)
  double u;
  do {
    u = rng.uniform();
  } while (u >= 1.0);
  const double z = hurwitz_zeta(alpha, xmin);
  const double target_tail = (1.0 - u) * z;  // find k: ζ(α, k+1) ≤ target

  double lo = xmin;
  double hi = xmin;
  while (hurwitz_zeta(alpha, hi + 1.0) > target_tail) {
    lo = hi + 1.0;
    hi *= 2.0;
    if (hi > 1e15) return hi;  // astronomically deep tail: cap
  }
  while (lo < hi) {
    const double mid = std::floor((lo + hi) / 2.0);
    if (hurwitz_zeta(alpha, mid + 1.0) > target_tail) {
      lo = mid + 1.0;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PowerLawTest test_power_law(const std::vector<double>& samples,
                            util::RngStream& rng,
                            std::size_t bootstrap_rounds,
                            std::size_t max_xmin_candidates) {
  PowerLawTest result;
  result.fit = fit_power_law(samples, max_xmin_candidates);
  result.bootstrap_rounds = bootstrap_rounds;
  if (samples.empty() || result.fit.tail_size == 0) return result;

  // Split the data into body (< xmin) and tail (≥ xmin).
  std::vector<double> body;
  for (double x : samples) {
    if (x < result.fit.xmin) body.push_back(x);
  }
  const double tail_prob = static_cast<double>(result.fit.tail_size) /
                           static_cast<double>(samples.size());

  std::size_t exceed = 0;
  for (std::size_t round = 0; round < bootstrap_rounds; ++round) {
    std::vector<double> synthetic;
    synthetic.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (body.empty() || rng.bernoulli(tail_prob)) {
        synthetic.push_back(sample_discrete_power_law(rng, result.fit.xmin,
                                                      result.fit.alpha));
      } else {
        synthetic.push_back(body[rng.uniform_index(body.size())]);
      }
    }
    const PowerLawFit syn_fit =
        fit_power_law(synthetic, max_xmin_candidates);
    if (syn_fit.ks_distance >= result.fit.ks_distance) ++exceed;
  }
  result.p_value = static_cast<double>(exceed) /
                   static_cast<double>(bootstrap_rounds);
  return result;
}

}  // namespace ipfsmon::analysis
