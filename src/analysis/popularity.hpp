// Content-popularity scores (paper Sec. IV-D):
//  * RRP (raw request popularity)  — total requests per CID,
//  * URP (unique request popularity) — distinct requesting peers per CID.
// Computed over the unified, deduplicated trace.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace.hpp"

namespace ipfsmon::analysis {

struct PopularityScores {
  std::unordered_map<cid::Cid, std::uint64_t> rrp;
  std::unordered_map<cid::Cid, std::uint64_t> urp;

  /// Score vectors (for ECDF/power-law fitting).
  std::vector<double> rrp_values() const;
  std::vector<double> urp_values() const;

  /// Top-k CIDs by the given score, descending.
  std::vector<std::pair<cid::Cid, std::uint64_t>> top_rrp(std::size_t k) const;
  std::vector<std::pair<cid::Cid, std::uint64_t>> top_urp(std::size_t k) const;

  /// Share of CIDs requested by exactly one peer (paper: >80%).
  double single_requester_share() const;
};

/// Computes both scores. Only request entries count (CANCELs excluded);
/// flagged duplicates/re-broadcasts are skipped when `clean_only` is set
/// (the paper's analyses filter both).
PopularityScores compute_popularity(const trace::Trace& trace,
                                    bool clean_only = true);

/// Incremental popularity scoring for streaming consumers. Memory is the
/// per-CID requester sets (what compute_popularity allocates anyway),
/// never the trace itself.
class PopularityAccumulator {
 public:
  explicit PopularityAccumulator(bool clean_only = true);

  void add(const trace::TraceEntry& entry);
  PopularityScores scores() const;

 private:
  bool clean_only_;
  std::unordered_map<cid::Cid, std::uint64_t> rrp_;
  std::unordered_map<cid::Cid, std::unordered_set<crypto::PeerId>> requesters_;
};

}  // namespace ipfsmon::analysis
