#include "analysis/ks.hpp"

#include <algorithm>
#include <cmath>

namespace ipfsmon::analysis {

double ks_statistic_uniform(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double cdf = samples[i];  // uniform CDF is the identity
    const double upper = static_cast<double>(i + 1) / n - cdf;
    const double lower = cdf - static_cast<double>(i) / n;
    d = std::max({d, upper, lower});
  }
  return d;
}

double ks_statistic_two_sample(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

double ks_p_value(double statistic, std::size_t n) {
  if (n == 0 || statistic <= 0.0) return 1.0;
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * statistic;
  // Kolmogorov tail series: 2 Σ (−1)^{k−1} e^{−2 k² λ²}.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace ipfsmon::analysis
