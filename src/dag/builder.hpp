// Merkle-DAG construction: turns file bytes and directory listings into
// block sets with a single root CID, mirroring how go-ipfs imports content.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dag/block.hpp"
#include "dag/chunker.hpp"
#include "dag/dag_node.hpp"

namespace ipfsmon::dag {

/// The result of importing content: all blocks plus the root's CID.
struct DagBuildResult {
  cid::Cid root;
  std::vector<Block> blocks;  // root last

  std::uint64_t total_size() const;
};

struct BuilderOptions {
  std::size_t chunk_size = kDefaultChunkSize;
  /// Max children per interior node before adding another DAG layer
  /// (go-ipfs default fan-out is 174 for balanced layout).
  std::size_t max_links = 174;
  /// Leaves as Raw blocks (modern default) vs DagProtobuf-wrapped (legacy).
  bool raw_leaves = true;
};

/// Imports a file: chunk → leaf blocks → balanced interior layers → root.
/// Files that fit one chunk produce a single block.
DagBuildResult build_file(util::BytesView data, const BuilderOptions& options = {});

/// A named directory entry pointing at an already-built subtree.
struct DirEntry {
  std::string name;
  cid::Cid target;
  std::uint64_t size = 0;
};

/// Builds a directory node over existing entries. Returns the directory
/// block only (entries' blocks are owned by their own build results).
DagBuildResult build_directory(const std::vector<DirEntry>& entries);

/// Walks a DAG rooted at `root` through a block lookup callback, returning
/// CIDs in BFS order. Missing blocks terminate that branch silently (the
/// caller may only hold a partial DAG).
std::vector<cid::Cid> traverse_bfs(
    const cid::Cid& root,
    const std::function<const Block*(const cid::Cid&)>& lookup);

}  // namespace ipfsmon::dag
