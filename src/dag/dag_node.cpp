#include "dag/dag_node.hpp"

#include "dag/protobuf.hpp"

namespace ipfsmon::dag {

namespace {
// PBLink field numbers (dag-pb schema).
constexpr std::uint32_t kLinkHash = 1;
constexpr std::uint32_t kLinkName = 2;
constexpr std::uint32_t kLinkTsize = 3;
// PBNode field numbers.
constexpr std::uint32_t kNodeData = 1;
constexpr std::uint32_t kNodeLinks = 2;
// Inside Data we store a one-byte kind tag followed by the payload; this
// stands in for the UnixFS envelope go-ipfs uses.
}  // namespace

Block DagNode::to_block() const {
  ProtoWriter node;
  // go-merkledag serializes Links before Data.
  for (const auto& link : links) {
    ProtoWriter pb_link;
    pb_link.bytes_field(kLinkHash, link.target.encode());
    pb_link.string_field(kLinkName, link.name);
    pb_link.varint_field(kLinkTsize, link.total_size);
    node.message_field(kNodeLinks, pb_link.bytes());
  }
  util::Bytes payload;
  payload.push_back(static_cast<std::uint8_t>(kind));
  payload.insert(payload.end(), data.begin(), data.end());
  node.bytes_field(kNodeData, payload);
  return Block::create(cid::Multicodec::DagProtobuf, node.take());
}

std::optional<DagNode> DagNode::from_bytes(util::BytesView bytes) {
  DagNode out;
  bool saw_data = false;
  ProtoReader reader(bytes);
  while (auto field = reader.next()) {
    if (field->number == kNodeLinks &&
        field->type == WireType::LengthDelimited) {
      DagLink link;
      ProtoReader link_reader(field->payload);
      while (auto lf = link_reader.next()) {
        if (lf->number == kLinkHash && lf->type == WireType::LengthDelimited) {
          auto target = cid::Cid::decode(lf->payload);
          if (!target) return std::nullopt;
          link.target = *target;
        } else if (lf->number == kLinkName &&
                   lf->type == WireType::LengthDelimited) {
          link.name = util::string_of(lf->payload);
        } else if (lf->number == kLinkTsize && lf->type == WireType::Varint) {
          link.total_size = lf->varint;
        }
      }
      if (!link_reader.ok_at_end()) return std::nullopt;
      out.links.push_back(std::move(link));
    } else if (field->number == kNodeData &&
               field->type == WireType::LengthDelimited) {
      if (field->payload.empty()) return std::nullopt;
      out.kind = static_cast<DagNodeKind>(field->payload[0]);
      if (out.kind != DagNodeKind::File && out.kind != DagNodeKind::Directory) {
        return std::nullopt;
      }
      out.data.assign(field->payload.begin() + 1, field->payload.end());
      saw_data = true;
    }
  }
  if (!reader.ok_at_end() || !saw_data) return std::nullopt;
  return out;
}

}  // namespace ipfsmon::dag
