// A block is the unit of storage and transfer in IPFS: raw bytes plus the
// CID that self-certifies them.
#pragma once

#include <memory>

#include "cid/cid.hpp"
#include "util/bytes.hpp"

namespace ipfsmon::dag {

class Block {
 public:
  Block() = default;
  Block(cid::Cid id, util::Bytes data)
      : cid_(std::move(id)), data_(std::move(data)) {}

  /// Creates a block, deriving its CIDv1 from the data under `codec`.
  static Block create(cid::Multicodec codec, util::Bytes data);

  /// Creates a raw-codec block.
  static Block raw(util::Bytes data);

  const cid::Cid& id() const { return cid_; }
  const util::Bytes& data() const { return data_; }
  std::size_t size() const { return data_.size(); }

  /// Re-derives the hash and checks it matches the CID (SFS integrity).
  bool verify() const;

 private:
  cid::Cid cid_;
  util::Bytes data_;
};

/// Blocks are shared between blockstores, the wire, and traces.
using BlockPtr = std::shared_ptr<const Block>;

}  // namespace ipfsmon::dag
