// Fixed-size chunking of file bytes into blocks (the go-ipfs default is
// 256 KiB chunks; paper Sec. III-B: "large files are chunked into smaller
// data blocks").
#pragma once

#include <cstddef>
#include <vector>

#include "util/bytes.hpp"

namespace ipfsmon::dag {

constexpr std::size_t kDefaultChunkSize = 256 * 1024;

/// Splits `data` into consecutive chunks of at most `chunk_size` bytes.
/// Empty input yields a single empty chunk (a zero-length file is still one
/// block in IPFS).
std::vector<util::Bytes> chunk_fixed(util::BytesView data,
                                     std::size_t chunk_size = kDefaultChunkSize);

}  // namespace ipfsmon::dag
