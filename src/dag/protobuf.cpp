#include "dag/protobuf.hpp"

#include "util/varint.hpp"

namespace ipfsmon::dag {

void ProtoWriter::tag(std::uint32_t field, WireType type) {
  util::varint_append(out_, (static_cast<std::uint64_t>(field) << 3) |
                                static_cast<std::uint64_t>(type));
}

void ProtoWriter::varint_field(std::uint32_t field, std::uint64_t value) {
  tag(field, WireType::Varint);
  util::varint_append(out_, value);
}

void ProtoWriter::bytes_field(std::uint32_t field, util::BytesView value) {
  tag(field, WireType::LengthDelimited);
  util::varint_append(out_, value.size());
  out_.insert(out_.end(), value.begin(), value.end());
}

void ProtoWriter::string_field(std::uint32_t field, std::string_view value) {
  bytes_field(field,
              util::BytesView(reinterpret_cast<const std::uint8_t*>(value.data()),
                              value.size()));
}

void ProtoWriter::message_field(std::uint32_t field, util::BytesView serialized) {
  bytes_field(field, serialized);
}

std::optional<ProtoReader::Field> ProtoReader::next() {
  if (failed_ || pos_ >= data_.size()) return std::nullopt;
  const auto key = util::varint_decode(data_.subspan(pos_));
  if (!key) {
    failed_ = true;
    return std::nullopt;
  }
  pos_ += key->consumed;
  Field field;
  field.number = static_cast<std::uint32_t>(key->value >> 3);
  const auto wire = static_cast<std::uint8_t>(key->value & 0x7);
  if (wire == 0) {
    field.type = WireType::Varint;
    const auto v = util::varint_decode(data_.subspan(pos_));
    if (!v) {
      failed_ = true;
      return std::nullopt;
    }
    field.varint = v->value;
    pos_ += v->consumed;
    return field;
  }
  if (wire == 2) {
    field.type = WireType::LengthDelimited;
    const auto len = util::varint_decode(data_.subspan(pos_));
    if (!len || pos_ + len->consumed + len->value > data_.size()) {
      failed_ = true;
      return std::nullopt;
    }
    pos_ += len->consumed;
    field.payload = data_.subspan(pos_, len->value);
    pos_ += len->value;
    return field;
  }
  failed_ = true;  // wire types 1/5 (fixed64/32) unused by dag-pb
  return std::nullopt;
}

}  // namespace ipfsmon::dag
