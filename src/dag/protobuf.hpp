// A minimal protobuf wire-format writer/reader — just enough to encode and
// decode dag-pb PBNode/PBLink messages the way go-merkledag does.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace ipfsmon::dag {

enum class WireType : std::uint8_t {
  Varint = 0,
  LengthDelimited = 2,
};

/// Appends protobuf fields to a buffer.
class ProtoWriter {
 public:
  void varint_field(std::uint32_t field, std::uint64_t value);
  void bytes_field(std::uint32_t field, util::BytesView value);
  void string_field(std::uint32_t field, std::string_view value);
  /// Embeds a serialized sub-message as a length-delimited field.
  void message_field(std::uint32_t field, util::BytesView serialized);

  const util::Bytes& bytes() const { return out_; }
  util::Bytes take() { return std::move(out_); }

 private:
  void tag(std::uint32_t field, WireType type);
  util::Bytes out_;
};

/// Streams protobuf fields out of a buffer.
class ProtoReader {
 public:
  explicit ProtoReader(util::BytesView data) : data_(data) {}

  struct Field {
    std::uint32_t number = 0;
    WireType type = WireType::Varint;
    std::uint64_t varint = 0;        // valid when type == Varint
    util::BytesView payload;         // valid when type == LengthDelimited
  };

  /// Reads the next field; nullopt at end-of-buffer or on malformed input.
  std::optional<Field> next();

  /// True if the whole buffer was consumed without errors.
  bool ok_at_end() const { return pos_ == data_.size() && !failed_; }

 private:
  util::BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace ipfsmon::dag
