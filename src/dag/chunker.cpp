#include "dag/chunker.hpp"

#include <stdexcept>

namespace ipfsmon::dag {

std::vector<util::Bytes> chunk_fixed(util::BytesView data,
                                     std::size_t chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("chunk_fixed: size 0");
  std::vector<util::Bytes> chunks;
  if (data.empty()) {
    chunks.emplace_back();
    return chunks;
  }
  for (std::size_t off = 0; off < data.size(); off += chunk_size) {
    const std::size_t len = std::min(chunk_size, data.size() - off);
    chunks.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(off),
                        data.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  return chunks;
}

}  // namespace ipfsmon::dag
