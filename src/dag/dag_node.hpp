// dag-pb Merkle-DAG nodes (PBNode/PBLink), the encoding IPFS uses for files
// and directories. Unlike a Merkle tree, nodes may have multiple parents and
// interior nodes may carry data (paper Sec. III-B).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cid/cid.hpp"
#include "dag/block.hpp"

namespace ipfsmon::dag {

/// A named, sized link to a child node.
struct DagLink {
  cid::Cid target;
  std::string name;
  std::uint64_t total_size = 0;  // cumulative size of the linked subtree

  bool operator==(const DagLink&) const = default;
};

/// What a dag-pb node represents. Stored in the node's Data field.
enum class DagNodeKind : std::uint8_t {
  File = 1,
  Directory = 2,
};

/// A decoded dag-pb node.
struct DagNode {
  DagNodeKind kind = DagNodeKind::File;
  std::vector<DagLink> links;
  util::Bytes data;  // inline file data (leaves / small files)

  /// Serializes to dag-pb wire format and wraps in a DagProtobuf block.
  Block to_block() const;

  /// Parses a dag-pb block payload.
  static std::optional<DagNode> from_bytes(util::BytesView bytes);

  bool operator==(const DagNode&) const = default;
};

}  // namespace ipfsmon::dag
