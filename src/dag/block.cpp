#include "dag/block.hpp"

namespace ipfsmon::dag {

Block Block::create(cid::Multicodec codec, util::Bytes data) {
  cid::Cid id = cid::Cid::of_data(codec, data);
  return Block(std::move(id), std::move(data));
}

Block Block::raw(util::Bytes data) {
  return create(cid::Multicodec::Raw, std::move(data));
}

bool Block::verify() const {
  return cid_.hash().verifies(data_);
}

}  // namespace ipfsmon::dag
