#include "dag/builder.hpp"

#include <deque>
#include <functional>
#include <unordered_set>

namespace ipfsmon::dag {

std::uint64_t DagBuildResult::total_size() const {
  std::uint64_t total = 0;
  for (const auto& b : blocks) total += b.size();
  return total;
}

DagBuildResult build_file(util::BytesView data, const BuilderOptions& options) {
  DagBuildResult result;
  const auto chunks = chunk_fixed(data, options.chunk_size);

  if (chunks.size() == 1) {
    // Small file: a single block, raw or dag-pb depending on options.
    if (options.raw_leaves) {
      Block b = Block::raw(chunks[0]);
      result.root = b.id();
      result.blocks.push_back(std::move(b));
    } else {
      DagNode node;
      node.kind = DagNodeKind::File;
      node.data = chunks[0];
      Block b = node.to_block();
      result.root = b.id();
      result.blocks.push_back(std::move(b));
    }
    return result;
  }

  // Build leaves.
  std::vector<DagLink> layer;
  layer.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    Block leaf = options.raw_leaves
                     ? Block::raw(chunk)
                     : [&] {
                         DagNode n;
                         n.kind = DagNodeKind::File;
                         n.data = chunk;
                         return n.to_block();
                       }();
    layer.push_back(DagLink{leaf.id(), "", leaf.size()});
    result.blocks.push_back(std::move(leaf));
  }

  // Collapse layers until one root remains.
  while (layer.size() > 1) {
    std::vector<DagLink> next;
    for (std::size_t i = 0; i < layer.size(); i += options.max_links) {
      const std::size_t end = std::min(i + options.max_links, layer.size());
      DagNode interior;
      interior.kind = DagNodeKind::File;
      std::uint64_t subtree = 0;
      for (std::size_t j = i; j < end; ++j) {
        interior.links.push_back(layer[j]);
        subtree += layer[j].total_size;
      }
      Block b = interior.to_block();
      subtree += b.size();
      next.push_back(DagLink{b.id(), "", subtree});
      result.blocks.push_back(std::move(b));
    }
    layer = std::move(next);
  }

  result.root = layer[0].target;
  return result;
}

DagBuildResult build_directory(const std::vector<DirEntry>& entries) {
  DagNode dir;
  dir.kind = DagNodeKind::Directory;
  for (const auto& entry : entries) {
    dir.links.push_back(DagLink{entry.target, entry.name, entry.size});
  }
  Block b = dir.to_block();
  DagBuildResult result;
  result.root = b.id();
  result.blocks.push_back(std::move(b));
  return result;
}

std::vector<cid::Cid> traverse_bfs(
    const cid::Cid& root,
    const std::function<const Block*(const cid::Cid&)>& lookup) {
  std::vector<cid::Cid> order;
  std::unordered_set<cid::Cid> seen;
  std::deque<cid::Cid> queue{root};
  seen.insert(root);
  while (!queue.empty()) {
    const cid::Cid current = queue.front();
    queue.pop_front();
    order.push_back(current);
    const Block* block = lookup(current);
    if (block == nullptr) continue;
    if (current.codec() != cid::Multicodec::DagProtobuf) continue;
    const auto node = DagNode::from_bytes(block->data());
    if (!node) continue;
    for (const auto& link : node->links) {
      if (seen.insert(link.target).second) queue.push_back(link.target);
    }
  }
  return order;
}

}  // namespace ipfsmon::dag
