// The simulated libp2p-style overlay transport. Nodes register a Host
// callback interface; the Network mediates dialing (with NAT semantics),
// per-pair single connections, latency-delayed FIFO message delivery, and
// connection teardown on churn. This is the substrate on which the DHT,
// Bitswap, and the passive monitors run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/keys.hpp"
#include "net/address.hpp"
#include "net/geo.hpp"
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ipfsmon::sim {
class ShardedScheduler;
}

namespace ipfsmon::net {

/// Base class for protocol messages carried over connections. Protocol
/// libraries (dht, bitswap) subclass this; receivers downcast via
/// dynamic_cast, mirroring libp2p's per-protocol stream demultiplexing.
struct Payload {
  virtual ~Payload() = default;

  /// Approximate serialized size in bytes, for traffic accounting only
  /// (nothing is actually serialized in the sim). Subclasses refine it.
  virtual std::size_t wire_size() const { return 32; }

  /// Causal trace context, stamped by the sender when the message belongs
  /// to a sampled trace (invalid otherwise). Receivers — including
  /// passive monitors — use it to parent their spans to the request that
  /// caused the message.
  obs::SpanContext trace;
};

using PayloadPtr = std::shared_ptr<const Payload>;

using ConnectionId = std::uint64_t;
constexpr ConnectionId kInvalidConnection = 0;

/// Link-level fault model applied to every payload in flight (src/churn
/// drives this; the Network owns it because drops and delays must happen
/// inside the delivery path). All-zero (the default) means the fault layer
/// is completely inert: no extra RNG draws, no extra metrics — runs with
/// faults disabled are byte-identical to builds without the feature.
struct LinkFaultProfile {
  /// Independent per-payload loss probability (models gray failure /
  /// overloaded relays dropping Bitswap broadcasts).
  double drop_probability = 0.0;
  /// Mean of an exponential extra one-way delay added to every delivery.
  double extra_delay_mean_seconds = 0.0;

  bool active() const {
    return drop_probability > 0.0 || extra_delay_mean_seconds > 0.0;
  }
};

/// Retry policy for dial_with_backoff: exponential backoff with
/// multiplicative jitter, the reconnection discipline churn-aware layers
/// use after partitions heal or monitors restart.
struct BackoffPolicy {
  util::SimDuration initial_delay = 1 * util::kSecond;
  double multiplier = 2.0;
  util::SimDuration max_delay = 2 * util::kMinute;
  /// Total dial attempts (first try included). 0 behaves like 1.
  std::size_t max_attempts = 6;
  /// Delay is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.2;
};

/// Callback interface a node installs to participate in the overlay.
class Host {
 public:
  virtual ~Host() = default;

  /// Inbound dial arrived: return true to accept. Monitors always accept
  /// ("infinite connection capacity"); regular nodes enforce limits here.
  virtual bool accept_inbound(const crypto::PeerId& from) = 0;

  /// A connection (either direction) is now established.
  virtual void on_connection(ConnectionId conn, const crypto::PeerId& peer,
                             bool outbound) = 0;

  /// The connection was closed (peer action, local close, or churn).
  virtual void on_disconnect(ConnectionId conn, const crypto::PeerId& peer) = 0;

  /// A protocol message arrived on an established connection.
  virtual void on_message(ConnectionId conn, const crypto::PeerId& from,
                          const PayloadPtr& payload) = 0;
};

struct NodeRecord {
  crypto::PeerId id;
  Address address;
  std::string country;
  bool nat = false;     // NAT'd nodes cannot accept inbound dials
  bool online = false;
  Host* host = nullptr;
  double discovery_weight = 1.0;
};

class Network {
 public:
  Network(sim::Scheduler& scheduler, GeoDatabase geo, std::uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Scheduler& scheduler() { return scheduler_; }
  GeoDatabase& geo() { return geo_; }
  const GeoDatabase& geo() const { return geo_; }

  /// Shared observability context (metrics registry + event hub). Every
  /// layer constructed over this network registers its instruments here.
  obs::Obs& obs() { return obs_; }
  const obs::Obs& obs() const { return obs_; }

  /// Registers a node (initially offline). `discovery_weight` biases
  /// ambient-discovery sampling: long-lived, well-connected nodes occupy
  /// many k-buckets and are surfaced by peer discovery far more often than
  /// ephemeral ones; weights > 1 model such hubs (monitors, gateways,
  /// bootstrap nodes).
  void register_node(const crypto::PeerId& id, const Address& addr,
                     const std::string& country, bool nat, Host* host,
                     double discovery_weight = 1.0);

  /// Brings a node online / takes it offline. Going offline closes all of
  /// its connections (both sides are notified).
  void set_online(const crypto::PeerId& id, bool online);

  bool is_online(const crypto::PeerId& id) const;
  const NodeRecord* record(const crypto::PeerId& id) const;

  /// Asynchronously dials `to`. The callback receives the connection id on
  /// success (which may be a pre-existing connection — libp2p keeps at most
  /// one connection per peer pair) or nullopt on failure (offline target,
  /// NAT, or rejection).
  void dial(const crypto::PeerId& from, const crypto::PeerId& to,
            std::function<void(std::optional<ConnectionId>)> on_result);

  /// Closes a connection; both hosts get on_disconnect. No-op if already
  /// closed.
  void close(ConnectionId conn);

  /// Sends a payload from `sender` over `conn`. Delivery is scheduled after
  /// a sampled one-way latency, FIFO per direction. Dropped silently if the
  /// connection closes before delivery (TCP reset semantics).
  void send(ConnectionId conn, const crypto::PeerId& sender,
            PayloadPtr payload);

  std::optional<ConnectionId> connection_between(
      const crypto::PeerId& a, const crypto::PeerId& b) const;

  std::vector<crypto::PeerId> connected_peers(const crypto::PeerId& id) const;
  std::size_t connection_count(const crypto::PeerId& id) const;

  /// The remote peer of `conn` as seen from `self`.
  std::optional<crypto::PeerId> remote_peer(ConnectionId conn,
                                            const crypto::PeerId& self) const;

  /// When the connection was established (nullopt if closed/unknown).
  std::optional<util::SimTime> connection_established_at(
      ConnectionId conn) const;

  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::size_t open_connections() const { return connections_.size(); }

  /// All currently-online node ids (handy for tests and bootstrap lists).
  std::vector<crypto::PeerId> online_nodes() const;

  /// Samples a uniformly random online, publicly reachable (non-NAT) node.
  /// This backs the simulator's "ambient discovery" abstraction — the
  /// union of libp2p's peer-discovery mechanisms (DHT random walks,
  /// rendezvous, peer exchange) collapsed into one sampling primitive.
  std::optional<crypto::PeerId> sample_online_public(util::RngStream& rng) const;

  // --- Fault injection (src/churn drives these) ---------------------------

  /// Installs (or clears, with a default-constructed profile) the link
  /// fault model. Fault randomness comes from a dedicated stream, so
  /// enabling faults never perturbs latency/geo sampling sequences.
  void set_link_faults(const LinkFaultProfile& profile);
  const LinkFaultProfile& link_faults() const { return link_faults_; }

  /// Hard-partitions a node: all of its connections are closed and every
  /// dial or payload involving it fails until heal() — the simulated
  /// equivalent of a network-level outage around one peer. The node itself
  /// keeps believing it is online (its timers keep firing and failing),
  /// which is exactly the gray-failure shape reconnection logic must
  /// survive. No-op on unknown ids.
  void isolate(const crypto::PeerId& id);
  void heal(const crypto::PeerId& id);
  bool isolated(const crypto::PeerId& id) const;
  std::size_t isolated_count() const { return isolated_.size(); }

  /// Dials with exponential backoff: retries failed dials per `policy`
  /// until one succeeds or attempts are exhausted (callback then receives
  /// nullopt). Succeeding immediately costs exactly one plain dial.
  void dial_with_backoff(const crypto::PeerId& from, const crypto::PeerId& to,
                         const BackoffPolicy& policy,
                         std::function<void(std::optional<ConnectionId>)>
                             on_result);

  std::uint64_t fault_drops() const { return fault_drops_count_; }

  // --- Span tracing (src/obs) ---------------------------------------------

  /// Arms obs().tracer for this simulation: installs the config, points
  /// the tracer's sim clock at the scheduler, and installs a scheduler
  /// event wrapper that captures the tracer's current context at schedule
  /// time and restores it around dispatch — so traces survive timer hops
  /// (dial handshakes, message delivery, Bitswap re-broadcast). Calling
  /// with enabled = false restores the fully inert state.
  void enable_tracing(const obs::TracerConfig& config);

  // --- Cross-shard routing (src/sim sharded coordinator) -------------------
  // Everything below is inert until attach_shard is called: unsharded runs
  // take no extra branches past a null-pointer check, register no extra
  // metrics, and draw no extra randomness — shards=1 stays byte-identical.

  /// Attaches this network (running as shard `self_shard`) to a sharded
  /// coordinator. `resolve_shard` maps a shard index to that shard's
  /// Network; it must stay valid for the network's lifetime and is only
  /// consulted read-only after setup. Cross-shard link latencies are
  /// floored at the coordinator's lookahead, which is what makes the
  /// conservative window advance safe (DESIGN.md Sec. 12).
  void attach_shard(sim::ShardedScheduler* coordinator, std::size_t self_shard,
                    std::function<Network*(std::size_t)> resolve_shard);
  bool sharded() const { return shard_coordinator_ != nullptr; }
  std::size_t shard_index() const { return self_shard_; }

  /// Registers a peer living on `home_shard` as dialable from this shard.
  /// Remote peers are modelled as always-online, always-accepting, non-NAT
  /// hubs (the monitor/bootstrap shape — exactly the nodes worth
  /// cross-registering); `discovery_weight` > 1 also enters them into the
  /// ambient-discovery hub tier so local nodes can find them.
  void register_remote(const crypto::PeerId& id, std::size_t home_shard,
                       const Address& addr, const std::string& country,
                       double discovery_weight = 1.0);

  // Cross-shard delivery entry points. Invoked on THIS network's shard
  // thread via events posted by a peer shard's network; they touch only
  // this shard's state.
  void deliver_remote_connect(const crypto::PeerId& from,
                              std::size_t from_shard, const Address& from_addr,
                              const std::string& from_country,
                              const crypto::PeerId& to);
  void deliver_remote_message(const crypto::PeerId& from,
                              const crypto::PeerId& to, PayloadPtr payload);
  void deliver_remote_close(const crypto::PeerId& from,
                            const crypto::PeerId& to);

  std::uint64_t shard_messages_sent() const { return shard_sent_count_; }

 private:
  /// Sentinel remote_shard value marking a same-shard connection.
  static constexpr std::size_t kLocalShard = static_cast<std::size_t>(-1);

  struct Connection {
    crypto::PeerId a, b;
    util::SimTime established = 0;
    // FIFO clamps: earliest allowed delivery time per direction.
    util::SimTime next_delivery_a_to_b = 0;
    util::SimTime next_delivery_b_to_a = 0;
    // For cross-shard connections: the shard hosting peer `b` (`a` is
    // always the local endpoint of a mirror pair). kLocalShard otherwise.
    std::size_t remote_shard = kLocalShard;
  };

  struct RemoteRecord {
    NodeRecord record;  // host == nullptr, online == true
    std::size_t home_shard = 0;
    // Explicitly registered remotes are dialable; records learned from an
    // inbound cross-shard connect are address-book entries only — dialing
    // them fails like dialing through NAT (documented contract limit).
    bool dialable = false;
  };

  util::SimDuration sample_latency(const crypto::PeerId& a,
                                   const crypto::PeerId& b);
  ConnectionId establish(const crypto::PeerId& from, const crypto::PeerId& to);
  void close_all_of(const crypto::PeerId& id);
  /// Shared teardown; close() notifies the remote shard of mirror
  /// connections, deliver_remote_close suppresses the notify to stop the
  /// two mirrors ping-ponging close messages.
  void close_conn(ConnectionId conn, bool notify_remote);
  void dial_remote(const crypto::PeerId& from, const crypto::PeerId& to,
                   std::function<void(std::optional<ConnectionId>)> on_result);
  void send_remote(ConnectionId conn, Connection& c,
                   const crypto::PeerId& sender, PayloadPtr payload);
  /// One-way cross-shard latency: the regular geo sample floored at the
  /// coordinator lookahead (the modelling knob that buys parallelism —
  /// cross-shard links are long-haul by construction).
  util::SimDuration sample_remote_latency(const crypto::PeerId& a,
                                          const crypto::PeerId& b);
  /// Lazily creates the fault RNG stream and registers fault metrics.
  /// Deferred so fault-free runs register nothing (registry dumps stay
  /// byte-identical to builds that never heard of faults).
  void ensure_fault_plumbing();
  void dial_backoff_attempt(
      const crypto::PeerId& from, const crypto::PeerId& to,
      BackoffPolicy policy, std::size_t attempt, util::SimDuration delay,
      std::function<void(std::optional<ConnectionId>)> on_result);
  /// Per-country connection-endpoint gauge (each open connection counts
  /// once per endpoint country). Cached: country sets are small.
  obs::Gauge& country_gauge(const std::string& country);
  void track_endpoints(const Connection& conn, double delta);

  sim::Scheduler& scheduler_;
  GeoDatabase geo_;
  util::RngStream rng_;
  std::uint64_t seed_;
  obs::Obs obs_;

  // Fault layer (inert until set_link_faults/isolate/dial_with_backoff is
  // first used). The RNG is a separate named stream derived from the
  // network seed, never from rng_, so fault draws cannot shift the
  // latency/geo sampling sequence of the fault-free run.
  LinkFaultProfile link_faults_;
  std::unordered_set<crypto::PeerId> isolated_;
  std::unique_ptr<util::RngStream> fault_rng_;
  std::uint64_t fault_drops_count_ = 0;
  struct FaultInstruments {
    obs::Counter* fault_drops = nullptr;
    obs::Counter* backoff_retries = nullptr;
    obs::Counter* backoff_exhausted = nullptr;
    obs::Gauge* isolated_nodes = nullptr;
  } fault_metrics_;

  struct Instruments {
    obs::Counter* dials = nullptr;
    obs::Counter* dial_failures = nullptr;
    obs::Counter* accepts = nullptr;
    obs::Counter* rejects = nullptr;
    obs::Counter* connections_opened = nullptr;
    obs::Counter* connections_closed = nullptr;
    obs::Counter* messages_sent = nullptr;
    obs::Counter* messages_delivered = nullptr;
    obs::Counter* messages_dropped = nullptr;
    obs::Counter* bytes_delivered = nullptr;
    obs::Gauge* open_connections = nullptr;
    obs::Gauge* online_nodes = nullptr;
    obs::Histogram* latency = nullptr;
  } metrics_;
  std::unordered_map<std::string, obs::Gauge*> country_gauges_;

  // Cross-shard state (empty / null until attach_shard).
  sim::ShardedScheduler* shard_coordinator_ = nullptr;
  std::size_t self_shard_ = 0;
  std::function<Network*(std::size_t)> resolve_shard_;
  util::SimDuration shard_link_floor_ = 0;
  std::unordered_map<crypto::PeerId, RemoteRecord> remotes_;
  std::uint64_t shard_sent_count_ = 0;
  struct ShardInstruments {
    obs::Counter* sent = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* connects = nullptr;
  } shard_metrics_;

  std::unordered_map<crypto::PeerId, NodeRecord> nodes_;
  std::unordered_map<ConnectionId, Connection> connections_;
  // Per-node adjacency: peer -> connection id.
  std::unordered_map<crypto::PeerId,
                     std::unordered_map<crypto::PeerId, ConnectionId>>
      adjacency_;
  ConnectionId next_connection_id_ = 1;
  std::uint64_t messages_delivered_ = 0;

  // Online non-NAT nodes, kept as dense vectors for O(1) sampling. Nodes
  // with discovery_weight ≤ 1 live in the regular tier (sampled uniformly);
  // heavier nodes live in the hub tier (sampled by weight — the tier is
  // small, a linear scan is fine).
  std::vector<crypto::PeerId> online_public_;
  std::unordered_map<crypto::PeerId, std::size_t> online_public_index_;
  std::vector<std::pair<crypto::PeerId, double>> online_hubs_;
  double online_hub_weight_ = 0.0;
};

}  // namespace ipfsmon::net
