#include "net/geo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ipfsmon::net {

std::vector<CountrySpec> default_world() {
  // Weights approximate the activity shares behind the paper's Table II.
  // Coordinates are rough great-circle positions (units ~ Mm) so that
  // intra-continent latencies come out in the tens of ms and
  // trans-Atlantic ones around 80-120 ms.
  return {
      {"US", 45.0, 0.0, 0.0},    {"NL", 14.0, 7.4, 1.2},
      {"DE", 13.0, 7.9, 1.0},    {"CA", 7.5, -0.5, 1.5},
      {"FR", 6.5, 7.2, 0.4},     {"GB", 3.5, 6.9, 1.3},
      {"CN", 3.0, 17.0, 0.5},    {"SG", 2.0, 16.0, -3.0},
      {"JP", 2.0, 19.0, 0.8},    {"RU", 1.5, 11.0, 2.5},
      {"BR", 1.0, 2.0, -5.0},    {"AU", 1.0, 18.5, -6.0},
  };
}

GeoDatabase::GeoDatabase(std::vector<CountrySpec> countries)
    : countries_(std::move(countries)) {
  if (countries_.empty()) {
    throw std::invalid_argument("GeoDatabase: empty country list");
  }
  weights_.reserve(countries_.size());
  next_host_.assign(countries_.size(), 1);  // skip .0.0.0 network address
  for (std::size_t i = 0; i < countries_.size(); ++i) {
    weights_.push_back(countries_[i].node_weight);
    block_to_country_[static_cast<std::uint32_t>(10 + i)] = i;
  }
}

GeoDatabase GeoDatabase::standard() { return GeoDatabase(default_world()); }

const std::string& GeoDatabase::sample_country(util::RngStream& rng) const {
  return countries_[rng.weighted_index(weights_)].code;
}

const CountrySpec* GeoDatabase::find(const std::string& code) const {
  for (const auto& c : countries_) {
    if (c.code == code) return &c;
  }
  return nullptr;
}

Address GeoDatabase::allocate_address(const std::string& country_code) {
  for (std::size_t i = 0; i < countries_.size(); ++i) {
    if (countries_[i].code == country_code) {
      const std::uint32_t block = static_cast<std::uint32_t>(10 + i);
      const std::uint32_t host = next_host_[i]++;
      return Address{(block << 24) | host, 4001};
    }
  }
  throw std::invalid_argument("allocate_address: unknown country " +
                              country_code);
}

std::string GeoDatabase::lookup(std::uint32_t ip) const {
  const auto it = block_to_country_.find(ip >> 24);
  if (it == block_to_country_.end()) return "??";
  return countries_[it->second].code;
}

util::SimDuration GeoDatabase::latency(const std::string& a,
                                       const std::string& b,
                                       util::RngStream& rng) const {
  const util::SimDuration mean = mean_latency(a, b);
  // Log-normal-ish jitter: multiply by a factor in [0.9, 1.5) with a
  // mild right tail, approximating queueing variability.
  const double factor = 0.9 + 0.6 * rng.uniform() * rng.uniform();
  return static_cast<util::SimDuration>(static_cast<double>(mean) * factor);
}

util::SimDuration GeoDatabase::min_latency() const {
  // The minimum mean is always a same-country pair (distance 0, so just
  // the 4 ms base), but compute it from the data rather than assuming.
  util::SimDuration min_mean = mean_latency(countries_[0].code,
                                            countries_[0].code);
  for (const auto& c : countries_) {
    min_mean = std::min(min_mean, mean_latency(c.code, c.code));
  }
  return static_cast<util::SimDuration>(static_cast<double>(min_mean) * 0.9);
}

void GeoDatabase::set_address_offset(std::uint32_t host_offset) {
  next_host_.assign(countries_.size(), 1 + host_offset);
}

util::SimDuration GeoDatabase::mean_latency(const std::string& a,
                                            const std::string& b) const {
  const CountrySpec* ca = find(a);
  const CountrySpec* cb = find(b);
  if (ca == nullptr || cb == nullptr) {
    return 120 * util::kMillisecond;  // unknown location: conservative
  }
  const double dx = ca->x - cb->x;
  const double dy = ca->y - cb->y;
  const double dist = std::sqrt(dx * dx + dy * dy);
  // 4 ms base (stack + last mile) + ~6 ms per map unit of distance.
  const double ms = 4.0 + 6.0 * dist;
  return static_cast<util::SimDuration>(ms * static_cast<double>(util::kMillisecond));
}

}  // namespace ipfsmon::net
