#include "net/address.hpp"

#include "util/strings.hpp"

namespace ipfsmon::net {

std::string Address::ip_string() const {
  return util::format("%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                      (ip >> 8) & 0xff, ip & 0xff);
}

std::string Address::to_string() const {
  return util::format("/ip4/%s/tcp/%u", ip_string().c_str(), port);
}

std::optional<Address> Address::from_string(std::string_view text) {
  const auto parts = util::split(text, '/');
  // "/ip4/a.b.c.d/tcp/port" splits into ["", "ip4", "a.b.c.d", "tcp", "port"].
  if (parts.size() != 5 || !parts[0].empty() || parts[1] != "ip4" ||
      parts[3] != "tcp") {
    return std::nullopt;
  }
  const auto octets = util::split(parts[2], '.');
  if (octets.size() != 4) return std::nullopt;
  std::uint32_t ip = 0;
  for (const auto& o : octets) {
    if (o.empty() || o.size() > 3) return std::nullopt;
    int value = 0;
    for (char c : o) {
      if (c < '0' || c > '9') return std::nullopt;
      value = value * 10 + (c - '0');
    }
    if (value > 255) return std::nullopt;
    ip = (ip << 8) | static_cast<std::uint32_t>(value);
  }
  long port = 0;
  for (char c : parts[4]) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (parts[4].empty()) return std::nullopt;
  return Address{ip, static_cast<std::uint16_t>(port)};
}

}  // namespace ipfsmon::net
