#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/shard.hpp"
#include "util/time.hpp"

namespace ipfsmon::net {

Network::Network(sim::Scheduler& scheduler, GeoDatabase geo, std::uint64_t seed)
    : scheduler_(scheduler),
      geo_(std::move(geo)),
      rng_(seed, "network"),
      seed_(seed) {
  auto& m = obs_.metrics;
  metrics_.dials = &m.counter("ipfsmon_net_dials_total", "Dial attempts");
  metrics_.dial_failures = &m.counter(
      "ipfsmon_net_dial_failures_total",
      "Dials failed (offline/NAT/self/churn), excluding host rejections");
  metrics_.accepts = &m.counter("ipfsmon_net_accepts_total",
                                "Inbound dials accepted by the target host");
  metrics_.rejects = &m.counter("ipfsmon_net_rejects_total",
                                "Inbound dials refused by the target host");
  metrics_.connections_opened = &m.counter("ipfsmon_net_connections_opened_total",
                                           "Connections established");
  metrics_.connections_closed = &m.counter("ipfsmon_net_connections_closed_total",
                                           "Connections torn down");
  metrics_.messages_sent = &m.counter("ipfsmon_net_messages_sent_total",
                                      "Payloads submitted for delivery");
  metrics_.messages_delivered = &m.counter("ipfsmon_net_messages_delivered_total",
                                           "Payloads delivered to a host");
  metrics_.messages_dropped = &m.counter(
      "ipfsmon_net_messages_dropped_total",
      "Payloads dropped in flight (connection closed or receiver churned)");
  metrics_.bytes_delivered = &m.counter("ipfsmon_net_bytes_delivered_total",
                                        "Approximate payload bytes delivered");
  metrics_.open_connections =
      &m.gauge("ipfsmon_net_open_connections", "Currently open connections");
  metrics_.online_nodes =
      &m.gauge("ipfsmon_net_online_nodes", "Currently online nodes");
  metrics_.latency = &m.histogram(
      "ipfsmon_net_latency_seconds",
      {0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 1.0},
      "Sampled one-way message latencies");
}

obs::Gauge& Network::country_gauge(const std::string& country) {
  const auto it = country_gauges_.find(country);
  if (it != country_gauges_.end()) return *it->second;
  obs::Gauge& gauge = obs_.metrics.gauge(
      "ipfsmon_net_connection_endpoints",
      "Open connection endpoints by endpoint country",
      "country=\"" + country + "\"");
  country_gauges_.emplace(country, &gauge);
  return gauge;
}

void Network::track_endpoints(const Connection& conn, double delta) {
  const NodeRecord* ra = record(conn.a);
  const NodeRecord* rb = record(conn.b);
  country_gauge(ra != nullptr ? ra->country : "??").add(delta);
  country_gauge(rb != nullptr ? rb->country : "??").add(delta);
}

void Network::register_node(const crypto::PeerId& id, const Address& addr,
                            const std::string& country, bool nat, Host* host,
                            double discovery_weight) {
  if (host == nullptr) throw std::invalid_argument("register_node: null host");
  NodeRecord record{id,   addr, country, nat, /*online=*/false,
                    host, discovery_weight};
  nodes_[id] = record;
}

void Network::set_online(const crypto::PeerId& id, bool online) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::invalid_argument("set_online: unknown node");
  if (it->second.online == online) return;
  if (!online) close_all_of(id);
  it->second.online = online;
  metrics_.online_nodes->add(online ? 1.0 : -1.0);

  if (!it->second.nat) {
    const bool hub = it->second.discovery_weight > 1.0;
    if (online) {
      if (hub) {
        online_hubs_.emplace_back(id, it->second.discovery_weight);
        online_hub_weight_ += it->second.discovery_weight;
      } else {
        online_public_index_[id] = online_public_.size();
        online_public_.push_back(id);
      }
    } else {
      if (hub) {
        for (auto hit = online_hubs_.begin(); hit != online_hubs_.end();
             ++hit) {
          if (hit->first == id) {
            online_hub_weight_ -= hit->second;
            online_hubs_.erase(hit);
            break;
          }
        }
      } else {
        const auto idx_it = online_public_index_.find(id);
        if (idx_it != online_public_index_.end()) {
          const std::size_t idx = idx_it->second;
          online_public_index_.erase(idx_it);
          if (idx + 1 != online_public_.size()) {
            online_public_[idx] = online_public_.back();
            online_public_index_[online_public_[idx]] = idx;
          }
          online_public_.pop_back();
        }
      }
    }
  }
}

std::optional<crypto::PeerId> Network::sample_online_public(
    util::RngStream& rng) const {
  const double regular_weight = static_cast<double>(online_public_.size());
  const double total = regular_weight + online_hub_weight_;
  if (total <= 0.0) return std::nullopt;
  if (rng.uniform() * total < regular_weight) {
    return online_public_[rng.uniform_index(online_public_.size())];
  }
  double target = rng.uniform() * online_hub_weight_;
  for (const auto& [id, weight] : online_hubs_) {
    target -= weight;
    if (target < 0.0) return id;
  }
  return online_hubs_.back().first;
}

bool Network::is_online(const crypto::PeerId& id) const {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) return it->second.online;
  // Remote peers are modelled always-online on foreign shards; their real
  // liveness is enforced by their home shard at delivery time.
  return !remotes_.empty() && remotes_.count(id) != 0;
}

const NodeRecord* Network::record(const crypto::PeerId& id) const {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) return &it->second;
  if (!remotes_.empty()) {
    const auto rit = remotes_.find(id);
    if (rit != remotes_.end()) return &rit->second.record;
  }
  return nullptr;
}

util::SimDuration Network::sample_latency(const crypto::PeerId& a,
                                          const crypto::PeerId& b) {
  const NodeRecord* ra = record(a);
  const NodeRecord* rb = record(b);
  const std::string ca = ra != nullptr ? ra->country : "??";
  const std::string cb = rb != nullptr ? rb->country : "??";
  return geo_.latency(ca, cb, rng_);
}

ConnectionId Network::establish(const crypto::PeerId& from,
                                const crypto::PeerId& to) {
  const ConnectionId id = next_connection_id_++;
  connections_[id] =
      Connection{from, to, scheduler_.now(), scheduler_.now(), scheduler_.now()};
  adjacency_[from][to] = id;
  adjacency_[to][from] = id;
  metrics_.connections_opened->inc();
  metrics_.open_connections->set(static_cast<double>(connections_.size()));
  track_endpoints(connections_[id], +1.0);
  return id;
}

void Network::dial(const crypto::PeerId& from, const crypto::PeerId& to,
                   std::function<void(std::optional<ConnectionId>)> on_result) {
  if (shard_coordinator_ != nullptr && nodes_.count(to) == 0) {
    dial_remote(from, to, std::move(on_result));
    return;
  }
  metrics_.dials->inc();
  // One round trip to establish (SYN + accept), sampled now for determinism.
  const util::SimDuration rtt = 2 * sample_latency(from, to);
  scheduler_.schedule_after(rtt, [this, from, to,
                                  cb = std::move(on_result)]() {
    // Conditions are re-checked at completion time: either endpoint may
    // have churned while the dial was in flight.
    if (!is_online(from) || !is_online(to)) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);
      return;
    }
    if (!isolated_.empty() && (isolated(from) || isolated(to))) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);  // partitioned endpoints cannot connect
      return;
    }
    if (from == to) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);
      return;
    }
    if (const auto existing = connection_between(from, to)) {
      if (cb) cb(existing);  // libp2p reuses the existing connection
      return;
    }
    NodeRecord& target = nodes_.at(to);
    if (target.nat) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);  // no inbound through NAT (no hole punching)
      return;
    }
    if (!target.host->accept_inbound(from)) {
      metrics_.rejects->inc();
      if (obs_.events.active()) {
        obs_.events.emit(scheduler_.now(), obs::Severity::kDebug, "net",
                         "inbound dial rejected by " + to.short_hex());
      }
      if (cb) cb(std::nullopt);
      return;
    }
    metrics_.accepts->inc();
    const ConnectionId conn = establish(from, to);
    NodeRecord& dialer = nodes_.at(from);
    dialer.host->on_connection(conn, to, /*outbound=*/true);
    // The dialer's callback may have closed the connection synchronously;
    // only notify the acceptor if it still exists.
    if (connections_.count(conn) != 0) {
      target.host->on_connection(conn, from, /*outbound=*/false);
    }
    if (cb) cb(connections_.count(conn) != 0 ? std::optional(conn)
                                             : std::nullopt);
  });
}

// --- Fault injection --------------------------------------------------------

void Network::ensure_fault_plumbing() {
  if (fault_rng_ != nullptr) return;
  fault_rng_ = std::make_unique<util::RngStream>(seed_, "network-faults");
  auto& m = obs_.metrics;
  fault_metrics_.fault_drops = &m.counter(
      "ipfsmon_net_fault_drops_total",
      "Payloads dropped by the link fault layer (loss or partition)");
  fault_metrics_.backoff_retries = &m.counter(
      "ipfsmon_net_backoff_retries_total",
      "Dial retries scheduled by dial_with_backoff after a failed attempt");
  fault_metrics_.backoff_exhausted = &m.counter(
      "ipfsmon_net_backoff_exhausted_total",
      "dial_with_backoff sequences that gave up after max_attempts");
  fault_metrics_.isolated_nodes =
      &m.gauge("ipfsmon_net_isolated_nodes",
               "Nodes currently cut off by a partition window");
}

void Network::set_link_faults(const LinkFaultProfile& profile) {
  link_faults_ = profile;
  if (link_faults_.active()) ensure_fault_plumbing();
}

void Network::enable_tracing(const obs::TracerConfig& config) {
  obs_.tracer.configure(config);
  if (!config.enabled) {
    obs_.tracer.set_sim_clock(nullptr);
    scheduler_.set_event_wrapper(nullptr);
    return;
  }
  obs_.tracer.set_sim_clock([this] { return scheduler_.now(); });
  // Timers break the synchronous call chain; re-attach the scheduling
  // context around each dispatched event so child spans keep their
  // parent. No wrapper is installed when tracing is off, so the
  // scheduler's hot path stays untouched.
  scheduler_.set_event_wrapper([this](sim::EventFn fn) {
    const obs::SpanContext ctx = obs_.tracer.current();
    if (!ctx.valid()) return fn;
    return sim::EventFn([this, ctx, fn = std::move(fn)] {
      obs::ScopedContext scope(obs_.tracer, ctx);
      fn();
    });
  });
}

void Network::isolate(const crypto::PeerId& id) {
  if (nodes_.count(id) == 0 || !isolated_.insert(id).second) return;
  ensure_fault_plumbing();
  fault_metrics_.isolated_nodes->set(static_cast<double>(isolated_.size()));
  close_all_of(id);
  if (obs_.events.active()) {
    obs_.events.emit(scheduler_.now(), obs::Severity::kWarn, "net",
                     "partition isolates " + id.short_hex());
  }
}

void Network::heal(const crypto::PeerId& id) {
  if (isolated_.erase(id) == 0) return;
  fault_metrics_.isolated_nodes->set(static_cast<double>(isolated_.size()));
  if (obs_.events.active()) {
    obs_.events.emit(scheduler_.now(), obs::Severity::kInfo, "net",
                     "partition heals " + id.short_hex());
  }
}

bool Network::isolated(const crypto::PeerId& id) const {
  return isolated_.count(id) != 0;
}

void Network::dial_with_backoff(
    const crypto::PeerId& from, const crypto::PeerId& to,
    const BackoffPolicy& policy,
    std::function<void(std::optional<ConnectionId>)> on_result) {
  ensure_fault_plumbing();
  dial_backoff_attempt(from, to, policy, /*attempt=*/1, policy.initial_delay,
                       std::move(on_result));
}

void Network::dial_backoff_attempt(
    const crypto::PeerId& from, const crypto::PeerId& to, BackoffPolicy policy,
    std::size_t attempt, util::SimDuration delay,
    std::function<void(std::optional<ConnectionId>)> on_result) {
  dial(from, to, [this, from, to, policy, attempt, delay,
                  cb = std::move(on_result)](
                     std::optional<ConnectionId> conn) mutable {
    if (conn.has_value()) {
      if (cb) cb(conn);
      return;
    }
    if (attempt >= std::max<std::size_t>(policy.max_attempts, 1)) {
      fault_metrics_.backoff_exhausted->inc();
      if (cb) cb(std::nullopt);
      return;
    }
    fault_metrics_.backoff_retries->inc();
    const double jitter =
        policy.jitter > 0.0
            ? fault_rng_->uniform(1.0 - policy.jitter, 1.0 + policy.jitter)
            : 1.0;
    const auto wait = static_cast<util::SimDuration>(
        static_cast<double>(delay) * jitter);
    auto next_delay = static_cast<util::SimDuration>(
        static_cast<double>(delay) * policy.multiplier);
    next_delay = std::min(next_delay, policy.max_delay);
    scheduler_.schedule_after(
        wait, [this, from, to, policy, attempt, next_delay,
               cb = std::move(cb)]() mutable {
          dial_backoff_attempt(from, to, policy, attempt + 1, next_delay,
                               std::move(cb));
        });
  });
}

void Network::close(ConnectionId conn) { close_conn(conn, /*notify_remote=*/true); }

void Network::close_conn(ConnectionId conn, bool notify_remote) {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return;
  const crypto::PeerId a = it->second.a;
  const crypto::PeerId b = it->second.b;
  const std::size_t remote_shard = it->second.remote_shard;
  const util::SimTime out_fifo = it->second.next_delivery_a_to_b;
  track_endpoints(it->second, -1.0);
  connections_.erase(it);
  metrics_.connections_closed->inc();
  metrics_.open_connections->set(static_cast<double>(connections_.size()));
  adjacency_[a].erase(b);
  adjacency_[b].erase(a);
  if (const NodeRecord* ra = record(a); ra != nullptr && ra->host != nullptr) {
    ra->host->on_disconnect(conn, b);
  }
  if (const NodeRecord* rb = record(b); rb != nullptr && rb->host != nullptr) {
    rb->host->on_disconnect(conn, a);
  }
  if (remote_shard != kLocalShard && notify_remote) {
    // Tear down the mirror half on the peer's home shard. The close rides
    // behind any in-flight messages on this direction (FIFO clamp) so it
    // cannot overtake them; the receiving side closes without notifying
    // back, which is what stops the two mirrors ping-ponging.
    util::SimTime when = scheduler_.now() + sample_remote_latency(a, b);
    when = std::max(when, out_fifo);
    Network* peer = resolve_shard_(remote_shard);
    shard_coordinator_->post(self_shard_, remote_shard, when,
                             [peer, a, b] { peer->deliver_remote_close(a, b); });
  }
}

void Network::close_all_of(const crypto::PeerId& id) {
  const auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return;
  std::vector<ConnectionId> to_close;
  to_close.reserve(it->second.size());
  for (const auto& [peer, conn] : it->second) to_close.push_back(conn);
  for (const ConnectionId conn : to_close) close(conn);
}

void Network::send(ConnectionId conn, const crypto::PeerId& sender,
                   PayloadPtr payload) {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return;  // raced with close: drop
  Connection& c = it->second;
  if (c.remote_shard != kLocalShard) {
    send_remote(conn, c, sender, std::move(payload));
    return;
  }
  const bool a_to_b = (sender == c.a);
  if (!a_to_b && sender != c.b) return;  // not a party to this connection
  const crypto::PeerId receiver = a_to_b ? c.b : c.a;

  // Fault layer: inert (no RNG draws, no branches beyond this check) unless
  // link faults or a partition window are active.
  if (link_faults_.active() || !isolated_.empty()) {
    if (isolated(sender) || isolated(receiver) ||
        (link_faults_.drop_probability > 0.0 &&
         fault_rng_->bernoulli(link_faults_.drop_probability))) {
      ++fault_drops_count_;
      fault_metrics_.fault_drops->inc();
      metrics_.messages_dropped->inc();
      return;
    }
  }

  util::SimDuration latency = sample_latency(sender, receiver);
  if (link_faults_.extra_delay_mean_seconds > 0.0) {
    latency += util::seconds(
        fault_rng_->exponential(link_faults_.extra_delay_mean_seconds));
  }
  metrics_.messages_sent->inc();
  metrics_.latency->observe(util::to_seconds(latency));
  util::SimTime deliver_at = scheduler_.now() + latency;
  // Enforce in-order delivery per direction (reliable stream semantics).
  util::SimTime& fifo = a_to_b ? c.next_delivery_a_to_b : c.next_delivery_b_to_a;
  if (deliver_at < fifo) deliver_at = fifo;
  fifo = deliver_at;

  scheduler_.schedule_at(
      deliver_at, [this, conn, sender, receiver, payload = std::move(payload)]() {
        // Drop if the connection died or the receiver churned in flight.
        if (connections_.count(conn) == 0) {
          metrics_.messages_dropped->inc();
          return;
        }
        const NodeRecord* r = record(receiver);
        if (r == nullptr || !r->online) {
          metrics_.messages_dropped->inc();
          return;
        }
        ++messages_delivered_;
        metrics_.messages_delivered->inc();
        metrics_.bytes_delivered->inc(payload->wire_size());
        r->host->on_message(conn, sender, payload);
      });
}

std::optional<ConnectionId> Network::connection_between(
    const crypto::PeerId& a, const crypto::PeerId& b) const {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return std::nullopt;
  const auto jt = it->second.find(b);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::vector<crypto::PeerId> Network::connected_peers(
    const crypto::PeerId& id) const {
  std::vector<crypto::PeerId> peers;
  const auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return peers;
  peers.reserve(it->second.size());
  for (const auto& [peer, conn] : it->second) peers.push_back(peer);
  return peers;
}

std::size_t Network::connection_count(const crypto::PeerId& id) const {
  const auto it = adjacency_.find(id);
  return it == adjacency_.end() ? 0 : it->second.size();
}

std::optional<crypto::PeerId> Network::remote_peer(
    ConnectionId conn, const crypto::PeerId& self) const {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return std::nullopt;
  if (it->second.a == self) return it->second.b;
  if (it->second.b == self) return it->second.a;
  return std::nullopt;
}

std::optional<util::SimTime> Network::connection_established_at(
    ConnectionId conn) const {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return std::nullopt;
  return it->second.established;
}

std::vector<crypto::PeerId> Network::online_nodes() const {
  std::vector<crypto::PeerId> out;
  for (const auto& [id, rec] : nodes_) {
    if (rec.online) out.push_back(id);
  }
  return out;
}

// --- Cross-shard routing ----------------------------------------------------

void Network::attach_shard(sim::ShardedScheduler* coordinator,
                           std::size_t self_shard,
                           std::function<Network*(std::size_t)> resolve_shard) {
  if (coordinator == nullptr || !resolve_shard) {
    throw std::invalid_argument("attach_shard: null coordinator or resolver");
  }
  shard_coordinator_ = coordinator;
  self_shard_ = self_shard;
  resolve_shard_ = std::move(resolve_shard);
  // Flooring cross-shard latencies at the coordinator's lookahead is the
  // invariant the whole conservative scheme rests on: a message sent at
  // time t arrives at >= t + lookahead, so a window of `lookahead` sim
  // time can run on every shard without hearing from the others.
  shard_link_floor_ = coordinator->lookahead();
  // Registered here, not in the constructor, so unsharded registry dumps
  // stay byte-identical to builds that never heard of sharding.
  auto& m = obs_.metrics;
  const std::string label = "shard=\"" + std::to_string(self_shard) + "\"";
  shard_metrics_.sent =
      &m.counter("ipfsmon_net_shard_messages_sent_total",
                 "Payloads sent to a peer on another shard", label);
  shard_metrics_.delivered =
      &m.counter("ipfsmon_net_shard_messages_delivered_total",
                 "Payloads delivered from a peer on another shard", label);
  shard_metrics_.dropped = &m.counter(
      "ipfsmon_net_shard_messages_dropped_total",
      "Cross-shard payloads dropped (mirror closed or receiver offline)",
      label);
  shard_metrics_.connects =
      &m.counter("ipfsmon_net_shard_connects_total",
                 "Cross-shard connections accepted on this shard", label);
}

void Network::register_remote(const crypto::PeerId& id, std::size_t home_shard,
                              const Address& addr, const std::string& country,
                              double discovery_weight) {
  if (shard_coordinator_ == nullptr) {
    throw std::invalid_argument("register_remote: attach_shard first");
  }
  auto [it, inserted] = remotes_.try_emplace(id);
  if (!inserted && it->second.dialable) return;
  const bool was_hub = !inserted && it->second.record.discovery_weight > 1.0;
  it->second.record = NodeRecord{id,      addr,    country, /*nat=*/false,
                                 /*online=*/true,  nullptr, discovery_weight};
  it->second.home_shard = home_shard;
  it->second.dialable = true;
  if (discovery_weight > 1.0 && !was_hub) {
    online_hubs_.emplace_back(id, discovery_weight);
    online_hub_weight_ += discovery_weight;
  }
}

util::SimDuration Network::sample_remote_latency(const crypto::PeerId& a,
                                                 const crypto::PeerId& b) {
  return std::max(sample_latency(a, b), shard_link_floor_);
}

void Network::dial_remote(
    const crypto::PeerId& from, const crypto::PeerId& to,
    std::function<void(std::optional<ConnectionId>)> on_result) {
  metrics_.dials->inc();
  const util::SimDuration rtt = 2 * sample_remote_latency(from, to);
  scheduler_.schedule_after(rtt, [this, from, to,
                                  cb = std::move(on_result)]() {
    if (!is_online(from) || (!isolated_.empty() && isolated(from))) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);
      return;
    }
    const auto rit = remotes_.find(to);
    if (rit == remotes_.end() || !rit->second.dialable) {
      // Address-book-only remote (learned from an inbound connect): not
      // dialable from this shard — fails exactly like dialing NAT.
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);
      return;
    }
    if (const auto existing = connection_between(from, to)) {
      if (cb) cb(existing);
      return;
    }
    metrics_.accepts->inc();
    const std::size_t home = rit->second.home_shard;
    const ConnectionId conn = establish(from, to);
    connections_[conn].remote_shard = home;
    // Notify the peer's home shard so it establishes the mirror half.
    // The notify time becomes this direction's FIFO floor: no payload can
    // arrive before (or, on a time tie, sort ahead of) the connect.
    const NodeRecord* rf = record(from);
    const util::SimTime notify_at =
        scheduler_.now() + sample_remote_latency(from, to);
    connections_[conn].next_delivery_a_to_b = notify_at;
    Network* peer = resolve_shard_(home);
    shard_coordinator_->post(
        self_shard_, home, notify_at,
        [peer, from, self = self_shard_, addr = rf->address,
         country = rf->country, to] {
          peer->deliver_remote_connect(from, self, addr, country, to);
        });
    NodeRecord& dialer = nodes_.at(from);
    dialer.host->on_connection(conn, to, /*outbound=*/true);
    if (cb) {
      cb(connections_.count(conn) != 0 ? std::optional(conn) : std::nullopt);
    }
  });
}

void Network::deliver_remote_connect(const crypto::PeerId& from,
                                     std::size_t from_shard,
                                     const Address& from_addr,
                                     const std::string& from_country,
                                     const crypto::PeerId& to) {
  // Learn the dialer's record (address-book entry, not dialable) so
  // monitors can geolocate cross-shard senders exactly like local ones.
  auto [rit, inserted] = remotes_.try_emplace(from);
  if (inserted) {
    rit->second.record = NodeRecord{from, from_addr, from_country,
                                    /*nat=*/false, /*online=*/true, nullptr,
                                    1.0};
    rit->second.home_shard = from_shard;
    rit->second.dialable = false;
  }
  const NodeRecord* target = record(to);
  const bool reachable = target != nullptr && target->host != nullptr &&
                         target->online &&
                         (isolated_.empty() || !isolated(to)) &&
                         connection_between(to, from) == std::nullopt &&
                         target->host->accept_inbound(from);
  if (!reachable) {
    // The dialer already holds a half-open mirror (it saw us as
    // always-online); tear it down so it observes a disconnect rather
    // than a silent black hole.
    Network* peer = resolve_shard_(from_shard);
    const util::SimTime when =
        scheduler_.now() + sample_remote_latency(to, from);
    shard_coordinator_->post(self_shard_, from_shard, when,
                             [peer, to, from] {
                               peer->deliver_remote_close(to, from);
                             });
    return;
  }
  shard_metrics_.connects->inc();
  const ConnectionId conn = establish(to, from);
  connections_[conn].remote_shard = from_shard;
  target->host->on_connection(conn, from, /*outbound=*/false);
}

void Network::send_remote(ConnectionId conn, Connection& c,
                          const crypto::PeerId& sender, PayloadPtr payload) {
  if (sender != c.a) return;  // the local endpoint of a mirror is always `a`
  const crypto::PeerId receiver = c.b;

  if (link_faults_.active() || !isolated_.empty()) {
    if (isolated(sender) ||
        (link_faults_.drop_probability > 0.0 &&
         fault_rng_->bernoulli(link_faults_.drop_probability))) {
      ++fault_drops_count_;
      fault_metrics_.fault_drops->inc();
      metrics_.messages_dropped->inc();
      return;
    }
  }

  util::SimDuration latency = sample_remote_latency(sender, receiver);
  if (link_faults_.extra_delay_mean_seconds > 0.0) {
    latency += util::seconds(
        fault_rng_->exponential(link_faults_.extra_delay_mean_seconds));
  }
  ++shard_sent_count_;
  metrics_.messages_sent->inc();
  shard_metrics_.sent->inc();
  metrics_.latency->observe(util::to_seconds(latency));
  util::SimTime deliver_at = scheduler_.now() + latency;
  if (deliver_at < c.next_delivery_a_to_b) deliver_at = c.next_delivery_a_to_b;
  c.next_delivery_a_to_b = deliver_at;

  Network* peer = resolve_shard_(c.remote_shard);
  shard_coordinator_->post(
      self_shard_, c.remote_shard, deliver_at,
      [peer, sender, receiver, payload = std::move(payload)] {
        peer->deliver_remote_message(sender, receiver, std::move(payload));
      });
  (void)conn;
}

void Network::deliver_remote_message(const crypto::PeerId& from,
                                     const crypto::PeerId& to,
                                     PayloadPtr payload) {
  const auto conn = connection_between(to, from);
  if (!conn.has_value()) {
    // Our mirror closed (or never established) while the payload was in
    // flight — the cross-shard analogue of a TCP reset drop.
    metrics_.messages_dropped->inc();
    shard_metrics_.dropped->inc();
    return;
  }
  const NodeRecord* r = record(to);
  if (r == nullptr || r->host == nullptr || !r->online ||
      (!isolated_.empty() && isolated(to))) {
    metrics_.messages_dropped->inc();
    shard_metrics_.dropped->inc();
    return;
  }
  ++messages_delivered_;
  metrics_.messages_delivered->inc();
  shard_metrics_.delivered->inc();
  metrics_.bytes_delivered->inc(payload->wire_size());
  r->host->on_message(*conn, from, payload);
}

void Network::deliver_remote_close(const crypto::PeerId& from,
                                   const crypto::PeerId& to) {
  const auto conn = connection_between(to, from);
  if (conn.has_value()) close_conn(*conn, /*notify_remote=*/false);
}

}  // namespace ipfsmon::net
