#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/time.hpp"

namespace ipfsmon::net {

Network::Network(sim::Scheduler& scheduler, GeoDatabase geo, std::uint64_t seed)
    : scheduler_(scheduler),
      geo_(std::move(geo)),
      rng_(seed, "network"),
      seed_(seed) {
  auto& m = obs_.metrics;
  metrics_.dials = &m.counter("ipfsmon_net_dials_total", "Dial attempts");
  metrics_.dial_failures = &m.counter(
      "ipfsmon_net_dial_failures_total",
      "Dials failed (offline/NAT/self/churn), excluding host rejections");
  metrics_.accepts = &m.counter("ipfsmon_net_accepts_total",
                                "Inbound dials accepted by the target host");
  metrics_.rejects = &m.counter("ipfsmon_net_rejects_total",
                                "Inbound dials refused by the target host");
  metrics_.connections_opened = &m.counter("ipfsmon_net_connections_opened_total",
                                           "Connections established");
  metrics_.connections_closed = &m.counter("ipfsmon_net_connections_closed_total",
                                           "Connections torn down");
  metrics_.messages_sent = &m.counter("ipfsmon_net_messages_sent_total",
                                      "Payloads submitted for delivery");
  metrics_.messages_delivered = &m.counter("ipfsmon_net_messages_delivered_total",
                                           "Payloads delivered to a host");
  metrics_.messages_dropped = &m.counter(
      "ipfsmon_net_messages_dropped_total",
      "Payloads dropped in flight (connection closed or receiver churned)");
  metrics_.bytes_delivered = &m.counter("ipfsmon_net_bytes_delivered_total",
                                        "Approximate payload bytes delivered");
  metrics_.open_connections =
      &m.gauge("ipfsmon_net_open_connections", "Currently open connections");
  metrics_.online_nodes =
      &m.gauge("ipfsmon_net_online_nodes", "Currently online nodes");
  metrics_.latency = &m.histogram(
      "ipfsmon_net_latency_seconds",
      {0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 1.0},
      "Sampled one-way message latencies");
}

obs::Gauge& Network::country_gauge(const std::string& country) {
  const auto it = country_gauges_.find(country);
  if (it != country_gauges_.end()) return *it->second;
  obs::Gauge& gauge = obs_.metrics.gauge(
      "ipfsmon_net_connection_endpoints",
      "Open connection endpoints by endpoint country",
      "country=\"" + country + "\"");
  country_gauges_.emplace(country, &gauge);
  return gauge;
}

void Network::track_endpoints(const Connection& conn, double delta) {
  const NodeRecord* ra = record(conn.a);
  const NodeRecord* rb = record(conn.b);
  country_gauge(ra != nullptr ? ra->country : "??").add(delta);
  country_gauge(rb != nullptr ? rb->country : "??").add(delta);
}

void Network::register_node(const crypto::PeerId& id, const Address& addr,
                            const std::string& country, bool nat, Host* host,
                            double discovery_weight) {
  if (host == nullptr) throw std::invalid_argument("register_node: null host");
  NodeRecord record{id,   addr, country, nat, /*online=*/false,
                    host, discovery_weight};
  nodes_[id] = record;
}

void Network::set_online(const crypto::PeerId& id, bool online) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::invalid_argument("set_online: unknown node");
  if (it->second.online == online) return;
  if (!online) close_all_of(id);
  it->second.online = online;
  metrics_.online_nodes->add(online ? 1.0 : -1.0);

  if (!it->second.nat) {
    const bool hub = it->second.discovery_weight > 1.0;
    if (online) {
      if (hub) {
        online_hubs_.emplace_back(id, it->second.discovery_weight);
        online_hub_weight_ += it->second.discovery_weight;
      } else {
        online_public_index_[id] = online_public_.size();
        online_public_.push_back(id);
      }
    } else {
      if (hub) {
        for (auto hit = online_hubs_.begin(); hit != online_hubs_.end();
             ++hit) {
          if (hit->first == id) {
            online_hub_weight_ -= hit->second;
            online_hubs_.erase(hit);
            break;
          }
        }
      } else {
        const auto idx_it = online_public_index_.find(id);
        if (idx_it != online_public_index_.end()) {
          const std::size_t idx = idx_it->second;
          online_public_index_.erase(idx_it);
          if (idx + 1 != online_public_.size()) {
            online_public_[idx] = online_public_.back();
            online_public_index_[online_public_[idx]] = idx;
          }
          online_public_.pop_back();
        }
      }
    }
  }
}

std::optional<crypto::PeerId> Network::sample_online_public(
    util::RngStream& rng) const {
  const double regular_weight = static_cast<double>(online_public_.size());
  const double total = regular_weight + online_hub_weight_;
  if (total <= 0.0) return std::nullopt;
  if (rng.uniform() * total < regular_weight) {
    return online_public_[rng.uniform_index(online_public_.size())];
  }
  double target = rng.uniform() * online_hub_weight_;
  for (const auto& [id, weight] : online_hubs_) {
    target -= weight;
    if (target < 0.0) return id;
  }
  return online_hubs_.back().first;
}

bool Network::is_online(const crypto::PeerId& id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.online;
}

const NodeRecord* Network::record(const crypto::PeerId& id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

util::SimDuration Network::sample_latency(const crypto::PeerId& a,
                                          const crypto::PeerId& b) {
  const NodeRecord* ra = record(a);
  const NodeRecord* rb = record(b);
  const std::string ca = ra != nullptr ? ra->country : "??";
  const std::string cb = rb != nullptr ? rb->country : "??";
  return geo_.latency(ca, cb, rng_);
}

ConnectionId Network::establish(const crypto::PeerId& from,
                                const crypto::PeerId& to) {
  const ConnectionId id = next_connection_id_++;
  connections_[id] =
      Connection{from, to, scheduler_.now(), scheduler_.now(), scheduler_.now()};
  adjacency_[from][to] = id;
  adjacency_[to][from] = id;
  metrics_.connections_opened->inc();
  metrics_.open_connections->set(static_cast<double>(connections_.size()));
  track_endpoints(connections_[id], +1.0);
  return id;
}

void Network::dial(const crypto::PeerId& from, const crypto::PeerId& to,
                   std::function<void(std::optional<ConnectionId>)> on_result) {
  metrics_.dials->inc();
  // One round trip to establish (SYN + accept), sampled now for determinism.
  const util::SimDuration rtt = 2 * sample_latency(from, to);
  scheduler_.schedule_after(rtt, [this, from, to,
                                  cb = std::move(on_result)]() {
    // Conditions are re-checked at completion time: either endpoint may
    // have churned while the dial was in flight.
    if (!is_online(from) || !is_online(to)) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);
      return;
    }
    if (!isolated_.empty() && (isolated(from) || isolated(to))) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);  // partitioned endpoints cannot connect
      return;
    }
    if (from == to) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);
      return;
    }
    if (const auto existing = connection_between(from, to)) {
      if (cb) cb(existing);  // libp2p reuses the existing connection
      return;
    }
    NodeRecord& target = nodes_.at(to);
    if (target.nat) {
      metrics_.dial_failures->inc();
      if (cb) cb(std::nullopt);  // no inbound through NAT (no hole punching)
      return;
    }
    if (!target.host->accept_inbound(from)) {
      metrics_.rejects->inc();
      if (obs_.events.active()) {
        obs_.events.emit(scheduler_.now(), obs::Severity::kDebug, "net",
                         "inbound dial rejected by " + to.short_hex());
      }
      if (cb) cb(std::nullopt);
      return;
    }
    metrics_.accepts->inc();
    const ConnectionId conn = establish(from, to);
    NodeRecord& dialer = nodes_.at(from);
    dialer.host->on_connection(conn, to, /*outbound=*/true);
    // The dialer's callback may have closed the connection synchronously;
    // only notify the acceptor if it still exists.
    if (connections_.count(conn) != 0) {
      target.host->on_connection(conn, from, /*outbound=*/false);
    }
    if (cb) cb(connections_.count(conn) != 0 ? std::optional(conn)
                                             : std::nullopt);
  });
}

// --- Fault injection --------------------------------------------------------

void Network::ensure_fault_plumbing() {
  if (fault_rng_ != nullptr) return;
  fault_rng_ = std::make_unique<util::RngStream>(seed_, "network-faults");
  auto& m = obs_.metrics;
  fault_metrics_.fault_drops = &m.counter(
      "ipfsmon_net_fault_drops_total",
      "Payloads dropped by the link fault layer (loss or partition)");
  fault_metrics_.backoff_retries = &m.counter(
      "ipfsmon_net_backoff_retries_total",
      "Dial retries scheduled by dial_with_backoff after a failed attempt");
  fault_metrics_.backoff_exhausted = &m.counter(
      "ipfsmon_net_backoff_exhausted_total",
      "dial_with_backoff sequences that gave up after max_attempts");
  fault_metrics_.isolated_nodes =
      &m.gauge("ipfsmon_net_isolated_nodes",
               "Nodes currently cut off by a partition window");
}

void Network::set_link_faults(const LinkFaultProfile& profile) {
  link_faults_ = profile;
  if (link_faults_.active()) ensure_fault_plumbing();
}

void Network::enable_tracing(const obs::TracerConfig& config) {
  obs_.tracer.configure(config);
  if (!config.enabled) {
    obs_.tracer.set_sim_clock(nullptr);
    scheduler_.set_event_wrapper(nullptr);
    return;
  }
  obs_.tracer.set_sim_clock([this] { return scheduler_.now(); });
  // Timers break the synchronous call chain; re-attach the scheduling
  // context around each dispatched event so child spans keep their
  // parent. No wrapper is installed when tracing is off, so the
  // scheduler's hot path stays untouched.
  scheduler_.set_event_wrapper([this](sim::EventFn fn) {
    const obs::SpanContext ctx = obs_.tracer.current();
    if (!ctx.valid()) return fn;
    return sim::EventFn([this, ctx, fn = std::move(fn)] {
      obs::ScopedContext scope(obs_.tracer, ctx);
      fn();
    });
  });
}

void Network::isolate(const crypto::PeerId& id) {
  if (nodes_.count(id) == 0 || !isolated_.insert(id).second) return;
  ensure_fault_plumbing();
  fault_metrics_.isolated_nodes->set(static_cast<double>(isolated_.size()));
  close_all_of(id);
  if (obs_.events.active()) {
    obs_.events.emit(scheduler_.now(), obs::Severity::kWarn, "net",
                     "partition isolates " + id.short_hex());
  }
}

void Network::heal(const crypto::PeerId& id) {
  if (isolated_.erase(id) == 0) return;
  fault_metrics_.isolated_nodes->set(static_cast<double>(isolated_.size()));
  if (obs_.events.active()) {
    obs_.events.emit(scheduler_.now(), obs::Severity::kInfo, "net",
                     "partition heals " + id.short_hex());
  }
}

bool Network::isolated(const crypto::PeerId& id) const {
  return isolated_.count(id) != 0;
}

void Network::dial_with_backoff(
    const crypto::PeerId& from, const crypto::PeerId& to,
    const BackoffPolicy& policy,
    std::function<void(std::optional<ConnectionId>)> on_result) {
  ensure_fault_plumbing();
  dial_backoff_attempt(from, to, policy, /*attempt=*/1, policy.initial_delay,
                       std::move(on_result));
}

void Network::dial_backoff_attempt(
    const crypto::PeerId& from, const crypto::PeerId& to, BackoffPolicy policy,
    std::size_t attempt, util::SimDuration delay,
    std::function<void(std::optional<ConnectionId>)> on_result) {
  dial(from, to, [this, from, to, policy, attempt, delay,
                  cb = std::move(on_result)](
                     std::optional<ConnectionId> conn) mutable {
    if (conn.has_value()) {
      if (cb) cb(conn);
      return;
    }
    if (attempt >= std::max<std::size_t>(policy.max_attempts, 1)) {
      fault_metrics_.backoff_exhausted->inc();
      if (cb) cb(std::nullopt);
      return;
    }
    fault_metrics_.backoff_retries->inc();
    const double jitter =
        policy.jitter > 0.0
            ? fault_rng_->uniform(1.0 - policy.jitter, 1.0 + policy.jitter)
            : 1.0;
    const auto wait = static_cast<util::SimDuration>(
        static_cast<double>(delay) * jitter);
    auto next_delay = static_cast<util::SimDuration>(
        static_cast<double>(delay) * policy.multiplier);
    next_delay = std::min(next_delay, policy.max_delay);
    scheduler_.schedule_after(
        wait, [this, from, to, policy, attempt, next_delay,
               cb = std::move(cb)]() mutable {
          dial_backoff_attempt(from, to, policy, attempt + 1, next_delay,
                               std::move(cb));
        });
  });
}

void Network::close(ConnectionId conn) {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return;
  const crypto::PeerId a = it->second.a;
  const crypto::PeerId b = it->second.b;
  track_endpoints(it->second, -1.0);
  connections_.erase(it);
  metrics_.connections_closed->inc();
  metrics_.open_connections->set(static_cast<double>(connections_.size()));
  adjacency_[a].erase(b);
  adjacency_[b].erase(a);
  if (const NodeRecord* ra = record(a); ra != nullptr && ra->host != nullptr) {
    ra->host->on_disconnect(conn, b);
  }
  if (const NodeRecord* rb = record(b); rb != nullptr && rb->host != nullptr) {
    rb->host->on_disconnect(conn, a);
  }
}

void Network::close_all_of(const crypto::PeerId& id) {
  const auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return;
  std::vector<ConnectionId> to_close;
  to_close.reserve(it->second.size());
  for (const auto& [peer, conn] : it->second) to_close.push_back(conn);
  for (const ConnectionId conn : to_close) close(conn);
}

void Network::send(ConnectionId conn, const crypto::PeerId& sender,
                   PayloadPtr payload) {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return;  // raced with close: drop
  Connection& c = it->second;
  const bool a_to_b = (sender == c.a);
  if (!a_to_b && sender != c.b) return;  // not a party to this connection
  const crypto::PeerId receiver = a_to_b ? c.b : c.a;

  // Fault layer: inert (no RNG draws, no branches beyond this check) unless
  // link faults or a partition window are active.
  if (link_faults_.active() || !isolated_.empty()) {
    if (isolated(sender) || isolated(receiver) ||
        (link_faults_.drop_probability > 0.0 &&
         fault_rng_->bernoulli(link_faults_.drop_probability))) {
      ++fault_drops_count_;
      fault_metrics_.fault_drops->inc();
      metrics_.messages_dropped->inc();
      return;
    }
  }

  util::SimDuration latency = sample_latency(sender, receiver);
  if (link_faults_.extra_delay_mean_seconds > 0.0) {
    latency += util::seconds(
        fault_rng_->exponential(link_faults_.extra_delay_mean_seconds));
  }
  metrics_.messages_sent->inc();
  metrics_.latency->observe(util::to_seconds(latency));
  util::SimTime deliver_at = scheduler_.now() + latency;
  // Enforce in-order delivery per direction (reliable stream semantics).
  util::SimTime& fifo = a_to_b ? c.next_delivery_a_to_b : c.next_delivery_b_to_a;
  if (deliver_at < fifo) deliver_at = fifo;
  fifo = deliver_at;

  scheduler_.schedule_at(
      deliver_at, [this, conn, sender, receiver, payload = std::move(payload)]() {
        // Drop if the connection died or the receiver churned in flight.
        if (connections_.count(conn) == 0) {
          metrics_.messages_dropped->inc();
          return;
        }
        const NodeRecord* r = record(receiver);
        if (r == nullptr || !r->online) {
          metrics_.messages_dropped->inc();
          return;
        }
        ++messages_delivered_;
        metrics_.messages_delivered->inc();
        metrics_.bytes_delivered->inc(payload->wire_size());
        r->host->on_message(conn, sender, payload);
      });
}

std::optional<ConnectionId> Network::connection_between(
    const crypto::PeerId& a, const crypto::PeerId& b) const {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return std::nullopt;
  const auto jt = it->second.find(b);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::vector<crypto::PeerId> Network::connected_peers(
    const crypto::PeerId& id) const {
  std::vector<crypto::PeerId> peers;
  const auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return peers;
  peers.reserve(it->second.size());
  for (const auto& [peer, conn] : it->second) peers.push_back(peer);
  return peers;
}

std::size_t Network::connection_count(const crypto::PeerId& id) const {
  const auto it = adjacency_.find(id);
  return it == adjacency_.end() ? 0 : it->second.size();
}

std::optional<crypto::PeerId> Network::remote_peer(
    ConnectionId conn, const crypto::PeerId& self) const {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return std::nullopt;
  if (it->second.a == self) return it->second.b;
  if (it->second.b == self) return it->second.a;
  return std::nullopt;
}

std::optional<util::SimTime> Network::connection_established_at(
    ConnectionId conn) const {
  const auto it = connections_.find(conn);
  if (it == connections_.end()) return std::nullopt;
  return it->second.established;
}

std::vector<crypto::PeerId> Network::online_nodes() const {
  std::vector<crypto::PeerId> out;
  for (const auto& [id, rec] : nodes_) {
    if (rec.online) out.push_back(id);
  }
  return out;
}

}  // namespace ipfsmon::net
