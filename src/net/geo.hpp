// Synthetic geography: the stand-in for the MaxMind GeoIP2 database the
// paper resolves trace IPs against (Sec. V-D, Table II). Each country owns
// disjoint IP blocks, carries a population weight, and has 2D coordinates
// from which pairwise link latencies are derived.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ipfsmon::net {

struct CountrySpec {
  std::string code;      // ISO-3166-ish code, e.g. "US"
  double node_weight;    // relative share of the node population
  double x, y;           // abstract map coordinates (roughly Mm scale)
};

/// The default world used by experiments: country weights tuned so that a
/// request-volume breakdown reproduces the shape of the paper's Table II
/// (US-dominated, followed by NL/DE/CA/FR, long tail of others).
std::vector<CountrySpec> default_world();

class GeoDatabase {
 public:
  explicit GeoDatabase(std::vector<CountrySpec> countries);

  /// Default-world database.
  static GeoDatabase standard();

  const std::vector<CountrySpec>& countries() const { return countries_; }

  /// Samples a country code according to node weights.
  const std::string& sample_country(util::RngStream& rng) const;

  /// Allocates a fresh, unique IP address inside the country's block.
  Address allocate_address(const std::string& country_code);

  /// GeoIP lookup: which country does this IP belong to? ("??" if none —
  /// mirrors GeoIP databases having unresolvable addresses.)
  std::string lookup(std::uint32_t ip) const;
  std::string lookup(const Address& addr) const { return lookup(addr.ip); }

  /// One-way propagation latency between two countries, jittered.
  /// Derived from coordinate distance plus a base hop cost.
  util::SimDuration latency(const std::string& a, const std::string& b,
                            util::RngStream& rng) const;

  /// Deterministic mean latency (no jitter), for tests.
  util::SimDuration mean_latency(const std::string& a,
                                 const std::string& b) const;

  /// Lower bound on any latency() sample between known countries: the
  /// smallest pairwise mean times the jitter floor (0.9). The sharded
  /// coordinator uses this as one input to its conservative lookahead —
  /// no cross-shard message can arrive sooner than this.
  util::SimDuration min_latency() const;

  /// Offsets every subsequently allocated host number by `host_offset`.
  /// Sharded runs give each shard a disjoint slab of every country's /8
  /// block (shard * 2^20) so addresses stay globally unique without
  /// cross-shard coordination. Call before any allocation.
  void set_address_offset(std::uint32_t host_offset);

 private:
  const CountrySpec* find(const std::string& code) const;

  std::vector<CountrySpec> countries_;
  std::vector<double> weights_;
  // Country index -> next host counter for IP allocation; each country i
  // owns the /8 blocks starting at (10 + i) << 24 (one /8 ≈ 16.7M hosts,
  // far above any simulated population).
  std::vector<std::uint32_t> next_host_;
  std::unordered_map<std::uint32_t, std::size_t> block_to_country_;
};

}  // namespace ipfsmon::net
