// Network addresses in the simulated overlay: IPv4 + TCP port, with a
// multiaddr-style string form for display and trace output.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ipfsmon::net {

struct Address {
  std::uint32_t ip = 0;   // host byte order
  std::uint16_t port = 4001;  // IPFS default swarm port

  /// Dotted-quad "a.b.c.d".
  std::string ip_string() const;

  /// Multiaddr-style "/ip4/a.b.c.d/tcp/port".
  std::string to_string() const;

  /// Parses the multiaddr-style form produced by to_string().
  static std::optional<Address> from_string(std::string_view text);

  auto operator<=>(const Address&) const = default;
};

}  // namespace ipfsmon::net

namespace std {
template <>
struct hash<ipfsmon::net::Address> {
  size_t operator()(const ipfsmon::net::Address& a) const noexcept {
    return (static_cast<size_t>(a.ip) << 16) ^ a.port;
  }
};
}  // namespace std
