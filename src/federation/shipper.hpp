// Monitor-side segment shipper: watches a spill TraceStore directory and
// streams every sealed segment (plus its rollup sidecar) to a federation
// coordinator over the FMON protocol.
//
// Sealing is detected the same way crash recovery detects it — a
// "seg-*.seg" file whose footer validates. The in-flight tail a
// SegmentWriter is still appending to does not exist on disk yet (segments
// are published by rename), so the shipper can poll a live spill directory
// without coordination. Delivery is at-least-once and resumable: on every
// (re)connect the coordinator's HELLO_ACK reports what already landed, so
// a restarted shipper — or one whose monitor crashed and recovered — only
// ships the gap. Reconnects use capped exponential backoff mirroring
// churn's dial_with_backoff semantics, in wall-clock time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "federation/protocol.hpp"

namespace ipfsmon::federation {

/// Wall-clock twin of net::BackoffPolicy (the sim-time reconnect
/// discipline churn::dial_with_backoff applies to overlay dials).
struct WallBackoff {
  int initial_delay_ms = 100;
  double multiplier = 2.0;
  int max_delay_ms = 5000;
  /// Connect attempts per ship_pending() call (first try included);
  /// 0 behaves like 1. The start() loop retries forever regardless, with
  /// this policy shaping the delays.
  std::size_t max_attempts = 6;
};

struct ShipperOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t monitor_id = 0;
  std::string vantage = "default";
  /// Directory re-scan cadence of the background loop.
  int poll_interval_ms = 100;
  /// SO_RCVTIMEO/SNDTIMEO + connect timeout per socket operation.
  int io_timeout_ms = 5000;
  WallBackoff reconnect;
};

/// Monotonic shipper counters (snapshot via Shipper::stats()).
struct ShipperStats {
  std::uint64_t segments_shipped = 0;  // SEGMENT frames sent
  std::uint64_t segments_landed = 0;   // acked as landed
  std::uint64_t duplicates = 0;        // acked as already-held
  std::uint64_t rejected = 0;          // failed coordinator verification
  std::uint64_t bytes_shipped = 0;     // segment + rollup payload bytes
  std::uint64_t connects = 0;          // successful handshakes
  std::uint64_t connect_failures = 0;  // dial/handshake attempts that failed
  std::int64_t last_ack_wall_us = 0;   // wall time of the latest ack
};

class Shipper {
 public:
  Shipper(std::string store_dir, ShipperOptions options);
  ~Shipper();
  Shipper(const Shipper&) = delete;
  Shipper& operator=(const Shipper&) = delete;

  /// One synchronous pass: connect (backoff per options.reconnect),
  /// handshake, ship every sealed segment the coordinator does not hold,
  /// close. True when the store and the coordinator agree afterwards.
  /// Not to be mixed with a running start() loop.
  bool ship_pending(std::string* error = nullptr);

  /// Starts the background loop: keep one connection open, re-scan the
  /// store every poll_interval_ms, ship new segments as they seal, and
  /// reconnect with exponential backoff when the coordinator goes away.
  void start();

  /// Stops and joins the background loop. Idempotent.
  void stop();

  ShipperStats stats() const;

  /// Replication-lag samples in microseconds (segment file mtime → ack),
  /// drained destructively — the federation bench's p50/p99 source.
  std::vector<std::int64_t> drain_lag_samples();

  const std::string& store_dir() const { return store_dir_; }
  const ShipperOptions& options() const { return options_; }

 private:
  /// Sealed segments on disk right now, name-sorted: (file, checksum).
  std::vector<SegmentIdentity> scan_sealed() const;

  /// Dials + HELLO/HELLO_ACK. Returns the connected fd (and fills
  /// `landed`) or -1. One attempt; the callers own retry policy.
  int connect_once(std::vector<SegmentIdentity>* landed, std::string* error);

  /// Ships one segment over `fd` and waits for its ack. False on any
  /// connection-level failure (the segment stays pending).
  bool ship_segment(int fd, const SegmentIdentity& segment,
                    std::string* error);

  void run_loop();

  /// Interruptible sleep; returns false when stop() was requested.
  bool sleep_ms(int ms);

  std::string store_dir_;
  ShipperOptions options_;

  mutable std::mutex mu_;  // guards stats_, lag_samples_, acked_
  ShipperStats stats_;
  std::vector<std::int64_t> lag_samples_;
  /// Segments known landed (from HELLO_ACK + our acks): file → checksum.
  std::unordered_map<std::string, std::uint64_t> acked_;

  std::thread loop_;
  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace ipfsmon::federation
