#include "federation/shipper.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "tracestore/rollup.hpp"

namespace fs = std::filesystem;

namespace ipfsmon::federation {

namespace {

/// Reads a whole file into `out`; false when absent or unreadable.
bool slurp(const std::string& path, util::Bytes* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return false;
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(out->size()));
  return static_cast<bool>(in);
}

}  // namespace

Shipper::Shipper(std::string store_dir, ShipperOptions options)
    : store_dir_(std::move(store_dir)), options_(std::move(options)) {}

Shipper::~Shipper() { stop(); }

std::vector<SegmentIdentity> Shipper::scan_sealed() const {
  std::vector<SegmentIdentity> sealed;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(store_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!valid_segment_name(name)) continue;
    std::string error;
    // A footer that validates marks the segment as sealed; the torn tail
    // of a crashed writer (or a file mid-rename) simply fails here and is
    // picked up on a later scan once recovery or the writer settles it.
    const auto footer =
        tracestore::read_segment_footer(entry.path().string(), &error);
    if (!footer) continue;
    sealed.push_back({name, footer->body_checksum});
  }
  std::sort(sealed.begin(), sealed.end(),
            [](const SegmentIdentity& a, const SegmentIdentity& b) {
              return a.file < b.file;
            });
  return sealed;
}

int Shipper::connect_once(std::vector<SegmentIdentity>* landed,
                          std::string* error) {
  const int fd =
      tcp_connect(options_.host, options_.port, options_.io_timeout_ms, error);
  if (fd < 0) return -1;
  HelloMsg hello;
  hello.monitor_id = options_.monitor_id;
  hello.vantage = options_.vantage;
  if (!write_frame(fd, FrameType::kHello, encode(hello), error)) {
    ::close(fd);
    return -1;
  }
  const auto frame = read_frame(fd, error);
  if (!frame || frame->type != FrameType::kHelloAck) {
    if (error != nullptr && frame) *error = "unexpected frame, wanted ack";
    ::close(fd);
    return -1;
  }
  auto ack = decode_hello_ack(frame->payload);
  if (!ack) {
    if (error != nullptr) *error = "malformed hello ack";
    ::close(fd);
    return -1;
  }
  *landed = std::move(ack->landed);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.connects;
  for (const auto& segment : *landed) {
    acked_[segment.file] = segment.checksum;
  }
  return fd;
}

bool Shipper::ship_segment(int fd, const SegmentIdentity& segment,
                           std::string* error) {
  const std::string path = (fs::path(store_dir_) / segment.file).string();
  SegmentMsg msg;
  msg.file = segment.file;
  msg.sealed_wall_us = file_mtime_unix_us(path);
  if (!slurp(path, &msg.segment_bytes)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::string footer_error;
  const auto footer = tracestore::read_segment_footer(path, &footer_error);
  if (!footer) {
    // Sealed at scan time but unreadable now — treat as connection-level
    // noise; the next scan re-decides.
    if (error != nullptr) *error = path + ": " + footer_error;
    return false;
  }
  msg.body_checksum = footer->body_checksum;
  msg.entry_count = footer->entry_count;
  msg.min_time = footer->min_time;
  msg.max_time = footer->max_time;
  // The rollup sidecar is derived data: ship it when present so the
  // coordinator serves rollup-first, but its absence is not an error.
  slurp(tracestore::rollup_path_for(path), &msg.rollup_bytes);

  const std::uint64_t payload_bytes =
      msg.segment_bytes.size() + msg.rollup_bytes.size();
  if (!write_frame(fd, FrameType::kSegment, encode(msg), error)) return false;
  const auto frame = read_frame(fd, error);
  if (!frame || frame->type != FrameType::kSegmentAck) return false;
  const auto ack = decode_segment_ack(frame->payload);
  if (!ack || ack->segment.file != segment.file) {
    if (error != nullptr) *error = "malformed segment ack";
    return false;
  }

  const std::int64_t now_us = unix_micros_now();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.segments_shipped;
  stats_.bytes_shipped += payload_bytes;
  stats_.last_ack_wall_us = now_us;
  switch (ack->status) {
    case AckStatus::kLanded:
      ++stats_.segments_landed;
      if (msg.sealed_wall_us > 0) {
        lag_samples_.push_back(now_us - msg.sealed_wall_us);
      }
      break;
    case AckStatus::kDuplicate: ++stats_.duplicates; break;
    case AckStatus::kRejected: ++stats_.rejected; break;
  }
  // Rejected segments are remembered too: the coordinator will never take
  // them, so re-shipping every poll would only burn bandwidth.
  acked_[segment.file] = segment.checksum;
  return true;
}

bool Shipper::ship_pending(std::string* error) {
  std::vector<SegmentIdentity> landed;
  int fd = -1;
  int delay_ms = options_.reconnect.initial_delay_ms;
  const std::size_t attempts = std::max<std::size_t>(
      std::size_t{1}, options_.reconnect.max_attempts);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (!sleep_ms(delay_ms)) return false;
      delay_ms = std::min(
          options_.reconnect.max_delay_ms,
          static_cast<int>(delay_ms * options_.reconnect.multiplier));
    }
    fd = connect_once(&landed, error);
    if (fd >= 0) break;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.connect_failures;
  }
  if (fd < 0) return false;

  bool ok = true;
  for (const auto& segment : scan_sealed()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = acked_.find(segment.file);
      if (it != acked_.end() && it->second == segment.checksum) continue;
    }
    if (!ship_segment(fd, segment, error)) {
      ok = false;
      break;
    }
  }
  ::close(fd);
  return ok;
}

void Shipper::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);
  loop_ = std::thread([this] { run_loop(); });
}

void Shipper::stop() {
  if (!running_.load() && !loop_.joinable()) return;
  stopping_.store(true);
  wake_.notify_all();
  if (loop_.joinable()) loop_.join();
  running_.store(false);
}

void Shipper::run_loop() {
  int fd = -1;
  int delay_ms = options_.reconnect.initial_delay_ms;
  while (!stopping_.load()) {
    if (fd < 0) {
      std::vector<SegmentIdentity> landed;
      std::string error;
      fd = connect_once(&landed, &error);
      if (fd < 0) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.connect_failures;
        }
        if (!sleep_ms(delay_ms)) break;
        delay_ms = std::min(
            options_.reconnect.max_delay_ms,
            static_cast<int>(delay_ms * options_.reconnect.multiplier));
        continue;
      }
      delay_ms = options_.reconnect.initial_delay_ms;
    }
    bool failed = false;
    for (const auto& segment : scan_sealed()) {
      if (stopping_.load()) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = acked_.find(segment.file);
        if (it != acked_.end() && it->second == segment.checksum) continue;
      }
      std::string error;
      if (!ship_segment(fd, segment, &error)) {
        failed = true;
        break;
      }
    }
    if (failed) {
      ::close(fd);
      fd = -1;
      continue;  // reconnect (with fresh watermarks) right away
    }
    if (!sleep_ms(options_.poll_interval_ms)) break;
  }
  if (fd >= 0) ::close(fd);
}

bool Shipper::sleep_ms(int ms) {
  std::unique_lock<std::mutex> lock(wake_mu_);
  wake_.wait_for(lock, std::chrono::milliseconds(ms),
                 [this] { return stopping_.load(); });
  return !stopping_.load();
}

ShipperStats Shipper::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::int64_t> Shipper::drain_lag_samples() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::int64_t> out;
  out.swap(lag_samples_);
  return out;
}

}  // namespace ipfsmon::federation
