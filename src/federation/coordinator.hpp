// The federation coordinator: accepts FMON connections from vantage-point
// shippers and lands their sealed segments in per-monitor store
// subdirectories under one root:
//
//   <root>/FEDERATION          federated manifest (text, atomic rename)
//   <root>/m-<id>/             one TraceStore directory per monitor
//   <root>/m-<id>/MANIFEST     rewritten after every landed segment
//
// Landing is verify-then-publish: the shipped bytes are written to a
// "<name>.tmp" file, the segment's footer *and* body FNV checksums are
// re-verified on the receiving side (never trust the wire), and only a
// fully valid segment is renamed into place and added to the monitor's
// manifest. Receives are idempotent, keyed by body checksum — a re-shipped
// segment (at-least-once delivery) is acked as a duplicate and changes
// nothing on disk; the same file name with a *different* checksum is a
// divergent monitor and is rejected permanently.
//
// Restart recovery mirrors the monitor side: start() runs
// recover_store_dir() over every m-<id> directory, so a coordinator
// crash mid-land leaves at worst a *.tmp file (deleted) or a torn segment
// (quarantined as *.torn) and the HELLO_ACK watermarks simply stop before
// the lost segment — the shipper re-ships the gap.
//
// Thread-safety: each connection runs on its own thread. A per-monitor
// mutex serializes landing for one monitor (two shippers with the same id
// cannot interleave), different monitors land concurrently. The metrics
// registry is obs's deliberately single-threaded one, so the coordinator
// guards it with its own mutex and exposes a rendered snapshot via
// metrics_text() — the query engine appends it at /metrics render time.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "federation/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "tracestore/store.hpp"

namespace ipfsmon::federation {

struct CoordinatorOptions {
  /// Bind address; tests and the bench stay on loopback.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; port() reports the bound port either way.
  std::uint16_t port = 0;
  /// SO_RCVTIMEO/SNDTIMEO per socket operation (idle connections are
  /// poll()ed and never hit this).
  int io_timeout_ms = 5000;
  int accept_backlog = 16;
  /// Store options for monitor-dir recovery and landed-segment
  /// verification. shared_validation is overridden with the coordinator's
  /// own cache so serving stores can reuse it.
  tracestore::StoreOptions store;
  /// Span tracing of land operations (inert by default).
  obs::TracerConfig tracing;
};

/// One federated monitor's provenance row (/v1/monitors).
struct MonitorInfo {
  std::uint32_t id = 0;
  std::string vantage;
  std::string dir;  // absolute per-monitor store directory
  std::uint64_t segments = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;  // segment file bytes on disk
  /// Ship/ack watermark: unix wall micros when the latest segment landed
  /// (restored from the FEDERATION manifest across restarts).
  std::int64_t last_ship_wall_us = 0;
  /// Replication lag of the latest landed segment (land − sealed), µs.
  std::int64_t last_lag_us = 0;
};

/// A landed segment with its provenance — the /v1/segments "sources" rows.
struct LandedSegment {
  std::uint32_t monitor_id = 0;
  std::string vantage;
  std::string file;
  tracestore::SegmentFooter footer;
};

class Coordinator {
 public:
  /// Creates/recovers `root`, binds the listening socket, and starts the
  /// accept loop. Returns nullptr (with `error`) when the root directory
  /// or the socket is unusable.
  static std::unique_ptr<Coordinator> start(const std::string& root,
                                            CoordinatorOptions options = {},
                                            std::string* error = nullptr);

  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Stops accepting, drains connection threads. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }
  const std::string& root() const { return root_; }

  /// Known monitors ordered by id.
  std::vector<MonitorInfo> monitors() const;

  /// Every landed segment with provenance, ordered by (monitor id, file).
  std::vector<LandedSegment> landed_segments() const;

  /// Absolute per-monitor store directories ordered by monitor id — the
  /// deterministic input order for unify (ties in the k-way merge break by
  /// input index, so this ordering is part of the output contract).
  std::vector<std::string> store_dirs() const;

  /// Bumped once per landed segment; the serving layer re-unifies only
  /// when this moved.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Prometheus text of the coordinator's registry (segments landed,
  /// bytes replicated, lag watermarks, validation cache hits).
  std::string metrics_text() const;

  /// Verified-segment cache, populated as segments land. Serving stores
  /// opened with StoreOptions::shared_validation pointing here skip the
  /// body-checksum re-validation pass.
  tracestore::ValidationCache& validation_cache() { return validated_; }

  obs::Tracer& tracer() { return tracer_; }

  /// Notes from startup recovery (torn segments quarantined, tmp files
  /// removed) — surfaced for logs/tests.
  const std::vector<std::string>& recovery_notes() const {
    return recovery_notes_;
  }

 private:
  struct MonitorState {
    std::uint32_t id = 0;
    std::string dir;  // absolute

    mutable std::mutex mu;  // serializes landing for this monitor
    std::string vantage;
    /// Manifest rows, sorted by file name (segment index order).
    std::vector<std::pair<std::string, tracestore::SegmentFooter>> segments;
    /// Idempotence map: file → body checksum (includes rejected names).
    std::unordered_map<std::string, std::uint64_t> landed;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    std::int64_t last_ship_wall_us = 0;
    std::int64_t last_lag_us = 0;
  };

  Coordinator(std::string root, CoordinatorOptions options);

  bool init(std::string* error);
  bool recover_monitors(std::string* error);
  bool listen_socket(std::string* error);
  void accept_loop();
  void handle_connection(int fd);

  /// Finds/creates the monitor's state + directory and fills the
  /// HELLO_ACK watermarks. Null when the hello is invalid.
  MonitorState* handle_hello(const HelloMsg& msg, HelloAckMsg* ack);

  AckStatus land_segment(MonitorState& monitor, SegmentMsg&& msg);

  /// Rewrites <root>/FEDERATION from current state (atomic rename).
  /// Takes mu_ and each monitor's mutex in turn; the caller must hold
  /// neither.
  void write_federation_manifest() const;

  obs::Counter& counter(std::string_view name, std::string_view help,
                        std::string_view labels = {});

  std::string root_;
  CoordinatorOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  mutable std::mutex mu_;  // guards monitors_ map shape + manifest writes
  std::map<std::uint32_t, std::unique_ptr<MonitorState>> monitors_;

  mutable std::mutex metrics_mu_;  // registry is single-threaded by design
  mutable obs::MetricsRegistry registry_;
  mutable std::uint64_t mirrored_validation_hits_ = 0;

  tracestore::ValidationCache validated_;
  obs::Tracer tracer_;
  std::atomic<std::uint64_t> generation_{0};
  std::vector<std::string> recovery_notes_;

  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::vector<std::thread> conn_threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
};

}  // namespace ipfsmon::federation
