// FederatedService: the coordinator-mode serving stack. Owns a
// Coordinator (landing segments from shippers), materializes the unified
// store, and serves it through a query::QueryService:
//
//   <root>/m-<id>/          per-monitor stores (written by the coordinator)
//   <root>/unified/         unify_to_store() output over the m-* stores
//   <root>/unified/UNIFIED_SOURCE   input fingerprint of the build
//
// Unification is the paper's Sec. IV-B dedup (5 s inter-monitor window by
// default) run out-of-core over the per-monitor stores in monitor-id
// order — the same deterministic input order the byte-identity property
// requires. refresh() re-unifies only when the coordinator landed new
// segments since the served store was built (tracked via UNIFIED_SOURCE),
// then reloads the engine so the manifest fingerprint — and with it every
// cached answer — rolls over.
//
// The service implements query::FederationSource, so the engine serves
// /v1/monitors, provenance sources on /v1/segments, and the coordinator's
// metrics on /metrics without depending on this layer.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "federation/coordinator.hpp"
#include "query/engine.hpp"
#include "trace/preprocess.hpp"

namespace ipfsmon::federation {

struct FederatedOptions {
  CoordinatorOptions coordinator;
  query::QueryOptions query;
  /// Dedup windows for unification; defaults match the paper (5 s
  /// inter-monitor, 31 s rebroadcast).
  trace::PreprocessOptions preprocess;
};

class FederatedService : public query::FederationSource {
 public:
  /// Starts the coordinator on `root`, builds (or reuses) the unified
  /// store, and opens the query service over it.
  static std::unique_ptr<FederatedService> start(const std::string& root,
                                                 FederatedOptions options = {},
                                                 std::string* error = nullptr);

  ~FederatedService() override;
  FederatedService(const FederatedService&) = delete;
  FederatedService& operator=(const FederatedService&) = delete;

  Coordinator& coordinator() { return *coordinator_; }
  query::QueryService& query() { return *query_; }

  /// Re-unifies when new segments landed and reloads the engine. Cheap
  /// when nothing changed. Returns false only on a build/reload failure.
  bool refresh(std::string* error = nullptr);

  /// The served unified store directory ("<root>/unified").
  const std::string& unified_dir() const { return unified_dir_; }

  // query::FederationSource
  std::vector<query::FederationSource::Monitor> monitors() override;
  std::vector<query::FederationSource::SegmentSource> segment_sources()
      override;
  std::string metrics_text() override;

 private:
  FederatedService() = default;

  /// Rebuilds <root>/unified from the per-monitor stores when the landed
  /// segment set differs from UNIFIED_SOURCE. Sets `*rebuilt` accordingly.
  bool unify_if_changed(bool* rebuilt, std::string* error);

  std::string root_;
  std::string unified_dir_;
  FederatedOptions options_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<query::QueryService> query_;
  std::mutex refresh_mu_;  // serializes unify/reload cycles
};

}  // namespace ipfsmon::federation
