// The monitor→coordinator replication wire protocol: length-prefixed,
// checksummed binary frames over TCP. A shipper opens one connection,
// introduces itself (HELLO: monitor id + vantage label), learns what the
// coordinator already holds for it (HELLO_ACK: landed segment watermarks),
// then streams sealed segment files + rollup sidecars (SEGMENT) and waits
// for per-segment acknowledgements (SEGMENT_ACK). Delivery is
// at-least-once; receives are idempotent because every segment is keyed by
// its body checksum — re-shipping an already-landed segment is answered
// with a duplicate ack and changes nothing on disk.
//
// Frame layout (all integers little-endian):
//   [u32 magic "FMON"][u16 version][u16 type]
//   [u64 payload_len][u64 payload_checksum (FNV-1a 64, seed 0)]
//   [payload bytes]
//
// The 24-byte header is validated before the payload is read; a checksum
// mismatch, an unknown version, or an oversized length terminates the
// connection instead of poisoning the store. Message payloads are
// varint-packed (same conventions as the segment footer encoding), so the
// protocol has no alignment or struct-layout dependency between builds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tracestore/segment.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace ipfsmon::federation {

constexpr std::uint32_t kFrameMagic = 0x4e4f4d46;  // "FMON"
constexpr std::uint16_t kProtocolVersion = 1;
/// Hard cap on one frame's payload; a segment comfortably fits (segments
/// roll at 2^18 entries), anything bigger is a corrupt or hostile length.
constexpr std::uint64_t kMaxFramePayload = 256ull * 1024 * 1024;

enum class FrameType : std::uint16_t {
  kHello = 1,
  kHelloAck = 2,
  kSegment = 3,
  kSegmentAck = 4,
};

/// Identity of one landed segment: its store-relative file name plus the
/// body checksum from its footer. The checksum is the idempotence key —
/// the same file name with a different checksum is a divergent monitor,
/// never a silent overwrite.
struct SegmentIdentity {
  std::string file;
  std::uint64_t checksum = 0;

  bool operator==(const SegmentIdentity&) const = default;
};

/// Shipper → coordinator, first frame on every connection.
struct HelloMsg {
  std::uint32_t monitor_id = 0;
  std::string vantage;  // [A-Za-z0-9_-]+, e.g. "us-east"
};

/// Coordinator → shipper: everything already landed for this monitor, so a
/// restarted shipper resumes from the coordinator's watermark instead of
/// re-shipping the whole store.
struct HelloAckMsg {
  std::vector<SegmentIdentity> landed;
};

/// Shipper → coordinator: one sealed segment file (raw bytes, shipped
/// verbatim — the coordinator re-verifies the embedded FNV checksums on
/// receipt) plus its rollup sidecar when one exists.
struct SegmentMsg {
  std::string file;
  std::uint64_t body_checksum = 0;
  std::uint64_t entry_count = 0;
  util::SimTime min_time = 0;
  util::SimTime max_time = 0;
  /// When the segment was sealed (file mtime), wall-clock microseconds;
  /// the coordinator's replication-lag watermark is land time minus this.
  std::int64_t sealed_wall_us = 0;
  util::Bytes segment_bytes;
  util::Bytes rollup_bytes;  // empty = no sidecar shipped
};

enum class AckStatus : std::uint8_t {
  kLanded = 0,     ///< verified and persisted
  kDuplicate = 1,  ///< already held with the same checksum (idempotent)
  kRejected = 2,   ///< failed verification; the shipper should not retry
};

std::string_view to_string(AckStatus status);

/// Coordinator → shipper, one per SEGMENT frame, in order.
struct SegmentAckMsg {
  SegmentIdentity segment;
  AckStatus status = AckStatus::kLanded;
};

/// True when `label` is a valid vantage label ([A-Za-z0-9_-]{1,64}).
bool valid_vantage(std::string_view label);

/// True when `name` looks like a store segment file ("seg-NNNNNN.seg") —
/// the only names a coordinator will write under a monitor directory.
bool valid_segment_name(std::string_view name);

// --- Message payload codecs -------------------------------------------------

util::Bytes encode(const HelloMsg& msg);
util::Bytes encode(const HelloAckMsg& msg);
util::Bytes encode(const SegmentMsg& msg);
util::Bytes encode(const SegmentAckMsg& msg);

std::optional<HelloMsg> decode_hello(util::BytesView payload);
std::optional<HelloAckMsg> decode_hello_ack(util::BytesView payload);
std::optional<SegmentMsg> decode_segment(util::BytesView payload);
std::optional<SegmentAckMsg> decode_segment_ack(util::BytesView payload);

// --- Socket framing ---------------------------------------------------------

/// One decoded frame: type + verified payload.
struct Frame {
  FrameType type = FrameType::kHello;
  util::Bytes payload;
};

/// Writes header + payload; false on any short/failed write.
bool write_frame(int fd, FrameType type, util::BytesView payload,
                 std::string* error = nullptr);

/// Reads and validates one frame (magic, version, length cap, payload
/// checksum). Returns nullopt on EOF, timeout, or any validation failure —
/// the caller must treat the connection as dead either way.
std::optional<Frame> read_frame(int fd, std::string* error = nullptr);

/// Blocking TCP connect with a real connect timeout (non-blocking connect +
/// poll), then SO_RCVTIMEO/SNDTIMEO and TCP_NODELAY on the resulting fd.
/// Returns -1 and sets `error` on failure.
int tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms,
                std::string* error = nullptr);

/// CLOCK_REALTIME microseconds — the one clock shipper and coordinator
/// processes share, so replication lag (land time minus segment mtime) is
/// meaningful across process boundaries. (obs::wall_micros_now() is
/// steady-clock and process-relative; it cannot cross processes.)
std::int64_t unix_micros_now();

/// A file's mtime in CLOCK_REALTIME microseconds (0 when unreadable).
std::int64_t file_mtime_unix_us(const std::string& path);

}  // namespace ipfsmon::federation
