#include "federation/federated.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "tracestore/merge.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace ipfsmon::federation {

namespace {

void fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

std::unique_ptr<FederatedService> FederatedService::start(
    const std::string& root, FederatedOptions options, std::string* error) {
  std::unique_ptr<FederatedService> service(new FederatedService());
  service->root_ = root;
  service->unified_dir_ = (fs::path(root) / "unified").string();
  service->options_ = std::move(options);
  service->coordinator_ =
      Coordinator::start(root, service->options_.coordinator, error);
  if (service->coordinator_ == nullptr) return nullptr;

  bool rebuilt = false;
  if (!service->unify_if_changed(&rebuilt, error)) return nullptr;

  // Landed segments were body-verified by the coordinator; sharing its
  // validation cache lets the serving store skip the re-validation pass
  // and keeps the cache warm across reload() cycles.
  service->options_.query.store.shared_validation =
      &service->coordinator_->validation_cache();
  service->query_ = query::QueryService::open(service->unified_dir_,
                                              service->options_.query, error);
  if (service->query_ == nullptr) return nullptr;
  service->query_->attach_federation(service.get());
  return service;
}

FederatedService::~FederatedService() {
  // The engine holds a FederationSource pointer to *this; take it down
  // before the members it reaches into disappear.
  if (coordinator_ != nullptr) coordinator_->stop();
  query_.reset();
  coordinator_.reset();
}

bool FederatedService::refresh(std::string* error) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  bool rebuilt = false;
  if (!unify_if_changed(&rebuilt, error)) return false;
  if (!rebuilt) return true;
  return query_->reload(error);
}

bool FederatedService::unify_if_changed(bool* rebuilt, std::string* error) {
  *rebuilt = false;
  // The build fingerprint is the full landed-segment set with checksums:
  // same inputs ⇒ same unified store (the merge is deterministic), so a
  // matching UNIFIED_SOURCE means the served store is already current.
  const auto landed = coordinator_->landed_segments();
  std::string fingerprint = "ipfsmon-unified v1\n";
  for (const auto& row : landed) {
    fingerprint += util::format(
        "m-%u/%s %016llx\n", row.monitor_id, row.file.c_str(),
        static_cast<unsigned long long>(row.footer.body_checksum));
  }
  const std::string marker =
      (fs::path(unified_dir_) / "UNIFIED_SOURCE").string();
  std::error_code ec;
  if (fs::exists(fs::path(unified_dir_) / "MANIFEST", ec) &&
      read_text_file(marker) == fingerprint) {
    return true;
  }

  tracestore::StoreOptions input_options = options_.query.store;
  input_options.obs = nullptr;
  input_options.shared_validation = &coordinator_->validation_cache();
  std::vector<std::optional<tracestore::TraceStore>> stores;
  std::vector<const tracestore::TraceStore*> inputs;
  // store_dirs() is ordered by monitor id; the k-way merge breaks
  // timestamp ties by input index, so this order is part of the
  // byte-identity contract. Monitors that landed nothing yet have no
  // MANIFEST and contribute nothing — skip them.
  for (const auto& dir : coordinator_->store_dirs()) {
    const bool has_segments =
        std::any_of(landed.begin(), landed.end(), [&](const auto& row) {
          return fs::path(dir).filename().string() ==
                 util::format("m-%u", row.monitor_id);
        });
    if (!has_segments) continue;
    auto store = tracestore::TraceStore::open(dir, input_options, error);
    if (!store) {
      fail(error, "cannot open monitor store " + dir +
                      (error != nullptr ? ": " + *error : ""));
      return false;
    }
    stores.push_back(std::move(store));
  }
  for (const auto& store : stores) inputs.push_back(&*store);

  tracestore::StoreOptions output_options = options_.query.store;
  output_options.obs = nullptr;
  output_options.shared_validation = nullptr;
  auto writer =
      tracestore::SegmentWriter::create(unified_dir_, output_options, error);
  if (writer == nullptr) return false;
  tracestore::unify_to_store(inputs, *writer, options_.preprocess);
  if (!writer->finalize()) {
    fail(error, "finalizing unified store failed");
    return false;
  }

  const std::string tmp = marker + ".tmp";
  std::ofstream out(tmp, std::ios::trunc);
  out << fingerprint;
  out.flush();
  if (!out) {
    fail(error, "cannot write " + tmp);
    return false;
  }
  out.close();
  fs::rename(tmp, marker, ec);
  if (ec) {
    fail(error, "cannot publish " + marker + ": " + ec.message());
    return false;
  }
  *rebuilt = true;
  return true;
}

std::vector<query::FederationSource::Monitor> FederatedService::monitors() {
  std::vector<query::FederationSource::Monitor> out;
  for (const auto& info : coordinator_->monitors()) {
    query::FederationSource::Monitor monitor;
    monitor.id = info.id;
    monitor.vantage = info.vantage;
    monitor.segments = info.segments;
    monitor.entries = info.entries;
    monitor.bytes = info.bytes;
    monitor.last_ship_wall_us = info.last_ship_wall_us;
    monitor.last_lag_us = info.last_lag_us;
    out.push_back(std::move(monitor));
  }
  return out;
}

std::vector<query::FederationSource::SegmentSource>
FederatedService::segment_sources() {
  std::vector<query::FederationSource::SegmentSource> out;
  for (const auto& row : coordinator_->landed_segments()) {
    query::FederationSource::SegmentSource source;
    source.monitor_id = row.monitor_id;
    source.vantage = row.vantage;
    source.file = row.file;
    source.entries = row.footer.entry_count;
    source.min_time = row.footer.min_time;
    source.max_time = row.footer.max_time;
    source.checksum = row.footer.body_checksum;
    out.push_back(std::move(source));
  }
  return out;
}

std::string FederatedService::metrics_text() {
  return coordinator_->metrics_text();
}

}  // namespace ipfsmon::federation
