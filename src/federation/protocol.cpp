#include "federation/protocol.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "tracestore/bloom.hpp"
#include "util/varint.hpp"

namespace ipfsmon::federation {

namespace {

constexpr std::size_t kHeaderBytes = 24;

void put_u16_le(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32_le(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64_le(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t get_u16_le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void put_string(util::Bytes& out, std::string_view s) {
  util::varint_append(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_bytes(util::Bytes& out, util::BytesView b) {
  util::varint_append(out, b.size());
  out.insert(out.end(), b.begin(), b.end());
}

/// Streaming payload reader: varints, fixed-width ints, length-prefixed
/// strings/blobs; every method fails sticky on truncated input.
class PayloadReader {
 public:
  explicit PayloadReader(util::BytesView data) : data_(data) {}

  bool read_varint(std::uint64_t* out) {
    if (failed_) return false;
    const auto decoded = util::varint_decode(data_.subspan(pos_));
    if (!decoded) return fail();
    *out = decoded->value;
    pos_ += decoded->consumed;
    return true;
  }

  bool read_u64(std::uint64_t* out) {
    if (failed_ || data_.size() - pos_ < 8) return fail();
    *out = get_u64_le(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool read_u8(std::uint8_t* out) {
    if (failed_ || data_.size() - pos_ < 1) return fail();
    *out = data_[pos_++];
    return true;
  }

  bool read_string(std::string* out, std::size_t max_len) {
    std::uint64_t len = 0;
    if (!read_varint(&len)) return false;
    if (len > max_len || data_.size() - pos_ < len) return fail();
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

  bool read_bytes(util::Bytes* out) {
    std::uint64_t len = 0;
    if (!read_varint(&len)) return false;
    if (len > kMaxFramePayload || data_.size() - pos_ < len) return fail();
    out->assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

  bool done() const { return !failed_ && pos_ == data_.size(); }

 private:
  bool fail() {
    failed_ = true;
    return false;
  }

  util::BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF, timeout, or error
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::string_view to_string(AckStatus status) {
  switch (status) {
    case AckStatus::kLanded: return "landed";
    case AckStatus::kDuplicate: return "duplicate";
    case AckStatus::kRejected: return "rejected";
  }
  return "unknown";
}

bool valid_vantage(std::string_view label) {
  if (label.empty() || label.size() > 64) return false;
  for (const char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool valid_segment_name(std::string_view name) {
  // "seg-NNNNNN.seg": the only shape SegmentWriter emits; anything else
  // (path separators above all) never reaches the filesystem.
  constexpr std::string_view prefix = "seg-";
  constexpr std::string_view suffix = ".seg";
  if (name.size() != prefix.size() + 6 + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  for (std::size_t i = prefix.size(); i < prefix.size() + 6; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

// --- Message payload codecs -------------------------------------------------

util::Bytes encode(const HelloMsg& msg) {
  util::Bytes out;
  util::varint_append(out, msg.monitor_id);
  put_string(out, msg.vantage);
  return out;
}

util::Bytes encode(const HelloAckMsg& msg) {
  util::Bytes out;
  util::varint_append(out, msg.landed.size());
  for (const auto& segment : msg.landed) {
    put_string(out, segment.file);
    put_u64_le(out, segment.checksum);
  }
  return out;
}

util::Bytes encode(const SegmentMsg& msg) {
  util::Bytes out;
  out.reserve(msg.segment_bytes.size() + msg.rollup_bytes.size() + 128);
  put_string(out, msg.file);
  put_u64_le(out, msg.body_checksum);
  util::varint_append(out, msg.entry_count);
  put_u64_le(out, static_cast<std::uint64_t>(msg.min_time));
  put_u64_le(out, static_cast<std::uint64_t>(msg.max_time));
  put_u64_le(out, static_cast<std::uint64_t>(msg.sealed_wall_us));
  put_bytes(out, msg.segment_bytes);
  put_bytes(out, msg.rollup_bytes);
  return out;
}

util::Bytes encode(const SegmentAckMsg& msg) {
  util::Bytes out;
  put_string(out, msg.segment.file);
  put_u64_le(out, msg.segment.checksum);
  out.push_back(static_cast<std::uint8_t>(msg.status));
  return out;
}

std::optional<HelloMsg> decode_hello(util::BytesView payload) {
  PayloadReader reader(payload);
  HelloMsg msg;
  std::uint64_t id = 0;
  if (!reader.read_varint(&id) || id > UINT32_MAX) return std::nullopt;
  msg.monitor_id = static_cast<std::uint32_t>(id);
  if (!reader.read_string(&msg.vantage, 64) || !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

std::optional<HelloAckMsg> decode_hello_ack(util::BytesView payload) {
  PayloadReader reader(payload);
  HelloAckMsg msg;
  std::uint64_t count = 0;
  if (!reader.read_varint(&count) || count > 10'000'000) return std::nullopt;
  msg.landed.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    SegmentIdentity segment;
    if (!reader.read_string(&segment.file, 256) ||
        !reader.read_u64(&segment.checksum)) {
      return std::nullopt;
    }
    msg.landed.push_back(std::move(segment));
  }
  if (!reader.done()) return std::nullopt;
  return msg;
}

std::optional<SegmentMsg> decode_segment(util::BytesView payload) {
  PayloadReader reader(payload);
  SegmentMsg msg;
  std::uint64_t min_t = 0;
  std::uint64_t max_t = 0;
  std::uint64_t sealed = 0;
  if (!reader.read_string(&msg.file, 256) ||
      !reader.read_u64(&msg.body_checksum) ||
      !reader.read_varint(&msg.entry_count) || !reader.read_u64(&min_t) ||
      !reader.read_u64(&max_t) || !reader.read_u64(&sealed) ||
      !reader.read_bytes(&msg.segment_bytes) ||
      !reader.read_bytes(&msg.rollup_bytes) || !reader.done()) {
    return std::nullopt;
  }
  msg.min_time = static_cast<util::SimTime>(min_t);
  msg.max_time = static_cast<util::SimTime>(max_t);
  msg.sealed_wall_us = static_cast<std::int64_t>(sealed);
  return msg;
}

std::optional<SegmentAckMsg> decode_segment_ack(util::BytesView payload) {
  PayloadReader reader(payload);
  SegmentAckMsg msg;
  std::uint8_t status = 0;
  if (!reader.read_string(&msg.segment.file, 256) ||
      !reader.read_u64(&msg.segment.checksum) || !reader.read_u8(&status) ||
      !reader.done() || status > 2) {
    return std::nullopt;
  }
  msg.status = static_cast<AckStatus>(status);
  return msg;
}

// --- Socket framing ---------------------------------------------------------

bool write_frame(int fd, FrameType type, util::BytesView payload,
                 std::string* error) {
  util::Bytes header;
  header.reserve(kHeaderBytes);
  put_u32_le(header, kFrameMagic);
  put_u16_le(header, kProtocolVersion);
  put_u16_le(header, static_cast<std::uint16_t>(type));
  put_u64_le(header, payload.size());
  put_u64_le(header, tracestore::fnv1a64(payload, 0));
  if (!send_all(fd, header.data(), header.size()) ||
      !send_all(fd, payload.data(), payload.size())) {
    set_error(error, std::string("frame write: ") + std::strerror(errno));
    return false;
  }
  return true;
}

std::optional<Frame> read_frame(int fd, std::string* error) {
  std::uint8_t header[kHeaderBytes];
  if (!recv_all(fd, header, sizeof(header))) {
    set_error(error, "connection closed");
    return std::nullopt;
  }
  if (get_u32_le(header) != kFrameMagic) {
    set_error(error, "bad frame magic");
    return std::nullopt;
  }
  if (get_u16_le(header + 4) != kProtocolVersion) {
    set_error(error, "unsupported protocol version");
    return std::nullopt;
  }
  const std::uint16_t type = get_u16_le(header + 6);
  if (type < 1 || type > 4) {
    set_error(error, "unknown frame type");
    return std::nullopt;
  }
  const std::uint64_t payload_len = get_u64_le(header + 8);
  const std::uint64_t checksum = get_u64_le(header + 16);
  if (payload_len > kMaxFramePayload) {
    set_error(error, "frame payload exceeds cap");
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(static_cast<std::size_t>(payload_len));
  if (payload_len > 0 &&
      !recv_all(fd, frame.payload.data(), frame.payload.size())) {
    set_error(error, "truncated frame payload");
    return std::nullopt;
  }
  if (tracestore::fnv1a64(frame.payload, 0) != checksum) {
    set_error(error, "frame checksum mismatch");
    return std::nullopt;
  }
  return frame;
}

std::int64_t unix_micros_now() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1000;
}

std::int64_t file_mtime_unix_us(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(st.st_mtimespec.tv_sec) * 1'000'000 +
         st.st_mtimespec.tv_nsec / 1000;
#else
  return static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000 +
         st.st_mtim.tv_nsec / 1000;
#endif
}

int tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms,
                std::string* error) {
  auto fail = [&](const char* what, int fd) {
    set_error(error, std::string(what) + ": " + std::strerror(errno));
    if (fd >= 0) ::close(fd);
    return -1;
  };

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket", fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton", fd);
  }

  // Non-blocking connect + poll: SO_SNDTIMEO does not bound connect() on
  // every platform, and a coordinator that is not up yet must fail within
  // the caller's budget, not the kernel's SYN retry schedule.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return fail("connect", fd);
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (ready <= 0) {
      errno = ready == 0 ? ETIMEDOUT : errno;
      return fail("connect", fd);
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      errno = so_error;
      return fail("connect", fd);
    }
  }
  ::fcntl(fd, F_SETFL, flags);

  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace ipfsmon::federation
