#include "federation/coordinator.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/exporters.hpp"
#include "tracestore/rollup.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace ipfsmon::federation {

namespace {

constexpr char kFederationHeader[] = "ipfsmon-federation v1";
constexpr int kPollTickMs = 200;

void fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// File mtime in nanoseconds exactly as SegmentMapping keys the
/// validation cache (stat st_mtim), so remember() here hits on the
/// serving store's next mmap open.
bool stat_signature(const std::string& path, std::int64_t* mtime_ns,
                    std::uint64_t* size) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;
#if defined(__APPLE__)
  *mtime_ns = static_cast<std::int64_t>(st.st_mtimespec.tv_sec) * 1000000000 +
              st.st_mtimespec.tv_nsec;
#else
  *mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
              st.st_mtim.tv_nsec;
#endif
  *size = static_cast<std::uint64_t>(st.st_size);
  return true;
}

bool write_file(const std::string& path, util::BytesView bytes,
                std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    fail(error, "cannot create " + path);
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    fail(error, "short write to " + path);
    return false;
  }
  return true;
}

void set_conn_options(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// The monitor's store subdirectory name ("m-<id>").
std::string monitor_dir_name(std::uint32_t id) {
  return util::format("m-%u", id);
}

/// Parses "m-<id>"; false for anything else.
bool parse_monitor_dir_name(const std::string& name, std::uint32_t* id) {
  if (name.size() < 3 || name.compare(0, 2, "m-") != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = 2; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
    if (value > 0xffffffffull) return false;
  }
  *id = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

Coordinator::Coordinator(std::string root, CoordinatorOptions options)
    : root_(std::move(root)), options_(std::move(options)) {
  // Recovery and verification must not write into a foreign registry from
  // connection threads; the coordinator's own metrics live in registry_.
  options_.store.obs = nullptr;
  options_.store.shared_validation = &validated_;
  tracer_.configure(options_.tracing);
}

std::unique_ptr<Coordinator> Coordinator::start(const std::string& root,
                                                CoordinatorOptions options,
                                                std::string* error) {
  std::unique_ptr<Coordinator> coordinator(
      new Coordinator(root, std::move(options)));
  if (!coordinator->init(error)) return nullptr;
  return coordinator;
}

Coordinator::~Coordinator() { stop(); }

bool Coordinator::init(std::string* error) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    fail(error, "cannot create " + root_ + ": " + ec.message());
    return false;
  }
  if (!recover_monitors(error)) return false;
  if (!listen_socket(error)) return false;
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

bool Coordinator::recover_monitors(std::string* error) {
  // The FEDERATION manifest carries what the segment files cannot:
  // vantage labels and ship watermarks. Segment state itself is rebuilt
  // from disk via recover_store_dir — the files are authoritative.
  struct ManifestRow {
    std::string vantage;
    std::int64_t last_ship_wall_us = 0;
  };
  std::unordered_map<std::uint32_t, ManifestRow> rows;
  {
    std::ifstream in((fs::path(root_) / "FEDERATION").string());
    std::string line;
    if (in && std::getline(in, line) && line == kFederationHeader) {
      while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string tag, vantage, dir;
        std::uint64_t id = 0, segments = 0, entries = 0;
        std::int64_t last_ship = 0;
        if (fields >> tag >> id >> vantage >> dir >> segments >> entries >>
                last_ship &&
            tag == "monitor" && id <= 0xffffffffull) {
          rows[static_cast<std::uint32_t>(id)] =
              ManifestRow{vantage, last_ship};
        }
      }
    }
  }

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    std::uint32_t id = 0;
    if (!entry.is_directory() ||
        !parse_monitor_dir_name(entry.path().filename().string(), &id) ||
        id == 0) {
      continue;
    }
    const std::string dir = entry.path().string();
    // A coordinator crash mid-land leaves at worst a *.tmp the rename
    // never published; recovery deletes it and the shipper re-ships.
    for (const auto& file : fs::directory_iterator(dir, ec)) {
      if (file.path().extension() == ".tmp") {
        fs::remove(file.path(), ec);
        recovery_notes_.push_back("removed in-flight " +
                                  file.path().filename().string() + " in " +
                                  monitor_dir_name(id));
      }
    }
    auto report = tracestore::recover_store_dir(dir, options_.store, error);
    if (!report) return false;
    for (const auto& note : report->notes) {
      recovery_notes_.push_back(monitor_dir_name(id) + ": " + note);
    }

    auto state = std::make_unique<MonitorState>();
    state->id = id;
    state->dir = dir;
    state->segments = report->segments;
    std::sort(state->segments.begin(), state->segments.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [file, footer] : state->segments) {
      state->landed[file] = footer.body_checksum;
      state->entries += footer.entry_count;
      std::int64_t mtime_ns = 0;
      std::uint64_t size = 0;
      if (stat_signature((fs::path(dir) / file).string(), &mtime_ns, &size)) {
        state->bytes += size;
      }
    }
    if (const auto it = rows.find(id); it != rows.end()) {
      state->vantage = it->second.vantage;
      state->last_ship_wall_us = it->second.last_ship_wall_us;
    } else {
      state->vantage = "unknown";
    }
    monitors_[id] = std::move(state);
  }
  write_federation_manifest();
  return true;
}

bool Coordinator::listen_socket(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    fail(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    fail(error, "bad bind address " + options_.host);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail(error, std::string("bind: ") + std::strerror(errno));
    return false;
  }
  if (::listen(listen_fd_, options_.accept_backlog) != 0) {
    fail(error, std::string("listen: ") + std::strerror(errno));
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    fail(error, std::string("getsockname: ") + std::strerror(errno));
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

void Coordinator::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    workers.swap(conn_threads_);
  }
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Coordinator::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_conn_options(fd, options_.io_timeout_ms);
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

namespace {

/// Waits for `fd` to become readable in short ticks so an idle persistent
/// connection never trips the per-operation SO_RCVTIMEO, and shutdown
/// stays prompt. False on stop, hangup without data, or poll error.
bool wait_readable(int fd, const std::atomic<bool>& stopping) {
  while (!stopping.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    if ((pfd.revents & POLLIN) != 0) return true;
    return false;  // POLLHUP/POLLERR with nothing to read
  }
  return false;
}

}  // namespace

void Coordinator::handle_connection(int fd) {
  MonitorState* monitor = nullptr;
  if (wait_readable(fd, stopping_)) {
    const auto frame = read_frame(fd);
    if (frame && frame->type == FrameType::kHello) {
      if (const auto hello = decode_hello(frame->payload)) {
        HelloAckMsg ack;
        monitor = handle_hello(*hello, &ack);
        if (monitor != nullptr &&
            !write_frame(fd, FrameType::kHelloAck, encode(ack))) {
          monitor = nullptr;
        }
      }
    }
  }
  // An invalid hello (bad id/vantage, unusable directory) just drops the
  // connection — the protocol has no error frame, and the shipper's
  // backoff treats it like any other failed dial.
  while (monitor != nullptr && !stopping_.load()) {
    if (!wait_readable(fd, stopping_)) break;
    const auto frame = read_frame(fd);
    if (!frame || frame->type != FrameType::kSegment) break;
    auto msg = decode_segment(frame->payload);
    if (!msg) break;
    SegmentAckMsg ack;
    ack.segment = SegmentIdentity{msg->file, msg->body_checksum};
    ack.status = land_segment(*monitor, std::move(*msg));
    if (!write_frame(fd, FrameType::kSegmentAck, encode(ack))) break;
  }
  ::close(fd);
}

Coordinator::MonitorState* Coordinator::handle_hello(const HelloMsg& msg,
                                                     HelloAckMsg* ack) {
  if (msg.monitor_id == 0 || !valid_vantage(msg.vantage)) return nullptr;
  MonitorState* monitor = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = monitors_[msg.monitor_id];
    if (slot == nullptr) {
      auto state = std::make_unique<MonitorState>();
      state->id = msg.monitor_id;
      state->dir = (fs::path(root_) / monitor_dir_name(msg.monitor_id))
                       .string();
      std::error_code ec;
      fs::create_directories(state->dir, ec);
      if (ec) {
        monitors_.erase(msg.monitor_id);
        return nullptr;
      }
      slot = std::move(state);
    }
    monitor = slot.get();
  }
  bool vantage_changed = false;
  {
    std::lock_guard<std::mutex> lock(monitor->mu);
    if (monitor->vantage != msg.vantage) {
      vantage_changed = !monitor->vantage.empty();
      monitor->vantage = msg.vantage;
    }
    ack->landed.clear();
    ack->landed.reserve(monitor->segments.size());
    for (const auto& [file, footer] : monitor->segments) {
      ack->landed.push_back(SegmentIdentity{file, footer.body_checksum});
    }
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    counter("ipfsmon_federation_connects_total",
            "shipper handshakes accepted")
        .inc();
  }
  // New monitor or relabeled vantage: publish it before any segment lands.
  write_federation_manifest();
  (void)vantage_changed;
  return monitor;
}

AckStatus Coordinator::land_segment(MonitorState& monitor, SegmentMsg&& msg) {
  const std::int64_t started_us = unix_micros_now();
  obs::Span span = tracer_.start_trace("federation.land");
  if (span.active()) {
    span.set_attr("monitor", static_cast<std::uint64_t>(monitor.id));
    span.set_attr("file", msg.file);
    span.set_attr("bytes",
                  static_cast<std::uint64_t>(msg.segment_bytes.size()));
  }

  AckStatus status = AckStatus::kRejected;
  std::int64_t lag_us = -1;
  std::uint64_t landed_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(monitor.mu);
    status = [&]() -> AckStatus {
      if (!valid_segment_name(msg.file)) return AckStatus::kRejected;
      if (const auto it = monitor.landed.find(msg.file);
          it != monitor.landed.end()) {
        // Same checksum: at-least-once redelivery, nothing to do. A
        // different checksum under the same name is a divergent monitor —
        // refuse rather than silently overwrite history.
        return it->second == msg.body_checksum ? AckStatus::kDuplicate
                                               : AckStatus::kRejected;
      }
      const std::string path =
          (fs::path(monitor.dir) / msg.file).string();
      const std::string tmp = path + ".tmp";
      std::error_code ec;
      // Verify-then-publish: the wire frame was already checksummed, but
      // the segment's own FNV checksums are re-verified here against the
      // bytes that actually reached disk before the rename makes them
      // part of the store.
      if (!write_file(tmp,
                      util::BytesView(msg.segment_bytes.data(),
                                      msg.segment_bytes.size()),
                      nullptr)) {
        fs::remove(tmp, ec);
        return AckStatus::kRejected;
      }
      tracestore::SegmentOpenOptions verify;
      verify.backend = options_.store.io_backend;
      auto reader = tracestore::SegmentReader::open(tmp, verify);
      if (!reader || reader->footer().body_checksum != msg.body_checksum ||
          reader->footer().entry_count != msg.entry_count) {
        fs::remove(tmp, ec);
        return AckStatus::kRejected;
      }
      const tracestore::SegmentFooter footer = reader->footer();
      fs::rename(tmp, path, ec);
      if (ec) {
        fs::remove(tmp, ec);
        return AckStatus::kRejected;
      }
      std::int64_t mtime_ns = 0;
      std::uint64_t size = 0;
      if (stat_signature(path, &mtime_ns, &size)) {
        // The body hash was just verified against these exact bytes; let
        // the serving stores (opened with shared_validation = this cache)
        // skip their re-validation pass.
        validated_.remember(path, mtime_ns, size);
      }

      if (!msg.rollup_bytes.empty()) {
        const std::string rollup_path = tracestore::rollup_path_for(path);
        const std::string rollup_tmp = rollup_path + ".tmp";
        bool rollup_ok =
            write_file(rollup_tmp,
                       util::BytesView(msg.rollup_bytes.data(),
                                       msg.rollup_bytes.size()),
                       nullptr);
        if (rollup_ok) {
          // Rollups are derived data: a sidecar that fails validation or
          // disagrees with the landed segment is dropped, never fatal.
          const auto rollup = tracestore::read_rollup_file(rollup_tmp);
          rollup_ok = rollup && rollup->entry_count == footer.entry_count;
        }
        if (rollup_ok) {
          fs::rename(rollup_tmp, rollup_path, ec);
          rollup_ok = !ec;
        }
        if (!rollup_ok) fs::remove(rollup_tmp, ec);
      }

      const auto row = std::make_pair(msg.file, footer);
      monitor.segments.insert(
          std::upper_bound(monitor.segments.begin(), monitor.segments.end(),
                           row,
                           [](const auto& a, const auto& b) {
                             return a.first < b.first;
                           }),
          row);
      tracestore::write_manifest(monitor.dir, monitor.segments);
      monitor.landed[msg.file] = msg.body_checksum;
      monitor.entries += footer.entry_count;
      monitor.bytes += size;
      const std::int64_t now_us = unix_micros_now();
      monitor.last_ship_wall_us = now_us;
      if (msg.sealed_wall_us > 0) {
        lag_us = std::max<std::int64_t>(0, now_us - msg.sealed_wall_us);
        monitor.last_lag_us = lag_us;
      }
      landed_bytes = msg.segment_bytes.size() + msg.rollup_bytes.size();
      return AckStatus::kLanded;
    }();
  }

  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    const std::string label = util::format("monitor=\"%u\"", monitor.id);
    switch (status) {
      case AckStatus::kLanded:
        counter("ipfsmon_federation_segments_landed_total",
                "segments verified and persisted, per monitor", label)
            .inc();
        counter("ipfsmon_federation_bytes_replicated_total",
                "segment + rollup payload bytes landed")
            .inc(landed_bytes);
        if (lag_us >= 0) {
          registry_
              .histogram("ipfsmon_federation_replication_lag_micros",
                         obs::exponential_buckets(1000.0, 2.0, 20),
                         "segment seal (file mtime) to landed ack, µs")
              .observe(static_cast<double>(lag_us));
          registry_
              .gauge("ipfsmon_federation_lag_watermark_micros",
                     "replication lag of the latest landed segment, µs",
                     label)
              .set(static_cast<double>(lag_us));
        }
        break;
      case AckStatus::kDuplicate:
        counter("ipfsmon_federation_duplicate_segments_total",
                "redelivered segments acked without landing")
            .inc();
        break;
      case AckStatus::kRejected:
        counter("ipfsmon_federation_rejected_segments_total",
                "segments failing verification or diverging from history")
            .inc();
        break;
    }
    registry_
        .histogram("ipfsmon_federation_land_micros",
                   obs::exponential_buckets(50.0, 2.0, 16),
                   "receive-to-ack handling time per segment, µs")
        .observe(static_cast<double>(unix_micros_now() - started_us));
  }
  if (span.active()) {
    span.set_attr("status", std::string(to_string(status)));
  }
  if (status == AckStatus::kLanded) {
    generation_.fetch_add(1, std::memory_order_release);
    write_federation_manifest();
  }
  return status;
}

void Coordinator::write_federation_manifest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string text(kFederationHeader);
  text += '\n';
  for (const auto& [id, monitor] : monitors_) {
    std::lock_guard<std::mutex> state_lock(monitor->mu);
    text += util::format(
        "monitor %u %s %s %zu %llu %lld\n", id,
        monitor->vantage.empty() ? "unknown" : monitor->vantage.c_str(),
        monitor_dir_name(id).c_str(), monitor->segments.size(),
        static_cast<unsigned long long>(monitor->entries),
        static_cast<long long>(monitor->last_ship_wall_us));
  }
  const std::string path = (fs::path(root_) / "FEDERATION").string();
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::trunc);
  out << text;
  out.flush();
  if (!out) return;
  out.close();
  std::error_code ec;
  fs::rename(tmp, path, ec);
}

std::vector<MonitorInfo> Coordinator::monitors() const {
  std::vector<MonitorInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(monitors_.size());
  for (const auto& [id, monitor] : monitors_) {
    std::lock_guard<std::mutex> state_lock(monitor->mu);
    MonitorInfo info;
    info.id = id;
    info.vantage = monitor->vantage;
    info.dir = monitor->dir;
    info.segments = monitor->segments.size();
    info.entries = monitor->entries;
    info.bytes = monitor->bytes;
    info.last_ship_wall_us = monitor->last_ship_wall_us;
    info.last_lag_us = monitor->last_lag_us;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<LandedSegment> Coordinator::landed_segments() const {
  std::vector<LandedSegment> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, monitor] : monitors_) {
    std::lock_guard<std::mutex> state_lock(monitor->mu);
    for (const auto& [file, footer] : monitor->segments) {
      LandedSegment row;
      row.monitor_id = id;
      row.vantage = monitor->vantage;
      row.file = file;
      row.footer = footer;
      out.push_back(std::move(row));
    }
  }
  return out;
}

std::vector<std::string> Coordinator::store_dirs() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(monitors_.size());
  for (const auto& [id, monitor] : monitors_) {
    out.push_back(monitor->dir);  // std::map: already ordered by id
  }
  return out;
}

std::string Coordinator::metrics_text() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  const std::uint64_t hits = validated_.hits();
  registry_
      .counter("ipfsmon_federation_validation_cache_hits_total",
               "landed-segment re-validation passes skipped via the "
               "shared validation cache")
      .inc(hits - mirrored_validation_hits_);
  mirrored_validation_hits_ = hits;
  {
    std::lock_guard<std::mutex> monitors_lock(mu_);
    registry_
        .gauge("ipfsmon_federation_monitors", "monitors known to the "
                                              "coordinator")
        .set(static_cast<double>(monitors_.size()));
  }
  return obs::to_prometheus(registry_);
}

obs::Counter& Coordinator::counter(std::string_view name,
                                   std::string_view help,
                                   std::string_view labels) {
  return registry_.counter(name, help, labels);
}

}  // namespace ipfsmon::federation
