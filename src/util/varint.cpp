#include "util/varint.hpp"

namespace ipfsmon::util {

void varint_append(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

Bytes varint_encode(std::uint64_t value) {
  Bytes out;
  varint_append(out, value);
  return out;
}

std::optional<VarintDecode> varint_decode(BytesView data) {
  std::uint64_t value = 0;
  std::size_t shift = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i >= 9) return std::nullopt;  // spec caps practical varints at 9 bytes
    const std::uint8_t byte = data[i];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return VarintDecode{value, i + 1};
    }
    shift += 7;
  }
  return std::nullopt;  // truncated
}

}  // namespace ipfsmon::util
