#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace ipfsmon::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over a string, used to derive per-name seeds.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

RngStream::RngStream(std::uint64_t root_seed, std::string_view name)
    : engine_(root_seed ^ hash_name(name)) {}

RngStream::RngStream(std::uint64_t raw_seed) : engine_(raw_seed) {}

RngStream RngStream::fork(std::string_view name) {
  return RngStream(next_u64() ^ hash_name(name));
}

RngStream RngStream::fork(std::uint64_t index) {
  std::uint64_t mix = next_u64() + 0x9e3779b97f4a7c15ull * (index + 1);
  return RngStream(splitmix64(mix));
}

std::uint64_t RngStream::next_u64() { return engine_(); }

double RngStream::uniform() {
  // 53-bit mantissa construction for uniform [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t RngStream::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n == 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = engine_();
    if (r >= threshold) return r % n;
  }
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool RngStream::bernoulli(double p) { return uniform() < p; }

double RngStream::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double RngStream::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

double RngStream::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double RngStream::pareto(double xm, double alpha) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t RngStream::zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n == 0");
  if (n == 1) return 1;
  // Rejection-inversion sampling (Hörmann & Derflinger). Handles s near 1.
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    const double log_x = std::log(x);
    if (std::abs(1.0 - s) < 1e-12) return log_x;
    return (std::exp((1.0 - s) * log_x) - 1.0) / (1.0 - s);
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(nd + 0.5);
  const double inv_1ms = (std::abs(1.0 - s) < 1e-12) ? 0.0 : 1.0 / (1.0 - s);
  auto h_integral_inv = [s, inv_1ms](double x) {
    if (std::abs(1.0 - s) < 1e-12) return std::exp(x);
    return std::exp(std::log1p(x * (1.0 - s)) * inv_1ms);
  };
  for (;;) {
    const double u = h_n + uniform() * (h_x1 - h_n);
    const double x = h_integral_inv(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    if (kd - x <= 0.5 ||
        u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

std::size_t RngStream::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("weighted_index: zero total");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point residue
}

void RngStream::fill_bytes(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t r = engine_();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(r >> (8 * b));
  }
  if (i < n) {
    const std::uint64_t r = engine_();
    for (int b = 0; i < n; ++b) out[i++] = static_cast<std::uint8_t>(r >> (8 * b));
  }
}

}  // namespace ipfsmon::util
