#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

#include "util/time.hpp"

namespace ipfsmon::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  std::string out(width - s.size(), ' ');
  out += s;
  return out;
}

std::string format_sim_time(SimTime t) {
  const std::int64_t total_s = t / kSecond;
  const std::int64_t days = total_s / 86400;
  const std::int64_t hours = (total_s / 3600) % 24;
  const std::int64_t mins = (total_s / 60) % 60;
  const std::int64_t secs = total_s % 60;
  return format("%lld:%02lld:%02lld:%02lld", static_cast<long long>(days),
                static_cast<long long>(hours), static_cast<long long>(mins),
                static_cast<long long>(secs));
}

}  // namespace ipfsmon::util
