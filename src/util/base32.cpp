#include "util/base32.hpp"

#include <array>

namespace ipfsmon::util {

namespace {
constexpr std::string_view kAlphabet = "abcdefghijklmnopqrstuvwxyz234567";

std::array<int, 256> build_reverse_table() {
  std::array<int, 256> table{};
  table.fill(-1);
  for (std::size_t i = 0; i < kAlphabet.size(); ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<int>(i);
    table[static_cast<unsigned char>(
        static_cast<char>(kAlphabet[i] - 'a' + 'A'))] = static_cast<int>(i);
  }
  // Digits are shared between cases already.
  return table;
}

const std::array<int, 256> kReverse = build_reverse_table();
}  // namespace

std::string base32_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t b : data) {
    buffer = (buffer << 8) | b;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kAlphabet[(buffer >> bits) & 0x1f]);
    }
  }
  if (bits > 0) {
    out.push_back(kAlphabet[(buffer << (5 - bits)) & 0x1f]);
  }
  return out;
}

std::optional<Bytes> base32_decode(std::string_view text) {
  Bytes out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    const int v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) return std::nullopt;
    buffer = (buffer << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xff));
    }
  }
  // Remaining bits must be zero padding produced by the encoder.
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

}  // namespace ipfsmon::util
