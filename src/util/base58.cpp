#include "util/base58.hpp"

#include <array>

namespace ipfsmon::util {

namespace {
constexpr std::string_view kAlphabet =
    "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

std::array<int, 256> build_reverse_table() {
  std::array<int, 256> table{};
  table.fill(-1);
  for (std::size_t i = 0; i < kAlphabet.size(); ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<int>(i);
  }
  return table;
}

const std::array<int, 256> kReverse = build_reverse_table();
}  // namespace

std::string base58_encode(BytesView data) {
  std::size_t zeroes = 0;
  while (zeroes < data.size() && data[zeroes] == 0) ++zeroes;

  // Upper bound on output size: log(256)/log(58) ~ 1.365.
  std::vector<std::uint8_t> b58(data.size() * 138 / 100 + 1, 0);
  std::size_t length = 0;
  for (std::size_t i = zeroes; i < data.size(); ++i) {
    int carry = data[i];
    std::size_t j = 0;
    for (auto it = b58.rbegin(); (carry != 0 || j < length) && it != b58.rend();
         ++it, ++j) {
      carry += 256 * (*it);
      *it = static_cast<std::uint8_t>(carry % 58);
      carry /= 58;
    }
    length = j;
  }

  std::string out(zeroes, '1');
  auto it = b58.begin() + static_cast<std::ptrdiff_t>(b58.size() - length);
  // Skip any residual leading zeros in the work buffer.
  while (it != b58.end() && *it == 0) ++it;
  for (; it != b58.end(); ++it) out.push_back(kAlphabet[*it]);
  return out;
}

std::optional<Bytes> base58_decode(std::string_view text) {
  std::size_t zeroes = 0;
  while (zeroes < text.size() && text[zeroes] == '1') ++zeroes;

  Bytes b256(text.size() * 733 / 1000 + 1, 0);  // log(58)/log(256) ~ 0.733
  std::size_t length = 0;
  for (std::size_t i = zeroes; i < text.size(); ++i) {
    int carry = kReverse[static_cast<unsigned char>(text[i])];
    if (carry < 0) return std::nullopt;
    std::size_t j = 0;
    for (auto it = b256.rbegin();
         (carry != 0 || j < length) && it != b256.rend(); ++it, ++j) {
      carry += 58 * (*it);
      *it = static_cast<std::uint8_t>(carry % 256);
      carry /= 256;
    }
    length = j;
  }

  Bytes out(zeroes, 0);
  auto it = b256.begin() + static_cast<std::ptrdiff_t>(b256.size() - length);
  while (it != b256.end() && *it == 0) ++it;
  out.insert(out.end(), it, b256.end());
  return out;
}

}  // namespace ipfsmon::util
