// Wall-clock time for real captures. Ingested Bitswap wantlist logs carry
// absolute (unix) timestamps; the rest of the pipeline runs on SimTime
// nanoseconds from a store-local epoch. These helpers convert between the
// two worlds without touching the host timezone: everything is UTC, using
// the days-from-civil algorithm instead of timegm.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ipfsmon::util {

/// Nanoseconds since the unix epoch, UTC.
using WallNanos = std::int64_t;

/// Parses an absolute timestamp as captured in wantlist logs. Accepts:
///   * a plain integer — nanoseconds since the unix epoch when the value
///     is implausibly large for seconds (>= 10^16), otherwise
///     autodetected as seconds / milliseconds / microseconds by magnitude;
///   * a decimal "seconds.fraction" unix timestamp ("1651572813.25");
///   * ISO 8601 UTC ("2022-05-03T10:13:33Z", "2022-05-03T10:13:33.250Z",
///     and the space-separated "2022-05-03 10:13:33" variant; a trailing
///     "+00:00" is accepted, any other offset is rejected).
/// Returns nullopt for anything else — ingest treats that as a malformed
/// line, never as time zero.
std::optional<WallNanos> parse_wall_time(std::string_view text);

/// Formats nanoseconds-since-epoch as ISO 8601 UTC with millisecond
/// precision: "2022-05-03T10:13:33.250Z". Negative times (pre-1970)
/// format correctly.
std::string format_wall_time(WallNanos wall_ns);

}  // namespace ipfsmon::util
