// Base58btc (Bitcoin alphabet) encoding, used for CIDv0 and PeerId
// string representations.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace ipfsmon::util {

/// Encodes bytes in base58btc. Leading zero bytes map to leading '1's.
std::string base58_encode(BytesView data);

/// Decodes base58btc. Returns nullopt on characters outside the alphabet.
std::optional<Bytes> base58_decode(std::string_view text);

}  // namespace ipfsmon::util
