// Simulation time primitives. Simulated time is a signed 64-bit count of
// nanoseconds from the scenario epoch — enough head-room for multi-year
// simulated traces (the paper's study spans fifteen months).
#pragma once

#include <cstdint>
#include <string>

namespace ipfsmon::util {

/// A point in simulated time, in nanoseconds since the scenario epoch.
using SimTime = std::int64_t;

/// A span of simulated time, in nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double to_hours(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kHour);
}

constexpr double to_days(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kDay);
}

/// Formats a sim time as "d:hh:mm:ss" for logs and tables.
std::string format_sim_time(SimTime t);

}  // namespace ipfsmon::util
