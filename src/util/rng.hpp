// Deterministic random number generation.
//
// Every stochastic component in the simulator draws from a named RngStream
// derived from a single scenario seed, so a whole experiment is exactly
// reproducible from (seed, code version). The engine is xoshiro256**, seeded
// through splitmix64 as recommended by its authors.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ipfsmon::util {

/// splitmix64 step; used for seeding and for hashing stream names.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

 private:
  std::uint64_t s_[4];
};

/// A named, seeded random stream with the distribution helpers the
/// simulator needs. Cheap to copy; all state is inline.
class RngStream {
 public:
  /// Derives a stream from a root seed and a stable name, so adding new
  /// streams never perturbs existing ones.
  RngStream(std::uint64_t root_seed, std::string_view name);

  explicit RngStream(std::uint64_t raw_seed);

  /// Creates an independent child stream (e.g. one per simulated node).
  RngStream fork(std::string_view name);
  RngStream fork(std::uint64_t index);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) using rejection sampling (unbiased).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  bool bernoulli(double p);

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean);

  double normal(double mean, double stddev);

  double lognormal(double mu, double sigma);

  /// Pareto (power-law tail) with minimum xm and shape alpha.
  double pareto(double xm, double alpha);

  /// Discrete Zipf sample in [1, n] with exponent s, via inverse-CDF on a
  /// precomputed table is avoided; uses rejection-inversion (Hörmann).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Samples an index from unnormalized weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fills `out` with random bytes.
  void fill_bytes(std::uint8_t* out, std::size_t n);

  Xoshiro256& engine() { return engine_; }

 private:
  Xoshiro256 engine_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ipfsmon::util
