// Byte-buffer primitives shared by every module: the Bytes alias, hex
// encoding/decoding, and comparison helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ipfsmon::util {

/// The canonical owned byte buffer used across the library.
using Bytes = std::vector<std::uint8_t>;

/// A read-only view over bytes; preferred at API boundaries.
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Decodes a hex string (case-insensitive). Returns nullopt on malformed
/// input (odd length or non-hex characters).
std::optional<Bytes> from_hex(std::string_view hex);

/// Builds a Bytes buffer from a string's raw characters.
Bytes bytes_of(std::string_view s);

/// Interprets bytes as a string (no validation).
std::string string_of(BytesView data);

/// Lexicographic comparison usable as a strict weak order.
bool lex_less(BytesView a, BytesView b);

}  // namespace ipfsmon::util
