#include "util/walltime.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ipfsmon::util {

namespace {

constexpr std::int64_t kNsPerSec = 1000000000ll;

/// Days since 1970-01-01 for a proleptic-Gregorian civil date
/// (Howard Hinnant's days_from_civil, public domain).
std::int64_t days_from_civil(std::int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t z, std::int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t year = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = year + (*m <= 2);
}

/// Parses a fixed-width unsigned decimal field; advances *pos past it.
bool parse_digits(std::string_view text, std::size_t* pos, std::size_t width,
                  std::int64_t* out) {
  if (*pos + width > text.size()) return false;
  std::int64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const char c = text[*pos + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *pos += width;
  *out = value;
  return true;
}

/// ".fraction" → nanoseconds (up to 9 digits kept, the rest ignored).
bool parse_fraction(std::string_view text, std::size_t* pos,
                    std::int64_t* out_ns) {
  *out_ns = 0;
  if (*pos >= text.size() || text[*pos] != '.') return true;  // optional
  ++*pos;
  std::int64_t value = 0;
  int digits = 0;
  while (*pos < text.size() && std::isdigit(static_cast<unsigned char>(text[*pos]))) {
    if (digits < 9) {
      value = value * 10 + (text[*pos] - '0');
      ++digits;
    }
    ++*pos;
  }
  if (digits == 0) return false;  // "12." with no digits
  while (digits < 9) {
    value *= 10;
    ++digits;
  }
  *out_ns = value;
  return true;
}

std::optional<WallNanos> parse_iso8601(std::string_view text) {
  std::size_t pos = 0;
  std::int64_t year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  bool negative_year = false;
  if (pos < text.size() && text[pos] == '-') {
    negative_year = true;
    ++pos;
  }
  if (!parse_digits(text, &pos, 4, &year)) return std::nullopt;
  if (negative_year) year = -year;
  if (pos >= text.size() || text[pos] != '-') return std::nullopt;
  ++pos;
  if (!parse_digits(text, &pos, 2, &month)) return std::nullopt;
  if (pos >= text.size() || text[pos] != '-') return std::nullopt;
  ++pos;
  if (!parse_digits(text, &pos, 2, &day)) return std::nullopt;
  if (pos >= text.size() || (text[pos] != 'T' && text[pos] != 't' &&
                             text[pos] != ' ')) {
    return std::nullopt;
  }
  ++pos;
  if (!parse_digits(text, &pos, 2, &hour)) return std::nullopt;
  if (pos >= text.size() || text[pos] != ':') return std::nullopt;
  ++pos;
  if (!parse_digits(text, &pos, 2, &minute)) return std::nullopt;
  if (pos >= text.size() || text[pos] != ':') return std::nullopt;
  ++pos;
  if (!parse_digits(text, &pos, 2, &second)) return std::nullopt;
  std::int64_t frac_ns = 0;
  if (!parse_fraction(text, &pos, &frac_ns)) return std::nullopt;
  // Suffix: nothing (naive = UTC), 'Z', or the explicit zero offset.
  if (pos < text.size()) {
    const std::string_view rest = text.substr(pos);
    if (rest != "Z" && rest != "z" && rest != "+00:00" && rest != "+0000") {
      return std::nullopt;
    }
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {  // 60: leap seconds appear in real logs
    return std::nullopt;
  }
  const std::int64_t days = days_from_civil(year, static_cast<unsigned>(month),
                                            static_cast<unsigned>(day));
  const std::int64_t secs =
      days * 86400 + hour * 3600 + minute * 60 + second;
  return secs * kNsPerSec + frac_ns;
}

std::optional<WallNanos> parse_numeric(std::string_view text) {
  // Integer part (possibly negative), optional fraction → decimal seconds.
  std::size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && text[pos] == '-') {
    negative = true;
    ++pos;
  }
  std::int64_t integer = 0;
  std::size_t digits = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    integer = integer * 10 + (text[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  if (pos < text.size() && text[pos] == '.') {
    std::int64_t frac_ns = 0;
    if (!parse_fraction(text, &pos, &frac_ns) || pos != text.size()) {
      return std::nullopt;
    }
    const std::int64_t ns = integer * kNsPerSec + frac_ns;
    return negative ? -ns : ns;
  }
  if (pos != text.size()) return std::nullopt;
  if (negative) integer = -integer;
  // Bare integer: autodetect the unit by magnitude. Thresholds are ~1e11 s
  // (year 5138) apart, so any plausible capture date lands in one bucket:
  //   seconds      < 1e11        (until 5138-11-16)
  //   milliseconds < 1e14
  //   microseconds < 1e16
  //   nanoseconds  otherwise
  const std::int64_t magnitude = integer < 0 ? -integer : integer;
  if (magnitude < 100000000000ll) return integer * kNsPerSec;
  if (magnitude < 100000000000000ll) return integer * 1000000ll;
  if (magnitude < 10000000000000000ll) return integer * 1000ll;
  return integer;
}

}  // namespace

std::optional<WallNanos> parse_wall_time(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // ISO forms contain '-' after the first digit (dates) or 'T'/':'.
  const bool looks_iso = text.find(':') != std::string_view::npos ||
                         text.find('-', 1) != std::string_view::npos;
  return looks_iso ? parse_iso8601(text) : parse_numeric(text);
}

std::string format_wall_time(WallNanos wall_ns) {
  std::int64_t secs = wall_ns / kNsPerSec;
  std::int64_t sub_ns = wall_ns % kNsPerSec;
  if (sub_ns < 0) {
    sub_ns += kNsPerSec;
    --secs;
  }
  std::int64_t days = secs / 86400;
  std::int64_t sod = secs % 86400;  // second of day
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  std::int64_t year = 0;
  unsigned month = 0, day = 0;
  civil_from_days(days, &year, &month, &day);
  char buffer[48];
  // Millisecond fraction for display; full nanoseconds whenever truncating
  // would lose precision (capture export must round-trip exactly).
  if (sub_ns % 1000000 == 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "%04lld-%02u-%02uT%02lld:%02lld:%02lld.%03lldZ",
                  static_cast<long long>(year), month, day,
                  static_cast<long long>(sod / 3600),
                  static_cast<long long>((sod / 60) % 60),
                  static_cast<long long>(sod % 60),
                  static_cast<long long>(sub_ns / 1000000));
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "%04lld-%02u-%02uT%02lld:%02lld:%02lld.%09lldZ",
                  static_cast<long long>(year), month, day,
                  static_cast<long long>(sod / 3600),
                  static_cast<long long>((sod / 60) % 60),
                  static_cast<long long>(sod % 60),
                  static_cast<long long>(sub_ns));
  }
  return buffer;
}

}  // namespace ipfsmon::util
