// RFC 4648 base32 (lowercase, unpadded) as used by CIDv1 multibase 'b'.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace ipfsmon::util {

/// Encodes bytes as lowercase unpadded base32.
std::string base32_encode(BytesView data);

/// Decodes lowercase (or uppercase) unpadded base32.
std::optional<Bytes> base32_decode(std::string_view text);

}  // namespace ipfsmon::util
