// Small string helpers used by trace IO and table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ipfsmon::util {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Right-pads (or truncates) a string to a fixed width, for table printing.
std::string pad_right(std::string_view s, std::size_t width);

/// Left-pads a string to a fixed width.
std::string pad_left(std::string_view s, std::size_t width);

}  // namespace ipfsmon::util
