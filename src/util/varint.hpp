// Unsigned varint (multiformats/unsigned-varint) encoding as used by
// multihash and CID binary representations.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace ipfsmon::util {

/// Appends the unsigned-varint encoding of `value` to `out`.
void varint_append(Bytes& out, std::uint64_t value);

/// Encodes `value` as a fresh buffer.
Bytes varint_encode(std::uint64_t value);

/// Result of a varint decode: the value and the number of bytes consumed.
struct VarintDecode {
  std::uint64_t value = 0;
  std::size_t consumed = 0;
};

/// Decodes a varint from the front of `data`. Returns nullopt on truncated
/// or over-long (more than 9 bytes, per the multiformats spec) input.
std::optional<VarintDecode> varint_decode(BytesView data);

}  // namespace ipfsmon::util
