// Client-version adoption (paper Fig. 4): IPFS v0.5 introduced WANT_HAVE;
// over mid-2020 the population migrated from WANT_BLOCK-only legacy
// clients. We model the upgraded share as a logistic curve over simulated
// time; nodes upgrade when they churn back online ("willingness of users to
// upgrade their clients").
#pragma once

#include "util/time.hpp"

namespace ipfsmon::scenario {

struct VersionAdoptionModel {
  /// Time at which half the population has upgraded.
  util::SimTime midpoint = 30 * util::kDay;
  /// Steepness: days for the curve to move most of the way.
  double steepness_days = 10.0;
  /// Floor/ceiling of the upgraded share.
  double initial_share = 0.02;
  double final_share = 0.98;

  /// Share of clients expected to run v0.5+ at time `t`.
  double upgraded_share(util::SimTime t) const;
};

}  // namespace ipfsmon::scenario
