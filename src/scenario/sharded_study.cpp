#include "scenario/sharded_study.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace ipfsmon::scenario {

std::size_t ShardedStudy::share(std::size_t total, std::size_t s) const {
  const std::size_t count = std::max<std::size_t>(config_.shards, 1);
  return total / count + (s < total % count ? 1 : 0);
}

StudyConfig ShardedStudy::shard_config(std::size_t s) const {
  StudyConfig cfg = config_;
  const std::size_t count = std::max<std::size_t>(config_.shards, 1);
  if (count == 1) return cfg;  // exact passthrough: byte-identity matters

  if (s > 0) {
    // Derived per-shard seed streams: shard 0 keeps the root seed so its
    // RNG genealogy matches a standalone study of the same size.
    std::uint64_t state = config_.seed ^ (0x9e3779b97f4a7c15ull * s);
    cfg.seed = util::splitmix64(state);
  }
  cfg.population.node_count = share(config_.population.node_count, s);
  cfg.population.stable_server_count =
      std::max<std::size_t>(1, share(config_.population.stable_server_count, s));
  cfg.population.bootstrap_count =
      std::max<std::size_t>(1, share(config_.population.bootstrap_count, s));
  cfg.population.misconfigured_nodes =
      share(config_.population.misconfigured_nodes, s);
  cfg.catalog.item_count =
      std::max<std::size_t>(1, share(config_.catalog.item_count, s));
  // Churn processes run per shard; divide the global rates so the whole
  // simulation sees the configured totals. Monitor-crash MTBF stays as-is
  // (it is already per monitor, and monitors live on their home shard).
  cfg.churn.nodes.arrival_rate_per_hour /= static_cast<double>(count);
  cfg.churn.nodes.max_transient = share(config_.churn.nodes.max_transient, s);
  cfg.churn.partitions.rate_per_hour /= static_cast<double>(count);
  // The coordinator prints the heartbeat; per-shard ones would interleave.
  cfg.progress_heartbeat = false;
  if (!config_.trace_export_base.empty()) {
    cfg.trace_export_base =
        config_.trace_export_base + "-shard" + std::to_string(s);
  }
  return cfg;
}

ShardedStudy::ShardedStudy(StudyConfig config) : config_(std::move(config)) {
  const std::size_t count = std::max<std::size_t>(config_.shards, 1);
  if (count > 1 && config_.use_active_monitors) {
    // Active monitors crawl by dialing arbitrary learned peers; only
    // explicitly cross-registered hubs are dialable across shards, so a
    // sharded active sweep would silently observe less. Refuse loudly.
    throw std::invalid_argument(
        "ShardedStudy: use_active_monitors requires shards == 1");
  }
  sim::ShardedSchedulerConfig sched_config;
  sched_config.shards = count;
  // The lookahead is what every cross-shard link latency gets floored at;
  // take the configured floor, but never less than what the geography
  // already guarantees for any same-planet pair.
  sched_config.lookahead =
      std::max(config_.shard_link_floor,
               net::GeoDatabase::standard().min_latency());
  sched_config.use_threads = config_.shard_threads;
  coordinator_ = std::make_unique<sim::ShardedScheduler>(sched_config);

  studies_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    ShardPlacement placement{&coordinator_->shard(s), s, count};
    studies_.push_back(
        std::make_unique<MonitoringStudy>(shard_config(s), placement));
    shard_networks_.push_back(&studies_.back()->network());
  }
  if (count == 1) return;  // no cross-shard plumbing: stay inert

  for (std::size_t s = 0; s < count; ++s) {
    shard_networks_[s]->attach_shard(
        coordinator_.get(), s,
        [this](std::size_t shard) { return shard_networks_[shard]; });
  }
  // Monitors are the cross-shard cut: every shard's nodes can discover and
  // dial every other shard's monitors (always-online hubs), so each
  // monitor observes request traffic from the entire population.
  for (std::size_t home = 0; home < count; ++home) {
    for (monitor::PassiveMonitor* m : studies_[home]->monitors()) {
      const net::NodeRecord* rec = shard_networks_[home]->record(m->id());
      for (std::size_t s = 0; s < count; ++s) {
        if (s == home) continue;
        shard_networks_[s]->register_remote(m->id(), home, rec->address,
                                            rec->country,
                                            config_.monitor_discovery_weight);
        // Seed the remote monitor into this shard's bootstrap routing
        // tables: long-running DHT servers accumulate presence in stable
        // infrastructure, which is how the paper's vantage points become
        // discoverable network-wide. From there the record spreads via
        // FIND_NODE gossip — the same path a local monitor takes. Without
        // this, nodes whose degree is saturated (e.g. by gateway hubs)
        // would never dial across the shard boundary.
        auto& pop = studies_[s]->population();
        for (std::size_t b = 0; b < pop.bootstrap_ids().size(); ++b) {
          pop.node_at(b).dht().learn_server(m->id());
        }
      }
    }
  }
  // Coordinator-level gauges ride on shard 0's collector (if any): one
  // place on /metrics to watch epochs, cross-shard traffic, and stalls.
  if (studies_[0]->collector() != nullptr) {
    obs::register_sharded_scheduler_metrics(*studies_[0]->collector(),
                                            studies_[0]->obs().metrics,
                                            *coordinator_);
  }
}

ShardedStudy::~ShardedStudy() = default;

void ShardedStudy::run_warmup() {
  // Every shard's components must start before any clock advances: the
  // coordinator moves all shards in lockstep, so a late-started shard
  // would miss sim time rather than start at zero.
  for (auto& study : studies_) study->start_components();
  run_span(coordinator_->now() + config_.warmup, "warmup");
  for (auto& study : studies_) study->after_warmup();
}

void ShardedStudy::run_measurement(util::SimDuration duration) {
  run_span(coordinator_->now() + duration, "measurement");
  for (auto& study : studies_) study->export_spans();
}

void ShardedStudy::run_span(util::SimTime target, const char* label) {
  if (!config_.progress_heartbeat) {
    coordinator_->run_until(target);
    return;
  }
  const util::SimTime start = coordinator_->now();
  const auto wall_start = std::chrono::steady_clock::now();
  while (coordinator_->now() < target) {
    coordinator_->run_until(
        std::min(target, coordinator_->now() + config_.heartbeat_interval));
    const double progress = static_cast<double>(coordinator_->now() - start) /
                            static_cast<double>(target - start);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    const double eta =
        progress > 0.0 ? wall * (1.0 - progress) / progress : 0.0;
    std::fprintf(
        stderr,
        "[ipfsmon] %s %3.0f%% (sim %s, %zu shards, %llu epochs) wall %.1fs "
        "eta %.1fs\n",
        label, 100.0 * progress,
        util::format_sim_time(coordinator_->now()).c_str(), studies_.size(),
        static_cast<unsigned long long>(coordinator_->epochs()), wall, eta);
  }
}

std::vector<const monitor::PassiveMonitor*> ShardedStudy::monitors_by_id()
    const {
  std::vector<const monitor::PassiveMonitor*> out;
  for (const auto& study : studies_) {
    for (const auto* m : study->monitors()) out.push_back(m);
  }
  std::sort(out.begin(), out.end(),
            [](const monitor::PassiveMonitor* a,
               const monitor::PassiveMonitor* b) {
              return a->monitor_id() < b->monitor_id();
            });
  return out;
}

std::vector<monitor::PassiveMonitor*> ShardedStudy::monitors() {
  std::vector<monitor::PassiveMonitor*> out;
  for (const auto* m : monitors_by_id()) {
    out.push_back(const_cast<monitor::PassiveMonitor*>(m));
  }
  return out;
}

trace::Trace ShardedStudy::unified_trace(
    const trace::PreprocessOptions& options) const {
  std::vector<const trace::Trace*> traces;
  for (const auto* m : monitors_by_id()) traces.push_back(&m->recorded());
  return trace::unify(traces, options);
}

bool ShardedStudy::finalize_monitor_spill() {
  bool ok = false;
  for (auto& study : studies_) {
    if (!study->monitors().empty()) ok = true;
    if (!study->finalize_monitor_spill()) return false;
  }
  return ok;
}

std::vector<std::string> ShardedStudy::monitor_store_dirs() const {
  std::vector<std::string> out;
  for (const auto* m : monitors_by_id()) {
    if (m->spilling()) out.push_back(m->spill_dir());
  }
  return out;
}

std::vector<std::vector<std::vector<crypto::PeerId>>>
ShardedStudy::matched_snapshots() const {
  const auto mons = monitors_by_id();
  std::size_t count = std::numeric_limits<std::size_t>::max();
  for (const auto* m : mons) count = std::min(count, m->snapshots().size());
  if (count == std::numeric_limits<std::size_t>::max()) count = 0;

  std::vector<std::vector<std::vector<crypto::PeerId>>> out;
  out.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    std::vector<std::vector<crypto::PeerId>> row;
    row.reserve(mons.size());
    for (const auto* m : mons) row.push_back(m->snapshots()[t].peers);
    out.push_back(std::move(row));
  }
  return out;
}

std::uint64_t ShardedStudy::requests_issued() const {
  std::uint64_t total = 0;
  for (const auto& study : studies_) {
    total += study->population().requests_issued();
  }
  return total;
}

std::uint64_t ShardedStudy::fetches_succeeded() const {
  std::uint64_t total = 0;
  for (const auto& study : studies_) {
    total += study->population().fetches_succeeded();
  }
  return total;
}

std::uint64_t ShardedStudy::fetches_failed() const {
  std::uint64_t total = 0;
  for (const auto& study : studies_) {
    total += study->population().fetches_failed();
  }
  return total;
}

std::size_t ShardedStudy::population_size() const {
  std::size_t total = 0;
  for (const auto& study : studies_) total += study->population().size();
  return total;
}

std::size_t ShardedStudy::online_count() const {
  std::size_t total = 0;
  for (const auto& study : studies_) total += study->population().online_count();
  return total;
}

std::size_t ShardedStudy::ever_online_count() const {
  std::size_t total = 0;
  for (const auto& study : studies_) {
    total += study->population().ever_online_count();
  }
  return total;
}

}  // namespace ipfsmon::scenario
