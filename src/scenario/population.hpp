// The synthetic node population: DHT servers and NAT'd clients across the
// geo distribution, with exponential on/off churn, Poisson per-node request
// workloads over the content catalog, stable provider/bootstrap nodes, and
// optional version-adoption dynamics.
#pragma once

#include <functional>
#include <memory>

#include "net/network.hpp"
#include "node/ipfs_node.hpp"
#include "scenario/catalog.hpp"
#include "scenario/version_model.hpp"

namespace ipfsmon::scenario {

/// Per-node configuration tuned for population members: go-ipfs-style
/// connection-manager watermarks (scaled to simulated population sizes), a
/// calmer DHT refresh, and a bounded fetch deadline so unresolvable
/// requests re-broadcast for a while and then give up.
node::NodeConfig default_member_node_config();

struct PopulationConfig {
  std::size_t node_count = 800;
  /// Share of nodes behind NAT ⇒ DHT clients, invisible to crawls.
  double nat_client_share = 0.45;
  /// Always-on stable servers (hosting the catalog; first few bootstrap).
  std::size_t stable_server_count = 24;
  std::size_t bootstrap_count = 4;
  std::size_t providers_per_item = 2;

  /// Exponential churn: mean online session / offline gap.
  double mean_session_hours = 8.0;
  double mean_downtime_hours = 16.0;

  /// Poisson data requests per node while online.
  double mean_request_interval_hours = 1.0;

  /// Share of requests targeting fresh one-off CIDs (unique content nobody
  /// else will ask for) rather than catalog items. Drives the paper's
  /// ">80% of CIDs requested by exactly one peer".
  double oneoff_request_share = 0.55;

  /// Misconfigured clients (paper Sec. V-E: "some peers issue an
  /// unexpectedly high number of requests for the same data item — hinting
  /// at configuration errors"): each retries one unresolvable CID forever.
  /// These CIDs top the RRP ranking while staying at URP = 1 — the paper's
  /// "popular data items according to RRP are often not resolvable".
  std::size_t misconfigured_nodes = 5;
  double misconfigured_retry_minutes = 1.5;

  /// Countermeasure (paper Sec. VI-C item 1): nodes regenerate their
  /// identity (fresh keypair => fresh PeerId) every time they churn back
  /// online. Defeats cross-session TNW/TPI tracking; the cost is increased
  /// effective churn (connections and reputation reset with the identity).
  bool rotate_identity_on_rebirth = false;

  /// Countermeasure (paper Sec. VI-C item 6): share of extra *cover*
  /// requests — fake fetches of plausible (popular) catalog items issued
  /// alongside genuine traffic for plausible deniability. 0.5 means one
  /// cover request per two genuine ones.
  double cover_traffic_share = 0.0;

  /// Share of the population running v0.5+ clients (WANT_HAVE) when no
  /// adoption model is installed.
  double want_have_share = 1.0;

  node::NodeConfig node = default_member_node_config();
};

class Population {
 public:
  Population(net::Network& network, const ContentCatalog& catalog,
             PopulationConfig config, util::RngStream rng);
  ~Population();

  Population(const Population&) = delete;
  Population& operator=(const Population&) = delete;

  /// Brings stable nodes online, installs catalog content on providers,
  /// and starts churn + request processes for the rest.
  void start();

  /// Stops churn/request timers (nodes stay in their current state).
  void stop();

  const std::vector<crypto::PeerId>& bootstrap_ids() const {
    return bootstrap_ids_;
  }

  std::size_t size() const { return members_.size(); }
  node::IpfsNode& node_at(std::size_t i) { return *members_[i].node; }
  const std::vector<crypto::PeerId>& all_ids() const { return all_ids_; }

  /// Installs a version-adoption model: nodes (re)joining at time t run
  /// v0.5+ with probability model.upgraded_share(t).
  void set_version_model(const VersionAdoptionModel& model) {
    version_model_ = model;
  }

  /// Scales the request rate by `factor` in [from, to) — used to inject
  /// the Fig. 4 traffic spike.
  void add_rate_surge(util::SimTime from, util::SimTime to, double factor);

  // --- Ground truth for evaluating the estimators ------------------------
  std::size_t online_count() const;
  std::size_t online_server_count() const;
  std::uint64_t requests_issued() const { return requests_issued_; }
  std::uint64_t fetches_succeeded() const { return fetches_succeeded_; }
  std::uint64_t fetches_failed() const { return fetches_failed_; }

  /// Unique node ids that were online at any point since start().
  std::size_t ever_online_count() const { return ever_online_.size(); }

  /// Hosts an item's blocks on a random stable provider (used for one-off
  /// content whose "author" must exist somewhere).
  void host_item(const CatalogItem& item);

  /// Ground truth for deniability analyses: was this (peer, CID) request
  /// cover traffic rather than genuine interest?
  bool is_cover_request(const crypto::PeerId& peer, const cid::Cid& cid) const;
  std::uint64_t cover_requests_issued() const { return cover_requests_; }

  /// Number of identities retired through rotation so far.
  std::uint64_t identities_rotated() const { return identities_rotated_; }

 private:
  struct Member {
    std::unique_ptr<node::IpfsNode> node;
    bool stable = false;
    bool online_target = false;  // desired state per churn process
    util::RngStream rng;
    sim::EventHandle churn_timer;
    sim::EventHandle request_timer;
    /// Set for misconfigured clients: the dead CID they retry forever.
    std::optional<cid::Cid> broken_reference;
    sim::EventHandle retry_timer;

    Member(std::unique_ptr<node::IpfsNode> n, bool s, util::RngStream r)
        : node(std::move(n)), stable(s), rng(std::move(r)) {}
  };

  void install_catalog_content();
  void bring_online(Member& member);
  void schedule_session_end(Member& member);
  void schedule_rebirth(Member& member);
  void schedule_next_request(Member& member);
  void issue_request(Member& member);
  void issue_cover_request(Member& member);
  void schedule_retry(Member& member);
  void rotate_identity(Member& member);
  double current_rate_factor() const;
  void apply_version(Member& member);

  net::Network& network_;
  const ContentCatalog& catalog_;
  PopulationConfig config_;
  util::RngStream rng_;

  std::vector<Member> members_;
  std::vector<crypto::PeerId> bootstrap_ids_;
  std::vector<crypto::PeerId> all_ids_;
  std::optional<VersionAdoptionModel> version_model_;

  struct Surge {
    util::SimTime from, to;
    double factor;
  };
  std::vector<Surge> surges_;

  std::unordered_set<crypto::PeerId> ever_online_;
  std::uint64_t requests_issued_ = 0;
  std::uint64_t fetches_succeeded_ = 0;
  std::uint64_t fetches_failed_ = 0;
  std::uint64_t cover_requests_ = 0;
  std::uint64_t identities_rotated_ = 0;

  struct CoverKey {
    crypto::PeerId peer;
    cid::Cid cid;
    bool operator==(const CoverKey&) const = default;
  };
  struct CoverKeyHash {
    std::size_t operator()(const CoverKey& k) const noexcept {
      return std::hash<crypto::PeerId>{}(k.peer) ^
             (std::hash<cid::Cid>{}(k.cid) * 0x9e3779b97f4a7c15ull);
    }
  };
  std::unordered_set<CoverKey, CoverKeyHash> cover_pairs_;

  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace ipfsmon::scenario
