#include "scenario/population.hpp"

namespace ipfsmon::scenario {

node::NodeConfig default_member_node_config() {
  node::NodeConfig config;
  config.target_degree = 20;
  config.max_degree = 400;
  // go-ipfs defaults are 600/900 in a ~10k network; scaled down to the
  // simulated population sizes while keeping degree/network ratios similar.
  config.low_water = 40;
  config.high_water = 64;
  config.discovery_interval = 1 * util::kMinute;
  config.discovery_dials = 2;
  config.dht.refresh_interval = 30 * util::kMinute;
  // Re-announce daily with records that outlive the gap: reproviding a
  // whole catalog is by far the costliest periodic DHT activity.
  config.dht.provider_ttl = 48 * util::kHour;
  config.reprovide_interval = 24 * util::kHour;
  // Unresolvable fetches re-broadcast every 30 s until this deadline —
  // the source of the paper's ">50% of entries are re-broadcasts".
  config.bitswap.fetch_timeout = 8 * util::kMinute;
  return config;
}

Population::Population(net::Network& network, const ContentCatalog& catalog,
                       PopulationConfig config, util::RngStream rng)
    : network_(network),
      catalog_(catalog),
      config_(config),
      rng_(std::move(rng)) {
  members_.reserve(config_.node_count);
  util::RngStream key_rng = rng_.fork("keys");

  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const bool stable = i < config_.stable_server_count;
    const bool nat =
        !stable && rng_.bernoulli(config_.nat_client_share);

    node::NodeConfig node_config = config_.node;
    node_config.nat = nat;
    node_config.dht_server = !nat;
    node_config.legacy_protocol = !rng_.bernoulli(config_.want_have_share);
    // Misconfigured clients: their app-level retry loop cancels and
    // re-requests so aggressively that the 30 s protocol re-broadcast
    // never fires — every retry is a fresh (clean-looking) request. This
    // is what makes their dead CIDs top the RRP ranking (paper Sec. V-E).
    const bool misconfigured =
        !stable &&
        i < config_.stable_server_count + config_.misconfigured_nodes;
    if (misconfigured) node_config.bitswap.rebroadcast = false;
    if (stable) {
      // Stable long-lived servers are discovery hubs (they accumulate
      // routing-table presence), though far weaker ones than monitors.
      node_config.discovery_weight = 2.0;
    }

    const std::string country = network_.geo().sample_country(rng_);
    const net::Address address = network_.geo().allocate_address(country);
    crypto::KeyPair keys = crypto::KeyPair::generate(key_rng);

    auto node = std::make_unique<node::IpfsNode>(
        network_, std::move(keys), address, country, node_config,
        rng_.fork(i));
    all_ids_.push_back(node->id());
    if (i < config_.bootstrap_count) bootstrap_ids_.push_back(node->id());
    members_.emplace_back(std::move(node), stable, rng_.fork(i * 2 + 1));
  }
}

Population::~Population() { stop(); }

void Population::start() {
  if (started_) return;
  started_ = true;

  // Stable nodes first (they bootstrap and host content)...
  for (auto& member : members_) {
    if (!member.stable) continue;
    member.online_target = true;
    apply_version(member);
    member.node->go_online(bootstrap_ids_);
    ever_online_.insert(member.node->id());
  }
  install_catalog_content();

  // Designate the misconfigured clients: each retries a dead reference
  // (a CID that is never hosted anywhere) for as long as it is online.
  std::size_t broken_assigned = 0;
  for (auto& member : members_) {
    if (broken_assigned >= config_.misconfigured_nodes) break;
    if (member.stable) continue;
    member.broken_reference = catalog_.create_oneoff(member.rng).root;
    ++broken_assigned;
  }

  // ...then the churned population, each starting in a random phase of its
  // on/off cycle.
  const double duty =
      config_.mean_session_hours /
      (config_.mean_session_hours + config_.mean_downtime_hours);
  for (auto& member : members_) {
    if (member.stable) {
      schedule_next_request(member);
      continue;
    }
    if (member.rng.bernoulli(duty)) {
      bring_online(member);
    } else {
      schedule_rebirth(member);
    }
  }
}

void Population::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& member : members_) {
    member.churn_timer.cancel();
    member.request_timer.cancel();
    member.retry_timer.cancel();
  }
}

void Population::install_catalog_content() {
  // Round-robin resolvable items over the stable providers.
  std::vector<Member*> providers;
  for (auto& member : members_) {
    if (member.stable) providers.push_back(&member);
  }
  if (providers.empty()) return;
  std::size_t cursor = 0;
  for (const auto& item : catalog_.items()) {
    if (!item.resolvable) continue;
    for (std::size_t r = 0; r < config_.providers_per_item; ++r) {
      Member* provider = providers[cursor++ % providers.size()];
      provider->node->add_blocks(item.blocks, item.root);
    }
  }
}

void Population::apply_version(Member& member) {
  if (!version_model_) return;
  const double share =
      version_model_->upgraded_share(network_.scheduler().now());
  member.node->client().set_use_want_have(member.rng.bernoulli(share));
}

void Population::rotate_identity(Member& member) {
  // Fresh keypair, same machine (address and country stay): cross-session
  // observations can no longer be linked to one PeerId. The old identity's
  // (offline) record remains in the network, as a vanished node's would.
  const net::NodeRecord* rec = network_.record(member.node->id());
  const std::string country = rec != nullptr ? rec->country : "US";
  const net::Address address = member.node->address();
  node::NodeConfig config = member.node->config();
  crypto::KeyPair keys = crypto::KeyPair::generate(member.rng);
  member.node = std::make_unique<node::IpfsNode>(
      network_, std::move(keys), address, country, config,
      member.rng.fork("rotated"));
  ++identities_rotated_;
}

void Population::bring_online(Member& member) {
  if (stopped_) return;
  member.online_target = true;
  apply_version(member);
  member.node->go_online(bootstrap_ids_);
  ever_online_.insert(member.node->id());
  schedule_session_end(member);
  schedule_next_request(member);
  if (member.broken_reference) schedule_retry(member);
}

void Population::schedule_retry(Member& member) {
  if (stopped_) return;
  const double minutes =
      member.rng.exponential(config_.misconfigured_retry_minutes);
  member.retry_timer = network_.scheduler().schedule_after(
      static_cast<util::SimDuration>(minutes *
                                     static_cast<double>(util::kMinute)),
      [this, &member]() {
        if (member.node->online() && member.broken_reference) {
          // App-level retry loop: cancel the stuck fetch and re-request.
          // Each retry is a fresh broadcast spaced > 31 s apart, so it
          // survives the re-broadcast filter and inflates the CID's RRP —
          // the paper's "unexpectedly high number of requests ... hinting
          // at configuration errors".
          member.node->client().cancel(*member.broken_reference);
          member.node->fetch(*member.broken_reference, nullptr);
          ++requests_issued_;
        }
        schedule_retry(member);
      });
}

void Population::schedule_session_end(Member& member) {
  if (member.stable || stopped_) return;
  const double hours = member.rng.exponential(config_.mean_session_hours);
  member.churn_timer = network_.scheduler().schedule_after(
      static_cast<util::SimDuration>(hours * static_cast<double>(util::kHour)),
      [this, &member]() {
        member.online_target = false;
        member.request_timer.cancel();
        member.retry_timer.cancel();
        member.node->go_offline();
        if (auto& events = network_.obs().events; events.active()) {
          events.emit(network_.scheduler().now(), obs::Severity::kDebug,
                      "population",
                      member.node->id().short_hex() + " churned offline");
        }
        schedule_rebirth(member);
      });
}

void Population::schedule_rebirth(Member& member) {
  if (stopped_) return;
  const double hours = member.rng.exponential(config_.mean_downtime_hours);
  member.churn_timer = network_.scheduler().schedule_after(
      static_cast<util::SimDuration>(hours * static_cast<double>(util::kHour)),
      [this, &member]() {
        if (config_.rotate_identity_on_rebirth) rotate_identity(member);
        bring_online(member);
        if (auto& events = network_.obs().events; events.active()) {
          events.emit(network_.scheduler().now(), obs::Severity::kDebug,
                      "population",
                      member.node->id().short_hex() + " churned online");
        }
      });
}

double Population::current_rate_factor() const {
  const util::SimTime now = network_.scheduler().now();
  double factor = 1.0;
  for (const auto& surge : surges_) {
    if (now >= surge.from && now < surge.to) factor *= surge.factor;
  }
  return factor;
}

void Population::add_rate_surge(util::SimTime from, util::SimTime to,
                                double factor) {
  surges_.push_back(Surge{from, to, factor});
}

void Population::schedule_next_request(Member& member) {
  if (stopped_) return;
  const double hours = member.rng.exponential(
      config_.mean_request_interval_hours / current_rate_factor());
  member.request_timer = network_.scheduler().schedule_after(
      static_cast<util::SimDuration>(hours * static_cast<double>(util::kHour)),
      [this, &member]() {
        if (member.node->online()) {
          issue_request(member);
          if (config_.cover_traffic_share > 0.0 &&
              member.rng.bernoulli(config_.cover_traffic_share)) {
            issue_cover_request(member);
          }
        }
        schedule_next_request(member);
      });
}

void Population::host_item(const CatalogItem& item) {
  // Stable members occupy the front of members_ (see constructor).
  const std::size_t stable_count =
      std::min(config_.stable_server_count, members_.size());
  if (stable_count == 0) return;
  Member& provider = members_[rng_.uniform_index(stable_count)];
  provider.node->add_blocks(item.blocks, item.root);
}

void Population::issue_request(Member& member) {
  ++requests_issued_;
  if (member.rng.bernoulli(config_.oneoff_request_share)) {
    // Unique content: fresh CID, hosted (if resolvable) by its "author".
    const CatalogItem oneoff = catalog_.create_oneoff(member.rng);
    if (oneoff.resolvable) host_item(oneoff);
    member.node->fetch(oneoff.root, [this](dag::BlockPtr block) {
      if (block != nullptr) {
        ++fetches_succeeded_;
      } else {
        ++fetches_failed_;
      }
    });
    return;
  }
  const CatalogItem& item = catalog_.sample(member.rng);
  if (item.is_dag) {
    member.node->fetch_dag(item.root,
                           [this](std::size_t /*blocks*/, bool complete) {
                             if (complete) {
                               ++fetches_succeeded_;
                             } else {
                               ++fetches_failed_;
                             }
                           });
  } else {
    member.node->fetch(item.root, [this](dag::BlockPtr block) {
      if (block != nullptr) {
        ++fetches_succeeded_;
      } else {
        ++fetches_failed_;
      }
    });
  }
}

void Population::issue_cover_request(Member& member) {
  // Effective cover traffic must target existing CIDs under a realistic
  // popularity distribution (paper Sec. VI-C item 6) — we draw from the
  // same catalog popularity genuine requests use.
  const CatalogItem& item = catalog_.sample(member.rng);
  ++cover_requests_;
  cover_pairs_.insert(CoverKey{member.node->id(), item.root});
  member.node->fetch(item.root, nullptr);
}

bool Population::is_cover_request(const crypto::PeerId& peer,
                                  const cid::Cid& cid) const {
  return cover_pairs_.count(CoverKey{peer, cid}) != 0;
}

std::size_t Population::online_count() const {
  std::size_t count = 0;
  for (const auto& member : members_) {
    if (member.node->online()) ++count;
  }
  return count;
}

std::size_t Population::online_server_count() const {
  std::size_t count = 0;
  for (const auto& member : members_) {
    if (member.node->online() && !member.node->config().nat) ++count;
  }
  return count;
}

}  // namespace ipfsmon::scenario
