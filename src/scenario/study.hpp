// The full monitoring study: network + geo, content catalog, churned node
// population, gateway fleet, and r passive monitors — the simulated
// counterpart of the paper's fifteen-month deployment (Sec. V-A/V-B).
// Experiments construct a study, run warm-up + measurement, and analyze
// the monitors' traces.
#pragma once

#include <memory>

#include "churn/injector.hpp"
#include "monitor/active_monitor.hpp"
#include "monitor/passive_monitor.hpp"
#include "obs/collector.hpp"
#include "obs/span.hpp"
#include "scenario/gateway_fleet.hpp"
#include "scenario/population.hpp"
#include "trace/preprocess.hpp"

namespace ipfsmon::scenario {

struct StudyConfig {
  std::uint64_t seed = 42;

  std::size_t monitor_count = 2;  // the paper ran "us" and "de"
  std::vector<std::string> monitor_countries = {"US", "DE"};
  /// Discovery weight for monitors: stable always-on DHT servers
  /// accumulate presence in routing tables, so ambient discovery surfaces
  /// them disproportionately. Calibrated so per-monitor coverage lands in
  /// the paper's ~50% range.
  double monitor_discovery_weight = 8.0;
  util::SimDuration snapshot_interval = 1 * util::kHour;

  /// When non-empty, each monitor spills its recording into an on-disk
  /// trace store at <monitor_spill_dir>/monitor-<id> instead of RAM (the
  /// out-of-core path; see src/tracestore). unified_trace() is then empty —
  /// use finalize_monitor_spill() + tracestore::unify_stores instead.
  std::string monitor_spill_dir;
  /// Segment roll caps for spilling monitors. Shorter spans bound how much
  /// recording a monitor crash can lose (only the open segment dies).
  std::uint64_t spill_segment_entries = 1u << 16;
  util::SimDuration spill_segment_span = 6 * util::kHour;

  /// Use crawling ActiveMonitors instead of purely passive ones — the
  /// "more active peer discovery mechanism" the paper suggests for
  /// increasing coverage (at the cost of stealth).
  bool use_active_monitors = false;
  util::SimDuration active_sweep_interval = 2 * util::kHour;

  /// Network warm-up before observations start (connections build up,
  /// caches fill).
  util::SimDuration warmup = 12 * util::kHour;
  /// Measurement window (the paper's showcased excerpt is 7 days).
  util::SimDuration duration = 7 * util::kDay;

  bool enable_gateways = true;

  // --- Sharded execution (src/sim/shard.hpp; DESIGN.md Sec. 12) -----------
  /// Run the study partitioned across this many parallel scheduler shards
  /// (via scenario::ShardedStudy — a plain MonitoringStudy ignores this).
  /// 1 = the classic single-threaded path, byte-identical to pre-sharding
  /// builds.
  std::size_t shards = 1;
  /// Use worker threads for shards > 1. Off runs the identical epoch
  /// schedule sequentially — same results, used by tests to separate
  /// determinism questions from threading ones.
  bool shard_threads = true;
  /// Minimum cross-shard link latency (the conservative lookahead, unless
  /// the geography's own floor is larger). A modelling knob: shards are
  /// long-haul regions, so inter-shard links are at least this slow. Larger
  /// values buy bigger parallel windows; smaller values make cross-shard
  /// traffic more realistic but barrier-dominated.
  util::SimDuration shard_link_floor = 25 * util::kMillisecond;

  // --- Observability (src/obs) -------------------------------------------
  /// Collect periodic metrics snapshots from the network's registry into a
  /// ring (exported at exit as a JSONL sidecar by the experiment runners).
  bool collect_metrics = true;
  util::SimDuration collect_interval = 5 * util::kMinute;
  std::size_t collect_ring_capacity = 4096;
  /// Opt-in stderr progress heartbeat with a wall-clock ETA. Off by
  /// default so library users stay silent.
  bool progress_heartbeat = false;
  util::SimDuration heartbeat_interval = 6 * util::kHour;

  /// Causal span tracing (src/obs/span.hpp). When tracing.enabled, sampled
  /// gateway requests produce end-to-end traces — gateway.request →
  /// dht.find_providers → dht.rpc / bitswap.fetch → monitor.capture — via
  /// net::Network::enable_tracing. Inert by default: no RNG draws, no
  /// allocations, byte-identical to untraced runs.
  obs::TracerConfig tracing;
  /// When non-empty (and tracing is enabled), each run_measurement() call
  /// exports the buffered spans to <base>.spans.json (Perfetto JSON) and
  /// <base>.spans.jsonl when it completes.
  std::string trace_export_base;

  CatalogConfig catalog;
  PopulationConfig population;
  GatewayFleetConfig gateways;

  /// Fault injection (src/churn): transient-peer churn, link faults,
  /// partition windows, monitor crash/restart. Inert by default — with an
  /// all-default config no injector is created, no churn RNG stream is
  /// forked, and runs are byte-identical to pre-churn builds. Transient
  /// peers run the population's member node config.
  churn::ChurnConfig churn;
};

/// Placement handed to a MonitoringStudy that runs as one shard of a
/// ShardedStudy: the shard's scheduler (owned by the coordinator) and the
/// shard topology. With the default (null scheduler / 1 shard) the study
/// owns a private scheduler and behaves exactly as before.
struct ShardPlacement {
  sim::Scheduler* scheduler = nullptr;
  std::size_t shard = 0;
  std::size_t shard_count = 1;
};

class MonitoringStudy {
 public:
  explicit MonitoringStudy(StudyConfig config);
  MonitoringStudy(StudyConfig config, const ShardPlacement& placement);
  ~MonitoringStudy();

  MonitoringStudy(const MonitoringStudy&) = delete;
  MonitoringStudy& operator=(const MonitoringStudy&) = delete;

  /// Starts everything and runs the warm-up window, then clears monitor
  /// observations so the measurement starts clean.
  void run_warmup();

  // Phase pieces of run_warmup/run_measurement, exposed so ShardedStudy
  // can interleave them with coordinator-driven time advancement (the
  // sharded run must start every shard's components before any clock
  // moves, and reset observations on all shards at the same sim time).
  /// Starts population, gateways, monitors, injector and collector without
  /// advancing time.
  void start_components();
  /// Clears monitor observations and starts snapshot timers (call once
  /// warm-up time has elapsed).
  void after_warmup();
  /// Exports buffered spans to config.trace_export_base (no-op when
  /// tracing or the base path is unset).
  void export_spans();

  /// Runs the measurement window (callable repeatedly for longer studies).
  void run_measurement(util::SimDuration duration);
  void run_measurement() { run_measurement(config_.duration); }

  /// Convenience: warm-up + full measurement.
  void run() {
    run_warmup();
    run_measurement();
  }

  // --- Access -------------------------------------------------------------
  const StudyConfig& config() const { return config_; }
  sim::Scheduler& scheduler() { return *scheduler_; }
  /// This study's shard placement (default-constructed when standalone).
  const ShardPlacement& placement() const { return placement_; }
  net::Network& network() { return *network_; }
  obs::Obs& obs() { return network_->obs(); }
  /// Null when config.collect_metrics is false.
  obs::Collector* collector() { return collector_.get(); }
  const obs::Collector* collector() const { return collector_.get(); }
  ContentCatalog& catalog() { return *catalog_; }
  Population& population() { return *population_; }
  GatewayFleet* gateways() { return fleet_.get(); }
  /// Null unless config.churn.enabled().
  churn::FaultInjector* injector() { return injector_.get(); }
  const churn::FaultInjector* injector() const { return injector_.get(); }
  std::vector<monitor::PassiveMonitor*> monitors();
  monitor::PassiveMonitor& monitor(std::size_t i) { return *monitors_[i]; }

  /// Unified, flag-marked trace across all monitors (Sec. IV-B).
  trace::Trace unified_trace(const trace::PreprocessOptions& options = {}) const;

  /// Spill-mode helpers: publishes every monitor's store manifest and
  /// returns the store directories (empty when spilling is off).
  bool finalize_monitor_spill();
  std::vector<std::string> monitor_store_dirs() const;

  /// Matched per-monitor peer-set snapshots (input to the estimators):
  /// snapshots[t][m] = monitor m's peer set at snapshot index t.
  std::vector<std::vector<std::vector<crypto::PeerId>>> matched_snapshots()
      const;

 private:
  void setup_collector();
  /// Advances the scheduler to `target`, printing heartbeat lines to
  /// stderr along the way when config.progress_heartbeat is set.
  void run_span(util::SimTime target, const char* label);

  StudyConfig config_;
  ShardPlacement placement_;
  std::unique_ptr<sim::Scheduler> owned_scheduler_;  // null when placed
  sim::Scheduler* scheduler_;
  util::RngStream rng_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<ContentCatalog> catalog_;
  std::unique_ptr<Population> population_;
  std::unique_ptr<GatewayFleet> fleet_;
  std::vector<std::unique_ptr<monitor::PassiveMonitor>> monitors_;
  std::unique_ptr<obs::Collector> collector_;
  // Declared after monitors_/network_: destroyed first, while everything
  // it references is still alive.
  std::unique_ptr<churn::FaultInjector> injector_;
};

}  // namespace ipfsmon::scenario
