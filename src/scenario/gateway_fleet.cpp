#include "scenario/gateway_fleet.hpp"

namespace ipfsmon::scenario {

std::vector<GatewayOperatorSpec> default_gateway_fleet() {
  // One dominant operator (Cloudflare in the paper: 13 confirmed nodes,
  // traffic an order of magnitude above everyone else, 97% cache hits are
  // absorbed before Bitswap) plus a tail of small community gateways.
  return {
      {"cloudflare-ipfs.com", 13, 560.0, "US", false},
      {"ipfs.io", 3, 125.0, "NL", false},
      {"dweb.link", 2, 58.0, "NL", false},
      {"gateway.pinata.cloud", 2, 39.0, "US", false},
      {"cf-ipfs.com", 1, 20.0, "US", false},
      {"ipfs.fleek.co", 1, 58.0, "CA", false},
      {"hardbin.com", 1, 33.0, "DE", false},
      {"ipfs.eth.aragon.network", 1, 26.0, "DE", false},
      {"gateway.ipfs.fr", 1, 45.0, "FR", false},
      {"broken.gateway.example", 1, 0.0, "FR", true},
  };
}

GatewayFleet::GatewayFleet(net::Network& network, const ContentCatalog& catalog,
                           GatewayFleetConfig config, util::RngStream rng)
    : network_(network),
      catalog_(catalog),
      config_(std::move(config)),
      rng_(std::move(rng)) {
  util::RngStream key_rng = rng_.fork("gateway-keys");
  for (const auto& spec : config_.operators) {
    auto op = std::make_unique<Operator>(spec, rng_.fork(spec.name));
    for (std::size_t i = 0; i < spec.node_count; ++i) {
      const std::string country =
          spec.country.empty() ? network_.geo().sample_country(rng_)
                               : spec.country;
      const net::Address address = network_.geo().allocate_address(country);
      crypto::KeyPair keys = crypto::KeyPair::generate(key_rng);

      node::NodeConfig node_config = config_.node;
      // Gateways are busy, stable hubs: discovery surfaces them often
      // (the paper notes monitors' peers skew towards "popular gateway
      // nodes").
      node_config.discovery_weight = 4.0;
      auto gw = std::make_unique<node::GatewayNode>(
          network_, std::move(keys), address, country, node_config,
          config_.gateway, rng_.fork(spec.name + std::to_string(i)));
      truth_[spec.name].push_back(gw->id());
      node_to_operator_[gw->id()] = spec.name;
      op->nodes.push_back(std::move(gw));
    }
    operators_.push_back(std::move(op));
  }
}

GatewayFleet::~GatewayFleet() { stop(); }

void GatewayFleet::start(const std::vector<crypto::PeerId>& bootstrap) {
  for (auto& op : operators_) {
    for (auto& gw : op->nodes) {
      gw->node().go_online(bootstrap);
    }
    if (op->spec.http_requests_per_hour > 0.0 && !op->spec.http_broken) {
      schedule_http_request(*op);
    }
  }
}

void GatewayFleet::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& op : operators_) op->request_timer.cancel();
}

void GatewayFleet::schedule_http_request(Operator& op) {
  if (stopped_) return;
  const double hours = op.rng.exponential(1.0 / op.spec.http_requests_per_hour);
  op.request_timer = network_.scheduler().schedule_after(
      static_cast<util::SimDuration>(hours * static_cast<double>(util::kHour)),
      [this, &op]() {
        // Anycast-style load balancing over the operator's nodes.
        node::GatewayNode& gw =
            *op.nodes[op.rng.uniform_index(op.nodes.size())];
        ++http_requests_issued_;
        if (op.rng.bernoulli(config_.oneoff_request_share)) {
          const CatalogItem oneoff = catalog_.create_oneoff(op.rng);
          if (oneoff.resolvable && oneoff_host_) oneoff_host_(oneoff);
          gw.handle_http_request(oneoff.root, nullptr);
        } else {
          const CatalogItem& item =
              catalog_.sample_popular(op.rng, config_.popularity_bias);
          gw.handle_http_request(item.root, nullptr);
        }
        schedule_http_request(op);
      });
}

bool GatewayFleet::is_gateway_node(const crypto::PeerId& id) const {
  return node_to_operator_.count(id) != 0;
}

std::string GatewayFleet::operator_of(const crypto::PeerId& id) const {
  const auto it = node_to_operator_.find(id);
  return it == node_to_operator_.end() ? std::string() : it->second;
}

std::vector<std::string> GatewayFleet::operator_names() const {
  std::vector<std::string> out;
  out.reserve(operators_.size());
  for (const auto& op : operators_) out.push_back(op->spec.name);
  return out;
}

std::vector<node::GatewayNode*> GatewayFleet::nodes_of(
    const std::string& name) {
  std::vector<node::GatewayNode*> out;
  for (auto& op : operators_) {
    if (op->spec.name != name) continue;
    for (auto& gw : op->nodes) out.push_back(gw.get());
  }
  return out;
}

node::GatewayNode* GatewayFleet::any_node_of(const std::string& name) {
  const auto nodes = nodes_of(name);
  return nodes.empty() ? nullptr : nodes.front();
}

const GatewayOperatorSpec* GatewayFleet::spec_of(
    const std::string& name) const {
  for (const auto& op : operators_) {
    if (op->spec.name == name) return &op->spec;
  }
  return nullptr;
}

double GatewayFleet::cache_hit_ratio() const {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  for (const auto& op : operators_) {
    for (const auto& gw : op->nodes) {
      requests += gw->http_requests();
      hits += gw->cache_hits();
    }
  }
  return requests == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(requests);
}

}  // namespace ipfsmon::scenario
