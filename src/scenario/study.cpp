#include "scenario/study.hpp"

namespace ipfsmon::scenario {

MonitoringStudy::MonitoringStudy(StudyConfig config)
    : config_(std::move(config)), rng_(config_.seed, "study") {
  network_ = std::make_unique<net::Network>(
      scheduler_, net::GeoDatabase::standard(), config_.seed);
  catalog_ = std::make_unique<ContentCatalog>(config_.catalog,
                                              rng_.fork("catalog"));
  population_ = std::make_unique<Population>(*network_, *catalog_,
                                             config_.population,
                                             rng_.fork("population"));
  if (config_.enable_gateways) {
    fleet_ = std::make_unique<GatewayFleet>(*network_, *catalog_,
                                            config_.gateways,
                                            rng_.fork("gateways"));
    fleet_->set_oneoff_host([this](const CatalogItem& item) {
      population_->host_item(item);
    });
  }

  util::RngStream key_rng = rng_.fork("monitor-keys");
  for (std::size_t i = 0; i < config_.monitor_count; ++i) {
    const std::string country =
        i < config_.monitor_countries.size() ? config_.monitor_countries[i]
                                             : network_->geo().sample_country(rng_);
    const net::Address address = network_->geo().allocate_address(country);
    crypto::KeyPair keys = crypto::KeyPair::generate(key_rng);

    monitor::MonitorConfig mon_config;
    mon_config.monitor_id = static_cast<trace::MonitorId>(i);
    mon_config.snapshot_interval = config_.snapshot_interval;
    mon_config.node = config_.population.node;
    mon_config.node.discovery_weight = config_.monitor_discovery_weight;
    if (config_.use_active_monitors) {
      monitor::ActiveMonitorConfig active_config;
      active_config.base = mon_config;
      active_config.sweep_interval = config_.active_sweep_interval;
      monitors_.push_back(std::make_unique<monitor::ActiveMonitor>(
          *network_, std::move(keys), address, country, active_config,
          rng_.fork(i + 1000)));
    } else {
      monitors_.push_back(std::make_unique<monitor::PassiveMonitor>(
          *network_, std::move(keys), address, country, mon_config,
          rng_.fork(i + 1000)));
    }
  }
}

MonitoringStudy::~MonitoringStudy() = default;

void MonitoringStudy::run_warmup() {
  population_->start();
  const auto& bootstrap = population_->bootstrap_ids();
  if (fleet_) fleet_->start(bootstrap);
  for (auto& m : monitors_) {
    m->go_online(bootstrap);
    if (config_.use_active_monitors) {
      static_cast<monitor::ActiveMonitor*>(m.get())->start_sweeps();
    }
  }

  scheduler_.run_until(scheduler_.now() + config_.warmup);

  for (auto& m : monitors_) {
    m->reset_observations();
    m->start_snapshots();
  }
}

void MonitoringStudy::run_measurement(util::SimDuration duration) {
  scheduler_.run_until(scheduler_.now() + duration);
}

std::vector<monitor::PassiveMonitor*> MonitoringStudy::monitors() {
  std::vector<monitor::PassiveMonitor*> out;
  out.reserve(monitors_.size());
  for (auto& m : monitors_) out.push_back(m.get());
  return out;
}

trace::Trace MonitoringStudy::unified_trace(
    const trace::PreprocessOptions& options) const {
  std::vector<const trace::Trace*> traces;
  traces.reserve(monitors_.size());
  for (const auto& m : monitors_) traces.push_back(&m->recorded());
  return trace::unify(traces, options);
}

std::vector<std::vector<std::vector<crypto::PeerId>>>
MonitoringStudy::matched_snapshots() const {
  std::size_t count = std::numeric_limits<std::size_t>::max();
  for (const auto& m : monitors_) {
    count = std::min(count, m->snapshots().size());
  }
  if (count == std::numeric_limits<std::size_t>::max()) count = 0;

  std::vector<std::vector<std::vector<crypto::PeerId>>> out;
  out.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    std::vector<std::vector<crypto::PeerId>> row;
    row.reserve(monitors_.size());
    for (const auto& m : monitors_) row.push_back(m->snapshots()[t].peers);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace ipfsmon::scenario
