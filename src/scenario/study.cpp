#include "scenario/study.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/span_export.hpp"

namespace ipfsmon::scenario {

MonitoringStudy::MonitoringStudy(StudyConfig config)
    : MonitoringStudy(std::move(config), ShardPlacement{}) {}

MonitoringStudy::MonitoringStudy(StudyConfig config,
                                 const ShardPlacement& placement)
    : config_(std::move(config)),
      placement_(placement),
      owned_scheduler_(placement.scheduler == nullptr
                           ? std::make_unique<sim::Scheduler>()
                           : nullptr),
      scheduler_(placement.scheduler != nullptr ? placement.scheduler
                                                : owned_scheduler_.get()),
      rng_(config_.seed, "study") {
  net::GeoDatabase geo = net::GeoDatabase::standard();
  if (placement_.shard_count > 1) {
    // Disjoint per-shard host slabs inside every country's /8 block, so
    // addresses stay globally unique without cross-shard coordination.
    geo.set_address_offset(
        static_cast<std::uint32_t>(placement_.shard) << 20);
  }
  network_ = std::make_unique<net::Network>(*scheduler_, std::move(geo),
                                            config_.seed);
  // Only when enabled: with the default (inert) config no tracer state is
  // allocated and runs stay byte-identical to untraced builds.
  if (config_.tracing.enabled) network_->enable_tracing(config_.tracing);
  catalog_ = std::make_unique<ContentCatalog>(config_.catalog,
                                              rng_.fork("catalog"));
  population_ = std::make_unique<Population>(*network_, *catalog_,
                                             config_.population,
                                             rng_.fork("population"));
  if (config_.enable_gateways) {
    fleet_ = std::make_unique<GatewayFleet>(*network_, *catalog_,
                                            config_.gateways,
                                            rng_.fork("gateways"));
    fleet_->set_oneoff_host([this](const CatalogItem& item) {
      population_->host_item(item);
    });
  }

  util::RngStream key_rng = rng_.fork("monitor-keys");
  for (std::size_t i = 0; i < config_.monitor_count; ++i) {
    // Placed studies host only their own monitors (global index mod shard
    // count), skipped before any RNG draw; monitor_id stays the global
    // index so unified traces keep one id space across shards.
    if (placement_.shard_count > 1 &&
        i % placement_.shard_count != placement_.shard) {
      continue;
    }
    const std::string country =
        i < config_.monitor_countries.size() ? config_.monitor_countries[i]
                                             : network_->geo().sample_country(rng_);
    const net::Address address = network_->geo().allocate_address(country);
    crypto::KeyPair keys = crypto::KeyPair::generate(key_rng);

    monitor::MonitorConfig mon_config;
    mon_config.monitor_id = static_cast<trace::MonitorId>(i);
    mon_config.snapshot_interval = config_.snapshot_interval;
    if (!config_.monitor_spill_dir.empty()) {
      mon_config.spill_dir =
          config_.monitor_spill_dir + "/monitor-" + std::to_string(i);
      mon_config.spill_segment_entries = config_.spill_segment_entries;
      mon_config.spill_segment_span = config_.spill_segment_span;
    }
    mon_config.node = config_.population.node;
    mon_config.node.discovery_weight = config_.monitor_discovery_weight;
    if (config_.use_active_monitors) {
      monitor::ActiveMonitorConfig active_config;
      active_config.base = mon_config;
      active_config.sweep_interval = config_.active_sweep_interval;
      monitors_.push_back(std::make_unique<monitor::ActiveMonitor>(
          *network_, std::move(keys), address, country, active_config,
          rng_.fork(i + 1000)));
    } else {
      monitors_.push_back(std::make_unique<monitor::PassiveMonitor>(
          *network_, std::move(keys), address, country, mon_config,
          rng_.fork(i + 1000)));
    }
  }

  // Fault injection last, and only when enabled: the "churn" RNG fork must
  // not happen otherwise, or it would shift rng_'s state and perturb every
  // existing fault-free run.
  if (config_.churn.enabled()) {
    churn::ChurnConfig churn_config = config_.churn;
    churn_config.nodes.node = config_.population.node;
    injector_ = std::make_unique<churn::FaultInjector>(
        *network_, std::move(churn_config), rng_.fork("churn"));
    injector_->set_request_source([this](util::RngStream& rng) {
      return catalog_->sample(rng).root;
    });
    for (auto& m : monitors_) injector_->add_monitor(m.get());
  }

  if (config_.collect_metrics) setup_collector();
}

void MonitoringStudy::setup_collector() {
  obs::CollectorConfig collector_config;
  collector_config.interval = config_.collect_interval;
  collector_config.ring_capacity = config_.collect_ring_capacity;
  collector_ = std::make_unique<obs::Collector>(
      *scheduler_, network_->obs().metrics, collector_config);
  obs::register_scheduler_metrics(*collector_, network_->obs().metrics,
                                  *scheduler_);

  // Ground-truth gauges refreshed right before each sample: population and
  // gateway state the instrumented layers cannot see from inside.
  auto& reg = network_->obs().metrics;
  obs::Gauge& online = reg.gauge("ipfsmon_population_online_nodes",
                                 "Population members currently online");
  obs::Gauge& online_servers =
      reg.gauge("ipfsmon_population_online_servers",
                "Online members running in DHT server mode");
  obs::Gauge& requests = reg.gauge("ipfsmon_population_requests_issued",
                                   "Data requests issued by the population");
  obs::Gauge& succeeded = reg.gauge("ipfsmon_population_fetches_succeeded",
                                    "Population fetches that delivered");
  obs::Gauge& failed = reg.gauge("ipfsmon_population_fetches_failed",
                                 "Population fetches that timed out");
  obs::Gauge* gateway_requests =
      fleet_ != nullptr
          ? &reg.gauge("ipfsmon_gateway_http_requests",
                       "HTTP requests issued through the gateway fleet")
          : nullptr;
  collector_->add_sampler([this, &online, &online_servers, &requests,
                           &succeeded, &failed, gateway_requests]() {
    online.set(static_cast<double>(population_->online_count()));
    online_servers.set(static_cast<double>(population_->online_server_count()));
    requests.set(static_cast<double>(population_->requests_issued()));
    succeeded.set(static_cast<double>(population_->fetches_succeeded()));
    failed.set(static_cast<double>(population_->fetches_failed()));
    if (gateway_requests != nullptr) {
      gateway_requests->set(
          static_cast<double>(fleet_->http_requests_issued()));
    }
  });
}

MonitoringStudy::~MonitoringStudy() = default;

void MonitoringStudy::start_components() {
  population_->start();
  const auto& bootstrap = population_->bootstrap_ids();
  if (fleet_) fleet_->start(bootstrap);
  for (auto& m : monitors_) {
    m->go_online(bootstrap);
    if (config_.use_active_monitors) {
      static_cast<monitor::ActiveMonitor*>(m.get())->start_sweeps();
    }
  }
  if (injector_) injector_->start(bootstrap);
  if (collector_ && !collector_->running()) collector_->start();
}

void MonitoringStudy::after_warmup() {
  for (auto& m : monitors_) {
    m->reset_observations();
    m->start_snapshots();
  }
}

void MonitoringStudy::run_warmup() {
  start_components();
  run_span(scheduler_->now() + config_.warmup, "warmup");
  after_warmup();
}

void MonitoringStudy::run_measurement(util::SimDuration duration) {
  run_span(scheduler_->now() + duration, "measurement");
  export_spans();
}

void MonitoringStudy::export_spans() {
  if (!config_.tracing.enabled || config_.trace_export_base.empty()) return;
  const auto spans = network_->obs().tracer.snapshot();
  std::string error;
  const std::string json_path = config_.trace_export_base + ".spans.json";
  const std::string jsonl_path = config_.trace_export_base + ".spans.jsonl";
  if (!obs::write_perfetto_json(json_path, spans, obs::has_sim_times(spans),
                                &error) ||
      !obs::write_spans_jsonl(jsonl_path, spans, &error)) {
    std::fprintf(stderr, "[ipfsmon] span export failed: %s\n", error.c_str());
  }
}

void MonitoringStudy::run_span(util::SimTime target, const char* label) {
  if (!config_.progress_heartbeat) {
    scheduler_->run_until(target);
    return;
  }
  const util::SimTime start = scheduler_->now();
  const auto wall_start = std::chrono::steady_clock::now();
  while (scheduler_->now() < target) {
    scheduler_->run_until(
        std::min(target, scheduler_->now() + config_.heartbeat_interval));
    const double progress = static_cast<double>(scheduler_->now() - start) /
                            static_cast<double>(target - start);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    const double eta =
        progress > 0.0 ? wall * (1.0 - progress) / progress : 0.0;
    std::fprintf(stderr,
                 "[ipfsmon] %s %3.0f%% (sim %s) wall %.1fs eta %.1fs\n",
                 label, 100.0 * progress,
                 util::format_sim_time(scheduler_->now()).c_str(), wall, eta);
  }
}

std::vector<monitor::PassiveMonitor*> MonitoringStudy::monitors() {
  std::vector<monitor::PassiveMonitor*> out;
  out.reserve(monitors_.size());
  for (auto& m : monitors_) out.push_back(m.get());
  return out;
}

trace::Trace MonitoringStudy::unified_trace(
    const trace::PreprocessOptions& options) const {
  std::vector<const trace::Trace*> traces;
  traces.reserve(monitors_.size());
  for (const auto& m : monitors_) traces.push_back(&m->recorded());
  return trace::unify(traces, options);
}

bool MonitoringStudy::finalize_monitor_spill() {
  bool ok = !monitors_.empty();
  for (auto& m : monitors_) {
    if (!m->finalize_spill()) ok = false;
  }
  return ok;
}

std::vector<std::string> MonitoringStudy::monitor_store_dirs() const {
  std::vector<std::string> out;
  for (const auto& m : monitors_) {
    if (m->spilling()) out.push_back(m->spill_dir());
  }
  return out;
}

std::vector<std::vector<std::vector<crypto::PeerId>>>
MonitoringStudy::matched_snapshots() const {
  std::size_t count = std::numeric_limits<std::size_t>::max();
  for (const auto& m : monitors_) {
    count = std::min(count, m->snapshots().size());
  }
  if (count == std::numeric_limits<std::size_t>::max()) count = 0;

  std::vector<std::vector<std::vector<crypto::PeerId>>> out;
  out.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    std::vector<std::vector<crypto::PeerId>> row;
    row.reserve(monitors_.size());
    for (const auto& m : monitors_) row.push_back(m->snapshots()[t].peers);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace ipfsmon::scenario
