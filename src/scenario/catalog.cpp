#include "scenario/catalog.hpp"

#include <algorithm>

namespace ipfsmon::scenario {

std::vector<CodecShare> table1_codec_mix() {
  // Shares from the paper's Table I (share of data requests by codec).
  return {
      {cid::Multicodec::DagProtobuf, 86.21},
      {cid::Multicodec::Raw, 13.42},
      {cid::Multicodec::DagCBOR, 0.37},
      {cid::Multicodec::GitRaw, 0.002},
      {cid::Multicodec::EthereumTx, 0.0006},
      {cid::Multicodec::DagJSON, 0.0005},
      {cid::Multicodec::EthereumBlock, 0.0003},
  };
}

ContentCatalog::ContentCatalog(const CatalogConfig& config,
                               util::RngStream rng)
    : config_(config) {
  items_.reserve(config.item_count);
  codec_weights_.reserve(config.codec_mix.size());
  for (const auto& share : config.codec_mix) {
    codec_weights_.push_back(share.weight);
  }

  // Pass 1: popularity weights. Pass 2 assigns codecs *stratified by
  // weight tier* (greedy largest-remainder over the weight-sorted order):
  // with a finite catalog, a handful of head items dominates the request
  // volume, and independently-sampled codecs would make the realized
  // request mix swing wildly by seed. Codec and popularity are
  // approximately independent in the real network, which stratification
  // preserves at any prefix of the popularity order.
  std::vector<double> weights(config.item_count);
  std::vector<bool> resolvable(config.item_count);
  for (std::size_t i = 0; i < config.item_count; ++i) {
    weights[i] = rng.lognormal(config.lognormal_mu, config.lognormal_sigma);
    resolvable[i] = !rng.bernoulli(config.unresolvable_share);
    // Dead references attract little *genuine* demand — their apparent
    // (RRP) popularity comes from re-broadcast inflation, as the paper
    // observes ("popular data items according to RRP are often not
    // resolvable"). Damping their intrinsic weight also keeps a single
    // unlucky head item from dominating the raw codec mix.
    if (!resolvable[i]) weights[i] *= 0.1;
  }
  std::vector<std::size_t> order(config.item_count);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  double total_codec_weight = 0.0;
  for (double w : codec_weights_) total_codec_weight += w;
  std::vector<double> codec_deficit(codec_weights_.size(), 0.0);
  std::vector<cid::Multicodec> codec_of(config.item_count);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    // Each codec accrues credit proportional to its share; assign the item
    // to the codec with the largest outstanding credit.
    std::size_t best = 0;
    for (std::size_t c = 0; c < codec_weights_.size(); ++c) {
      codec_deficit[c] += codec_weights_[c] / total_codec_weight;
      if (codec_deficit[c] > codec_deficit[best]) best = c;
    }
    codec_deficit[best] -= 1.0;
    codec_of[order[rank]] = config.codec_mix[best].codec;
  }

  for (std::size_t i = 0; i < config.item_count; ++i) {
    CatalogItem item;
    item.codec = codec_of[i];
    item.resolvable = resolvable[i];
    item.weight = weights[i];

    const bool build_dag = item.codec == cid::Multicodec::DagProtobuf &&
                           rng.bernoulli(config.dag_share);
    if (build_dag) {
      // A real multi-chunk file DAG: consumers fetch it via a session, so
      // monitors will only observe the root CID.
      util::Bytes data(config.block_size * config.dag_chunks);
      rng.fill_bytes(data.data(), data.size());
      dag::BuilderOptions options;
      options.chunk_size = config.block_size;
      const dag::DagBuildResult built = dag::build_file(data, options);
      item.root = built.root;
      item.is_dag = true;
      for (const auto& block : built.blocks) {
        item.blocks.push_back(std::make_shared<dag::Block>(block));
      }
    } else {
      util::Bytes data(config.block_size);
      rng.fill_bytes(data.data(), data.size());
      auto block = std::make_shared<dag::Block>(
          dag::Block::create(item.codec, std::move(data)));
      item.root = block->id();
      item.blocks.push_back(std::move(block));
    }

    if (item.resolvable) ++resolvable_count_;
    items_.push_back(std::move(item));
  }

  cumulative_weight_.reserve(items_.size());
  double acc = 0.0;
  for (const auto& item : items_) {
    acc += item.weight;
    cumulative_weight_.push_back(acc);
  }
}

const CatalogItem& ContentCatalog::sample_popular(util::RngStream& rng,
                                                  std::size_t bias) const {
  std::size_t best = sample_index(rng);
  for (std::size_t i = 1; i < bias; ++i) {
    const std::size_t candidate = sample_index(rng);
    if (items_[candidate].weight > items_[best].weight) best = candidate;
  }
  return items_[best];
}

CatalogItem ContentCatalog::create_oneoff(util::RngStream& rng) const {
  CatalogItem item;
  item.codec = config_.codec_mix[rng.weighted_index(codec_weights_)].codec;
  item.resolvable = !rng.bernoulli(config_.unresolvable_share);
  item.weight = 0.0;
  util::Bytes data(config_.block_size);
  rng.fill_bytes(data.data(), data.size());
  auto block = std::make_shared<dag::Block>(
      dag::Block::create(item.codec, std::move(data)));
  item.root = block->id();
  item.blocks.push_back(std::move(block));
  return item;
}

std::size_t ContentCatalog::sample_index(util::RngStream& rng) const {
  if (items_.empty()) return 0;
  const double target = rng.uniform() * cumulative_weight_.back();
  const auto it = std::lower_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), target);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_weight_.begin()),
      items_.size() - 1);
}

}  // namespace ipfsmon::scenario
