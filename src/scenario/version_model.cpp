#include "scenario/version_model.hpp"

#include <cmath>

namespace ipfsmon::scenario {

double VersionAdoptionModel::upgraded_share(util::SimTime t) const {
  const double x = util::to_days(t - midpoint) / steepness_days;
  const double logistic = 1.0 / (1.0 + std::exp(-x));
  return initial_share + (final_share - initial_share) * logistic;
}

}  // namespace ipfsmon::scenario
