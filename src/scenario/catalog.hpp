// The synthetic content catalog: the population of data items that nodes
// and gateway users request. Item codecs follow a configurable mix (tuned
// to the paper's Table I request shares), popularity weights follow a
// log-normal (heavy-skewed but NOT power-law — the paper rejects the
// power-law hypothesis for its measured popularity, Sec. V-E), and a small
// share of items is unresolvable (no provider) — the paper observes that
// popular-by-RRP CIDs are often unresolvable because stalled fetches
// re-broadcast forever.
#pragma once

#include <vector>

#include "cid/multicodec.hpp"
#include "dag/builder.hpp"
#include "util/rng.hpp"

namespace ipfsmon::scenario {

struct CatalogItem {
  cid::Cid root;
  cid::Multicodec codec = cid::Multicodec::Raw;
  std::vector<dag::BlockPtr> blocks;  // all blocks (root included)
  bool resolvable = true;             // false ⇒ never given to providers
  bool is_dag = false;                // multi-block file (fetched via session)
  double weight = 1.0;                // request-popularity weight
};

struct CodecShare {
  cid::Multicodec codec;
  double weight;
};

/// Codec mix approximating Table I (share of requests by multicodec).
std::vector<CodecShare> table1_codec_mix();

struct CatalogConfig {
  std::size_t item_count = 4000;
  /// Share of items without any provider (requests for them stall and
  /// re-broadcast until the fetch deadline).
  double unresolvable_share = 0.11;
  /// Share of DagProtobuf items built as real multi-block file DAGs.
  double dag_share = 0.10;
  std::size_t dag_chunks = 4;
  std::size_t block_size = 256;  // bytes of payload per block
  /// Log-normal popularity-weight parameters. The large sigma produces the
  /// paper's shape: a vast majority of CIDs requested by a single peer,
  /// a few heavily requested ones, and no power-law tail.
  double lognormal_mu = 0.0;
  double lognormal_sigma = 2.4;
  std::vector<CodecShare> codec_mix = table1_codec_mix();
};

class ContentCatalog {
 public:
  ContentCatalog(const CatalogConfig& config, util::RngStream rng);

  const std::vector<CatalogItem>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }

  /// Samples an item index by popularity weight.
  std::size_t sample_index(util::RngStream& rng) const;
  const CatalogItem& sample(util::RngStream& rng) const {
    return items_[sample_index(rng)];
  }

  /// Head-biased sampling (tournament selection over `bias` weighted
  /// draws): models gateway HTTP users, whose interest concentrates on
  /// popular web content far more than node operators' — the reason
  /// Cloudflare can report a 97% cache-hit ratio.
  const CatalogItem& sample_popular(util::RngStream& rng,
                                    std::size_t bias = 4) const;

  /// Creates a fresh single-block "one-off" item — unique content that
  /// only one user will ever request (personal files, fresh uploads). The
  /// bulk of real-world CIDs behave this way: the paper observes >80% of
  /// CIDs requested by exactly one peer. The caller decides whether (and
  /// where) to host the blocks.
  CatalogItem create_oneoff(util::RngStream& rng) const;

  std::size_t resolvable_count() const { return resolvable_count_; }

 private:
  CatalogConfig config_;
  std::vector<double> codec_weights_;
  std::vector<CatalogItem> items_;
  std::vector<double> cumulative_weight_;
  std::size_t resolvable_count_ = 0;
};

}  // namespace ipfsmon::scenario
