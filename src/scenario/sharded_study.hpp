// The sharded monitoring study: config.shards placed MonitoringStudy
// instances, one per sim::Scheduler shard, advanced in lockstep by a
// ShardedScheduler coordinator. Each shard is a quasi-independent region
// (own catalog, population share, gateways) whose nodes can discover and
// dial the monitors of every other shard — monitors are the cross-shard
// cut, mirroring how the paper's vantage points peer with the whole
// network while ordinary peers cluster regionally.
//
// shards == 1 is a complete passthrough: no coordinator threads, no
// cross-shard plumbing, byte-identical traces to a plain MonitoringStudy
// (and therefore to pre-sharding builds). See DESIGN.md Sec. 12 for the
// determinism contract.
#pragma once

#include <memory>
#include <vector>

#include "scenario/study.hpp"
#include "sim/shard.hpp"

namespace ipfsmon::scenario {

class ShardedStudy {
 public:
  explicit ShardedStudy(StudyConfig config);
  ~ShardedStudy();

  ShardedStudy(const ShardedStudy&) = delete;
  ShardedStudy& operator=(const ShardedStudy&) = delete;

  /// Starts every shard's components, runs the warm-up window under the
  /// coordinator, then resets all monitors at the same sim time.
  void run_warmup();
  void run_measurement(util::SimDuration duration);
  void run_measurement() { run_measurement(config_.duration); }
  void run() {
    run_warmup();
    run_measurement();
  }

  // --- Access -------------------------------------------------------------
  const StudyConfig& config() const { return config_; }
  std::size_t shard_count() const { return studies_.size(); }
  sim::ShardedScheduler& coordinator() { return *coordinator_; }
  const sim::ShardedScheduler& coordinator() const { return *coordinator_; }
  MonitoringStudy& shard(std::size_t s) { return *studies_[s]; }
  const MonitoringStudy& shard(std::size_t s) const { return *studies_[s]; }

  /// All monitors across all shards, in global monitor-id order.
  std::vector<monitor::PassiveMonitor*> monitors();

  /// Unified, flag-marked trace across every shard's monitors.
  trace::Trace unified_trace(const trace::PreprocessOptions& options = {}) const;

  bool finalize_monitor_spill();
  std::vector<std::string> monitor_store_dirs() const;

  /// Matched snapshots across all monitors (global id order per row), cut
  /// to the shortest monitor's snapshot count.
  std::vector<std::vector<std::vector<crypto::PeerId>>> matched_snapshots()
      const;

  // Ground truth summed over shards.
  std::uint64_t requests_issued() const;
  std::uint64_t fetches_succeeded() const;
  std::uint64_t fetches_failed() const;
  std::size_t population_size() const;
  std::size_t online_count() const;
  std::size_t ever_online_count() const;

 private:
  /// Splits `total` into shard-count slices; slice s gets the remainder
  /// spread over the low shards so the sum is exactly `total`.
  std::size_t share(std::size_t total, std::size_t s) const;
  StudyConfig shard_config(std::size_t s) const;
  void run_span(util::SimTime target, const char* label);
  std::vector<const monitor::PassiveMonitor*> monitors_by_id() const;

  StudyConfig config_;
  std::unique_ptr<sim::ShardedScheduler> coordinator_;
  std::vector<net::Network*> shard_networks_;  // resolver table
  std::vector<std::unique_ptr<MonitoringStudy>> studies_;
};

}  // namespace ipfsmon::scenario
