// The public gateway fleet (paper Sec. VI-B): named operators, each backed
// by one or more IPFS nodes behind an HTTP front. One dominant operator
// (Cloudflare-like, 13 nodes in the paper) handles most HTTP traffic with
// a high cache-hit ratio. HTTP users are modeled as Poisson arrivals over
// the same content catalog as node-local requests.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "node/gateway.hpp"
#include "scenario/catalog.hpp"
#include "scenario/population.hpp"

namespace ipfsmon::scenario {

struct GatewayOperatorSpec {
  std::string name;
  std::size_t node_count = 1;
  /// HTTP requests per hour across the operator.
  double http_requests_per_hour = 50.0;
  /// Empty ⇒ country sampled from the geo distribution.
  std::string country;
  /// Operator whose HTTP front is broken: requests never reach the HTTP
  /// handler, but the node is still discoverable via gateway probing
  /// (paper: "we suspect a misconfiguration on the HTTP end").
  bool http_broken = false;
};

/// Default fleet: a dominant multi-node operator plus several small ones,
/// shaped after the paper's findings (one operator with 13 nodes; gateway
/// traffic comparable to all homegrown traffic combined).
std::vector<GatewayOperatorSpec> default_gateway_fleet();

struct GatewayFleetConfig {
  std::vector<GatewayOperatorSpec> operators = default_gateway_fleet();
  /// Gateways cache aggressively (Cloudflare reports 97% hits).
  node::GatewayConfig gateway{/*cache_ttl=*/6 * util::kHour};
  node::NodeConfig node = default_member_node_config();
  /// Gateway users' catalog interest is head-skewed (tournament bias):
  /// popular web content dominates HTTP traffic, keeping hit ratios high.
  std::size_t popularity_bias = 6;
  /// Share of HTTP requests for fresh one-off CIDs (always cache misses).
  double oneoff_request_share = 0.12;
};

class GatewayFleet {
 public:
  GatewayFleet(net::Network& network, const ContentCatalog& catalog,
               GatewayFleetConfig config, util::RngStream rng);
  ~GatewayFleet();

  GatewayFleet(const GatewayFleet&) = delete;
  GatewayFleet& operator=(const GatewayFleet&) = delete;

  /// Brings all gateway nodes online and starts the HTTP workloads.
  void start(const std::vector<crypto::PeerId>& bootstrap);
  void stop();

  /// Installs the host for one-off content authored by gateway users
  /// (typically Population::host_item). Without one, one-off HTTP requests
  /// are unresolvable.
  void set_oneoff_host(std::function<void(const CatalogItem&)> host) {
    oneoff_host_ = std::move(host);
  }

  /// Ground truth: which node ids belong to which operator.
  const std::map<std::string, std::vector<crypto::PeerId>>& ground_truth()
      const {
    return truth_;
  }

  bool is_gateway_node(const crypto::PeerId& id) const;
  /// Operator name, or "" if not a gateway node.
  std::string operator_of(const crypto::PeerId& id) const;

  std::vector<std::string> operator_names() const;
  /// All gateway nodes of an operator.
  std::vector<node::GatewayNode*> nodes_of(const std::string& name);
  node::GatewayNode* any_node_of(const std::string& name);
  const GatewayOperatorSpec* spec_of(const std::string& name) const;

  std::uint64_t http_requests_issued() const { return http_requests_issued_; }

  /// Aggregate cache-hit ratio across the fleet.
  double cache_hit_ratio() const;

 private:
  struct Operator {
    GatewayOperatorSpec spec;
    std::vector<std::unique_ptr<node::GatewayNode>> nodes;
    util::RngStream rng;
    sim::EventHandle request_timer;

    Operator(GatewayOperatorSpec s, util::RngStream r)
        : spec(std::move(s)), rng(std::move(r)) {}
  };

  void schedule_http_request(Operator& op);

  net::Network& network_;
  const ContentCatalog& catalog_;
  GatewayFleetConfig config_;
  util::RngStream rng_;

  std::function<void(const CatalogItem&)> oneoff_host_;
  std::vector<std::unique_ptr<Operator>> operators_;
  std::map<std::string, std::vector<crypto::PeerId>> truth_;
  std::map<crypto::PeerId, std::string> node_to_operator_;
  std::uint64_t http_requests_issued_ = 0;
  bool stopped_ = false;
};

}  // namespace ipfsmon::scenario
