// Quickstart: stand up a small simulated IPFS network, publish a file,
// fetch it from another node, run a passive monitor, and look at the
// recorded Bitswap trace — the library's core loop in ~100 lines.
#include <cstdio>

#include "monitor/passive_monitor.hpp"
#include "node/ipfs_node.hpp"
#include "trace/preprocess.hpp"
#include "util/strings.hpp"

using namespace ipfsmon;

int main() {
  // --- 1. A network with a geography and a deterministic seed. ------------
  sim::Scheduler scheduler;
  net::Network network(scheduler, net::GeoDatabase::standard(), /*seed=*/7);
  util::RngStream rng(7, "quickstart");

  auto make_node = [&](const std::string& country,
                       node::NodeConfig config) {
    crypto::KeyPair keys = crypto::KeyPair::generate(rng);
    const net::Address addr = network.geo().allocate_address(country);
    return std::make_unique<node::IpfsNode>(network, std::move(keys), addr,
                                            country, config, rng.fork(1));
  };

  node::NodeConfig server_config;
  server_config.dht_server = true;

  auto alice = make_node("DE", server_config);
  auto bob = make_node("US", server_config);
  auto carol = make_node("FR", server_config);

  // --- 2. A passive monitor (accepts everything, records Bitswap). --------
  monitor::MonitorConfig mon_config;
  mon_config.monitor_id = 0;
  crypto::KeyPair mon_keys = crypto::KeyPair::generate(rng);
  monitor::PassiveMonitor watch(network, std::move(mon_keys),
                                network.geo().allocate_address("US"), "US",
                                mon_config, rng.fork(2));

  // --- 3. Everyone joins, bootstrapping off alice. -------------------------
  alice->go_online({});
  const std::vector<crypto::PeerId> bootstrap = {alice->id()};
  bob->go_online(bootstrap);
  carol->go_online(bootstrap);
  watch.go_online(bootstrap);

  // Give the DHT a moment to form, then make sure bob and carol also know
  // the monitor (in a real network ambient discovery does this).
  scheduler.run_until(scheduler.now() + 30 * util::kSecond);
  network.dial(bob->id(), watch.id(), nullptr);
  network.dial(carol->id(), watch.id(), nullptr);
  scheduler.run_until(scheduler.now() + 10 * util::kSecond);

  // --- 4. Alice publishes a file; bob fetches the whole DAG. --------------
  util::Bytes file_bytes(100 * 1024);
  util::RngStream file_rng(99);
  file_rng.fill_bytes(file_bytes.data(), file_bytes.size());
  dag::BuilderOptions opts;
  opts.chunk_size = 16 * 1024;  // several chunks, to get a real DAG
  const dag::DagBuildResult file = alice->add_file(file_bytes, opts);
  std::printf("alice published %zu blocks, root %s\n", file.blocks.size(),
              file.root.to_string().c_str());

  bool fetched = false;
  bob->fetch_dag(file.root, [&](std::size_t blocks, bool complete) {
    fetched = complete;
    std::printf("bob fetched DAG: %zu blocks, complete=%s\n", blocks,
                complete ? "yes" : "no");
  });
  scheduler.run_until(scheduler.now() + 2 * util::kMinute);

  // --- 5. Carol fetches too — served by alice OR bob (bob now caches). ----
  carol->fetch(file.root, [&](dag::BlockPtr block) {
    std::printf("carol got root block: %s (%zu bytes)\n",
                block ? "ok" : "FAILED", block ? block->size() : 0);
  });
  scheduler.run_until(scheduler.now() + 2 * util::kMinute);

  // --- 6. What did the monitor see? ----------------------------------------
  const trace::Trace& recorded = watch.recorded();
  trace::Trace unified = trace::unify({&recorded});
  const trace::TraceStats stats = trace::compute_stats(unified);
  std::printf("\nmonitor observed %zu Bitswap entries "
              "(%zu requests, %zu cancels) from %zu peers, %zu CIDs\n",
              stats.total, stats.requests, stats.cancels, stats.unique_peers,
              stats.unique_cids);
  for (const auto& e : unified.entries()) {
    std::printf("  t=%-12s %s %-10s cid=%s%s\n",
                util::format_sim_time(e.timestamp).c_str(),
                e.peer.short_hex().c_str(),
                std::string(bitswap::want_type_name(e.type)).c_str(),
                e.cid.short_hex().c_str(),
                e.is_rebroadcast() ? " [rebroadcast]" : "");
  }

  // The monitor should have seen root requests only: child-block requests
  // ride inside bob's session with alice.
  std::printf("\nroot CID prefix: %s  (child requests are session-scoped "
              "and invisible to the monitor)\n",
              file.root.short_hex().c_str());
  return fetched ? 0 : 1;
}
