// ipfsmon_ingest — real-capture ingest, export, and deterministic replay.
//
// Ingest a Bitswap wantlist capture (NDJSON or CSV, plain or gzip) into a
// trace store directory, export a store back out as a capture file, or
// replay a store through the event scheduler and report the stream
// checksum the replay produced.
//
// Usage:
//   ipfsmon_ingest --capture <file> --store <dir>
//       [--format ndjson|csv] [--lenient] [--epoch <wall time>]
//       [--monitor <vantage>=<id>]... [--no-flags]
//       [--checkpoint-every N] [--resume]
//   ipfsmon_ingest --replay <dir> [--speedup X] [--start NS] [--stop NS]
//       [--remark-flags] [--expect-checksum HEX]
//   ipfsmon_ingest --export <dir> --out <file> [--format ndjson|csv]
//       [--gzip]
//
// Replay prints the FNV-1a stream checksum; --expect-checksum turns the
// run into an assertion (exit 1 on mismatch), which is how the smoke suite
// pins byte-identical replay of the committed fixtures. --speedup 0 (the
// default) replays as fast as possible; N > 0 paces N sim-seconds per
// wall-second. Exit status: 0 on success, 1 on any failure.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ingest/export.hpp"
#include "ingest/ingest.hpp"
#include "ingest/replay.hpp"
#include "trace/trace.hpp"
#include "util/strings.hpp"

using namespace ipfsmon;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --capture <file> --store <dir> [--format ndjson|csv]\n"
      "       %*s [--lenient] [--epoch T] [--monitor V=ID]... [--no-flags]\n"
      "       %*s [--checkpoint-every N] [--resume] [--max-entries N]\n"
      "       %s --replay <dir> [--speedup X] [--start NS] [--stop NS]\n"
      "       %*s [--remark-flags] [--expect-checksum HEX]\n"
      "       %s --export <dir> --out <file> [--format ndjson|csv] [--gzip]\n",
      argv0, static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "", argv0,
      static_cast<int>(std::strlen(argv0)), "", argv0);
  return 1;
}

std::optional<ingest::CaptureFormat> format_from_name(const std::string& name) {
  if (name == "ndjson") return ingest::CaptureFormat::kNdjson;
  if (name == "csv") return ingest::CaptureFormat::kCsv;
  if (name == "auto") return ingest::CaptureFormat::kAuto;
  return std::nullopt;
}

int run_ingest(const std::string& capture, const std::string& store_dir,
               const ingest::IngestOptions& options) {
  std::string error;
  const auto stats = ingest::ingest_capture(capture, store_dir, options,
                                            &error);
  if (!stats) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("ingested %s (%s%s%s) -> %s\n", capture.c_str(),
              std::string(capture_format_name(stats->format)).c_str(),
              stats->resumed ? ", resumed" : "",
              stats->truncated ? ", stopped at --max-entries (resumable)" : "",
              store_dir.c_str());
  std::printf("  entries   %" PRIu64 "  (lines %" PRIu64 ", rejected %" PRIu64
              ", unordered %" PRIu64 ")\n",
              stats->entries, stats->lines, stats->rejected,
              stats->unordered);
  std::printf("  epoch     %s\n",
              util::format_wall_time(stats->wall_epoch_ns).c_str());
  std::printf("  range     %s .. %s\n",
              util::format_wall_time(stats->wall_epoch_ns + stats->min_time)
                  .c_str(),
              util::format_wall_time(stats->wall_epoch_ns + stats->max_time)
                  .c_str());
  for (const auto& [vantage, id] : stats->monitors) {
    std::printf("  monitor   %u = %s\n", id, vantage.c_str());
  }
  if (stats->rejected > 0) {
    std::printf("  rejects quarantined in %s\n",
                ingest::rejects_path(store_dir).c_str());
  }
  return 0;
}

int run_replay(const std::string& store_dir,
               const ingest::ReplayOptions& options,
               const std::string& expect_checksum) {
  std::string error;
  auto store = tracestore::TraceStore::open(store_dir, {}, &error);
  if (!store) {
    std::fprintf(stderr, "error: cannot open %s: %s\n", store_dir.c_str(),
                 error.c_str());
    return 1;
  }
  if (store->meta()) {
    std::printf("replaying %s (capture %s, epoch %s)\n", store_dir.c_str(),
                store->meta()->source.c_str(),
                util::format_wall_time(store->meta()->wall_epoch_ns).c_str());
  } else {
    std::printf("replaying %s (simulated store, no wall-clock epoch)\n",
                store_dir.c_str());
  }

  trace::StatsAccumulator accumulator;
  const auto replay = ingest::replay_store(
      *store, [&](const trace::TraceEntry& entry) { accumulator.add(entry); },
      options);
  const auto stats = accumulator.stats();
  std::printf("  entries   %" PRIu64 " in %" PRIu64 " batches, sim %s\n",
              replay.entries, replay.batches,
              util::format("%.1fs",
                           static_cast<double>(replay.last - replay.first) /
                               1e9)
                  .c_str());
  std::printf("  requests  %zu  cancels %zu  duplicates %zu  "
              "rebroadcasts %zu\n",
              stats.requests, stats.cancels, stats.inter_monitor_duplicates,
              stats.rebroadcasts);
  std::printf("  peers     %zu  cids %zu\n", stats.unique_peers,
              stats.unique_cids);
  std::printf("  checksum  %016" PRIx64 "\n", replay.checksum);
  if (!expect_checksum.empty()) {
    const std::string got = util::format("%016" PRIx64, replay.checksum);
    if (got != expect_checksum) {
      std::fprintf(stderr, "error: checksum mismatch: got %s, want %s\n",
                   got.c_str(), expect_checksum.c_str());
      return 1;
    }
    std::printf("  checksum matches expectation\n");
  }
  return 0;
}

int run_export(const std::string& store_dir, const std::string& out,
               const ingest::ExportOptions& options) {
  std::string error;
  auto store = tracestore::TraceStore::open(store_dir, {}, &error);
  if (!store) {
    std::fprintf(stderr, "error: cannot open %s: %s\n", store_dir.c_str(),
                 error.c_str());
    return 1;
  }
  const auto stats = ingest::export_capture(*store, out, options, &error);
  if (!stats) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("exported %" PRIu64 " entries from %s to %s\n", stats->entries,
              store_dir.c_str(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string capture, store_dir, replay_dir, export_dir, out_path;
  std::string expect_checksum;
  ingest::IngestOptions ingest_options;
  ingest::ReplayOptions replay_options;
  ingest::ExportOptions export_options;
  ingest::CaptureFormat format = ingest::CaptureFormat::kAuto;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--capture") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      capture = v;
    } else if (arg == "--store") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      store_dir = v;
    } else if (arg == "--replay") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      replay_dir = v;
    } else if (arg == "--export") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      export_dir = v;
    } else if (arg == "--out") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--format") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      const auto parsed = format_from_name(v);
      if (!parsed) return usage(argv[0]);
      format = *parsed;
    } else if (arg == "--lenient") {
      ingest_options.lenient = true;
    } else if (arg == "--epoch") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      const auto epoch = util::parse_wall_time(v);
      if (!epoch) {
        std::fprintf(stderr, "error: cannot parse --epoch '%s'\n", v);
        return 1;
      }
      ingest_options.epoch = *epoch;
    } else if (arg == "--monitor") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      const std::string spec = v;
      const auto eq = spec.find('=');
      if (eq == std::string::npos) return usage(argv[0]);
      ingest_options.monitors.emplace_back(
          spec.substr(0, eq),
          static_cast<trace::MonitorId>(std::atoi(spec.c_str() + eq + 1)));
    } else if (arg == "--no-flags") {
      ingest_options.mark_flags = false;
    } else if (arg == "--checkpoint-every") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      ingest_options.checkpoint_every =
          static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--resume") {
      ingest_options.resume = true;
    } else if (arg == "--max-entries") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      ingest_options.max_entries = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--speedup") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      replay_options.speedup = std::atof(v);
    } else if (arg == "--start") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      replay_options.start = std::atoll(v);
    } else if (arg == "--stop") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      replay_options.stop = std::atoll(v);
    } else if (arg == "--remark-flags") {
      replay_options.remark_flags = true;
    } else if (arg == "--expect-checksum") {
      if ((v = value()) == nullptr) return usage(argv[0]);
      expect_checksum = v;
    } else if (arg == "--gzip") {
      export_options.gzip = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (!capture.empty() && !store_dir.empty()) {
    ingest_options.format = format;
    return run_ingest(capture, store_dir, ingest_options);
  }
  if (!replay_dir.empty()) {
    return run_replay(replay_dir, replay_options, expect_checksum);
  }
  if (!export_dir.empty() && !out_path.empty()) {
    export_options.format = format;
    return run_export(export_dir, out_path, export_options);
  }
  return usage(argv[0]);
}
