// Privacy-attack walkthrough (paper Sec. VI): runs all three attacks
// against a small simulated network —
//   IDW  "who asked for this CID?"          (passive, from traces)
//   TNW  "what has this node asked for?"    (passive, from traces)
//   TPI  "did this node download X before?" (active cache probe)
// plus the gateway-probing pipeline that turns a public HTTP gateway into
// a trackable IPFS node ID.
#include <cstdio>

#include "analysis/aggregate.hpp"
#include "analysis/popularity.hpp"
#include "attacks/content_indexer.hpp"
#include "attacks/gateway_probe.hpp"
#include "attacks/tpi_prober.hpp"
#include "attacks/trace_attacks.hpp"
#include "scenario/study.hpp"
#include "util/strings.hpp"

using namespace ipfsmon;

int main() {
  // A small-but-real monitoring study provides the adversary's vantage.
  scenario::StudyConfig config;
  config.seed = 1337;
  config.population.node_count = 200;
  config.population.stable_server_count = 12;
  config.catalog.item_count = 600;
  config.warmup = 4 * util::kHour;
  config.duration = 8 * util::kHour;

  std::printf("setting up a %zu-node network with 2 passive monitors...\n\n",
              config.population.node_count);
  scenario::MonitoringStudy study(config);
  study.run();

  const trace::Trace unified = study.unified_trace();
  std::printf("monitors collected %zu Bitswap entries from %zu peers\n\n",
              unified.size(), trace::compute_stats(unified).unique_peers);

  // --- IDW: identify the wanters of a popular catalog item. ----------------
  const auto popularity = analysis::compute_popularity(unified);
  const auto top = popularity.top_urp(1);
  if (!top.empty()) {
    const cid::Cid& target = top[0].first;
    const auto wanters = attacks::identify_data_wanters(unified, target);
    std::printf("[IDW] %zu nodes requested CID %s:\n", wanters.size(),
                target.short_hex().c_str());
    for (std::size_t i = 0; i < wanters.size() && i < 5; ++i) {
      std::printf("      %s from %s at %s%s\n",
                  wanters[i].peer.short_hex().c_str(),
                  wanters[i].address.ip_string().c_str(),
                  util::format_sim_time(wanters[i].request_times.front()).c_str(),
                  wanters[i].cancelled ? "  [cancelled -> likely downloaded]"
                                       : "");
    }
    if (wanters.size() > 5) std::printf("      ... and %zu more\n",
                                        wanters.size() - 5);
  }

  // --- TNW: full interest profile of the most active node. ------------------
  const auto per_peer = analysis::requests_per_peer(unified);
  if (!per_peer.empty()) {
    const crypto::PeerId victim = per_peer.front().first;
    const auto wants = attacks::track_node_wants(unified, victim);
    std::printf("\n[TNW] node %s was observed wanting %zu distinct CIDs:\n",
                victim.short_hex().c_str(), wants.size());
    for (std::size_t i = 0; i < wants.size() && i < 5; ++i) {
      std::printf("      %s first seen %s (%zu observations)%s\n",
                  wants[i].cid.short_hex().c_str(),
                  util::format_sim_time(wants[i].first_seen).c_str(),
                  wants[i].observations,
                  wants[i].cancelled ? "  [completed]" : "");
    }
    if (wants.size() > 5) std::printf("      ... and %zu more\n",
                                      wants.size() - 5);
  }

  // --- TPI: confirm a past download with one active probe. ------------------
  util::RngStream rng(config.seed, "example-attacks");
  attacks::TpiProber prober(study.network(),
                            crypto::KeyPair::generate(rng).peer_id(),
                            study.network().geo().allocate_address("US"), "US");
  // The victim: an online node, made to download a "sensitive" document.
  node::IpfsNode* victim_ptr = nullptr;
  for (std::size_t i = config.population.stable_server_count;
       i < study.population().size(); ++i) {
    node::IpfsNode& candidate = study.population().node_at(i);
    if (candidate.online() && !candidate.config().nat) {
      victim_ptr = &candidate;
      break;
    }
  }
  node::IpfsNode& victim = *victim_ptr;
  node::IpfsNode& publisher = study.population().node_at(0);  // stable
  const cid::Cid secret =
      publisher.add_bytes(util::bytes_of("the sensitive document"));
  study.scheduler().run_until(study.scheduler().now() + 30 * util::kSecond);
  bool downloaded = false;
  victim.fetch(secret, [&](dag::BlockPtr b) { downloaded = b != nullptr; });
  study.scheduler().run_until(study.scheduler().now() + 5 * util::kMinute);

  std::printf("\n[TPI] node %s %s the document; probing it for CID %s\n",
              victim.id().short_hex().c_str(),
              downloaded ? "downloaded" : "failed to download",
              secret.short_hex().c_str());
  prober.probe(victim.id(), secret, [&](attacks::TpiOutcome outcome) {
    std::printf("      outcome: %s\n",
                std::string(attacks::tpi_outcome_name(outcome)).c_str());
    std::printf("      (HAVE would prove the node held the content)\n");
  });
  study.scheduler().run_until(study.scheduler().now() + 30 * util::kSecond);

  // --- Gateway probing: de-anonymize a public gateway. ----------------------
  std::printf("\n[gateway probing] linking 'ipfs.io' to its node IDs...\n");
  attacks::GatewayProber gw_prober(study.network(), study.monitors(),
                                   attacks::GatewayProbeConfig{},
                                   rng.fork("gw"));
  for (auto* gw : study.gateways()->nodes_of("ipfs.io")) {
    gw_prober.probe("ipfs.io", *gw, [&](attacks::GatewayProbeResult result) {
      for (const auto& id : result.discovered_nodes) {
        std::printf("      discovered node %s (probe CID %s, http_ok=%d)\n",
                    id.short_hex().c_str(), result.probe_cid.short_hex().c_str(),
                    result.http_ok);
      }
    });
  }
  study.scheduler().run_until(study.scheduler().now() + 2 * util::kMinute);

  // --- Content indexing: what do the harvested CIDs reference? -------------
  std::printf("\n[content indexing] classifying the first harvested CIDs...\n");
  attacks::ContentIndexer indexer(victim);  // any controlled node will do
  std::optional<attacks::IndexReport> report;
  indexer.index_trace(unified, 25, [&](attacks::IndexReport r) {
    report = std::move(r);
  });
  study.scheduler().run_until(study.scheduler().now() + 10 * util::kMinute);
  if (report) {
    std::printf("      indexed %zu CIDs: %zu raw, %zu files, %zu dirs, "
                "%zu other, %zu unresolvable (%.0f%% resolvable)\n",
                report->items.size(),
                report->count_of(attacks::ContentKind::RawData),
                report->count_of(attacks::ContentKind::File),
                report->count_of(attacks::ContentKind::Directory),
                report->count_of(attacks::ContentKind::OtherIpld),
                report->count_of(attacks::ContentKind::Unresolvable),
                100.0 * report->resolvable_share());
  }

  std::printf("\nall three attacks ran with nothing but an ordinary node "
              "identity and the monitors' vantage.\n");
  return 0;
}
