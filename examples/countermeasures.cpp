// Countermeasure study (paper Sec. VI-C): measures how each proposed
// privacy hardening changes what a passive monitor can observe — and what
// it costs. Each scenario runs the same workload with one knob flipped:
//
//   baseline         stock IPFS behaviour
//   no-rebroadcast   disable the 30 s re-broadcast loop
//   dht-only         never broadcast wants; DHT provider lookup only
//   no-reprovide     don't announce downloaded content (vs TPI)
//   no-serve         don't serve cached blocks at all (vs TPI)
#include <cstdio>

#include "attacks/tpi_prober.hpp"
#include "node/ipfs_node.hpp"
#include "monitor/passive_monitor.hpp"
#include "util/strings.hpp"

using namespace ipfsmon;

namespace {

struct Result {
  std::string name;
  std::size_t monitor_entries = 0;    // what the adversary sees
  std::size_t fetches_ok = 0;         // utility: successful retrievals
  std::size_t fetches_failed = 0;
  std::string tpi;                    // TPI probe outcome
};

Result run_scenario(const std::string& name, node::NodeConfig victim_config) {
  sim::Scheduler scheduler;
  net::Network network(scheduler, net::GeoDatabase::standard(), 99);
  util::RngStream rng(99, "cm-" + name);

  auto make = [&](node::NodeConfig cfg, const char* cc) {
    crypto::KeyPair keys = crypto::KeyPair::generate(rng);
    return std::make_unique<node::IpfsNode>(
        network, std::move(keys), network.geo().allocate_address(cc), cc, cfg,
        rng.fork(name));
  };

  auto provider = make({}, "US");
  auto victim = make(victim_config, "DE");
  monitor::MonitorConfig mon_config;
  crypto::KeyPair mon_keys = crypto::KeyPair::generate(rng);
  monitor::PassiveMonitor watch(network, std::move(mon_keys),
                                network.geo().allocate_address("US"), "US",
                                mon_config, rng.fork("mon"));

  provider->go_online({});
  victim->go_online({provider->id()});
  watch.go_online({provider->id()});
  scheduler.run_until(scheduler.now() + 30 * util::kSecond);
  network.dial(victim->id(), watch.id(), nullptr);  // monitor is connected
  scheduler.run_until(scheduler.now() + 10 * util::kSecond);

  // Workload: fetch 10 existing items and 2 dead references.
  Result result;
  result.name = name;
  std::vector<cid::Cid> published;
  for (int i = 0; i < 10; ++i) {
    published.push_back(provider->add_bytes(
        util::bytes_of("cm item " + std::to_string(i))));
  }
  scheduler.run_until(scheduler.now() + 30 * util::kSecond);
  for (const auto& c : published) {
    victim->fetch(c, [&](dag::BlockPtr b) {
      if (b != nullptr) {
        ++result.fetches_ok;
      } else {
        ++result.fetches_failed;
      }
    });
  }
  for (int i = 0; i < 2; ++i) {
    victim->fetch(cid::Cid::of_data(cid::Multicodec::Raw,
                                    util::bytes_of("dead " + std::to_string(i))),
                  [&](dag::BlockPtr b) {
                    if (b == nullptr) ++result.fetches_failed;
                  });
  }
  scheduler.run_until(scheduler.now() + 12 * util::kMinute);

  result.monitor_entries = watch.recorded().size();

  // TPI probe on one fetched item.
  attacks::TpiProber prober(network, crypto::KeyPair::generate(rng).peer_id(),
                            network.geo().allocate_address("FR"), "FR");
  prober.probe(victim->id(), published[0], [&](attacks::TpiOutcome outcome) {
    result.tpi = std::string(attacks::tpi_outcome_name(outcome));
  });
  scheduler.run_until(scheduler.now() + 30 * util::kSecond);
  return result;
}

}  // namespace

int main() {
  std::vector<Result> results;

  results.push_back(run_scenario("baseline", {}));

  node::NodeConfig no_rebroadcast;
  no_rebroadcast.bitswap.rebroadcast = false;
  results.push_back(run_scenario("no-rebroadcast", no_rebroadcast));

  node::NodeConfig dht_only;
  dht_only.bitswap.broadcast_wants = false;
  results.push_back(run_scenario("dht-only", dht_only));

  node::NodeConfig no_reprovide;
  no_reprovide.provide_downloaded = false;
  results.push_back(run_scenario("no-reprovide", no_reprovide));

  node::NodeConfig no_serve;
  no_serve.serve_blocks = false;
  results.push_back(run_scenario("no-serve", no_serve));

  std::printf("countermeasure study (paper Sec. VI-C): one victim, one\n"
              "monitor, 10 real fetches + 2 dead references per scenario\n\n");
  std::printf("%-16s %18s %10s %10s %14s\n", "scenario", "monitor entries",
              "fetched", "failed", "TPI probe");
  for (const auto& r : results) {
    std::printf("%-16s %18zu %10zu %10zu %14s\n", r.name.c_str(),
                r.monitor_entries, r.fetches_ok, r.fetches_failed,
                r.tpi.c_str());
  }
  std::printf(
      "\nreadings:\n"
      "  no-rebroadcast: fewer monitor entries (dead references stop\n"
      "                  spamming), everything else unchanged.\n"
      "  dht-only:       the monitor sees ~nothing — but robustness is\n"
      "                  gone (the paper: hurts censorship resistance).\n"
      "  no-reprovide:   monitor view unchanged; TPI still positive —\n"
      "                  provider records were never the leak.\n"
      "  no-serve:       TPI defeated (DONT_HAVE), at the cost of\n"
      "                  contributing nothing to content availability.\n");
  return 0;
}
