// ipfsmon-queryd — the trace query daemon.
//
// Serves a trace-store directory (as written by spilling monitors or the
// preprocessing pipeline) over HTTP: health, Prometheus metrics, range
// statistics, content popularity, and per-peer want histories. Statistics
// are answered rollup-first from the per-segment sidecars; rendered
// results are LRU-cached keyed by the store's manifest fingerprint.
//
// Usage: ipfsmon_queryd --store <dir> [--port N] [--bind ADDR]
//                       [--workers N] [--cache N] [--no-rollups]
//                       [--reload-interval SEC]
//                       [--trace] [--trace-sample N] [--trace-export BASE]
//        ipfsmon_queryd --coordinator <root> [--fed-port N] [...]
//        ipfsmon_queryd --demo-store   (simulate, spill, unify, serve)
//
// --coordinator serves in federation-coordinator mode: an FMON listener
// (--fed-port, default 7979; 0 = ephemeral) lands segments shipped by
// ipfsmon_shipd into <root>/m-<id>/, and the HTTP side serves the unified
// store (<root>/unified) with /v1/monitors and provenance on /v1/segments.
//
// SIGHUP re-opens the store (coordinator mode: re-unifies newly landed
// segments first), so a daemon over a live store serves new segments
// without restart; --reload-interval does the same on a timer. The cache
// is keyed by the manifest fingerprint, so a reload invalidates every
// cached answer implicitly.
//
// --trace enables request span tracing (served live on /debug/spans);
// --trace-sample N records every Nth request (default 64; implies --trace);
// --trace-export BASE writes BASE.spans.json (Perfetto/Chrome trace-event
// JSON) and BASE.spans.jsonl on shutdown.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, then the
// listener and workers shut down.
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "federation/federated.hpp"
#include "obs/span_export.hpp"
#include "query/engine.hpp"
#include "query/server.hpp"
#include "scenario/study.hpp"
#include "tracestore/merge.hpp"

using namespace ipfsmon;

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void on_sighup(int) {
  const char byte = 'h';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Runs a small monitoring study with spilling monitors and unifies the
/// per-monitor stores into one servable directory.
std::string make_demo_store() {
  std::printf("generating a demo trace store (small monitoring study)...\n");
  scenario::StudyConfig config;
  config.population.node_count = 150;
  config.catalog.item_count = 400;
  config.warmup = 2 * util::kHour;
  config.duration = 6 * util::kHour;
  config.monitor_spill_dir = "/tmp/ipfsmon_queryd_demo_monitors";
  scenario::MonitoringStudy study(config);
  study.run();
  if (!study.finalize_monitor_spill()) {
    std::fprintf(stderr, "error: finalizing monitor spill stores failed\n");
    return {};
  }

  std::vector<tracestore::TraceStore> stores;
  std::vector<const tracestore::TraceStore*> inputs;
  for (const auto& dir : study.monitor_store_dirs()) {
    std::string error;
    auto store = tracestore::TraceStore::open(dir, {}, &error);
    if (!store) {
      std::fprintf(stderr, "error: cannot open %s: %s\n", dir.c_str(),
                   error.c_str());
      return {};
    }
    stores.push_back(std::move(*store));
  }
  for (const auto& store : stores) inputs.push_back(&store);

  const std::string unified_dir = "/tmp/ipfsmon_queryd_demo_store";
  std::string error;
  auto writer = tracestore::SegmentWriter::create(unified_dir, {}, &error);
  if (writer == nullptr) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", unified_dir.c_str(),
                 error.c_str());
    return {};
  }
  tracestore::unify_to_store(inputs, *writer);
  if (!writer->finalize()) {
    std::fprintf(stderr, "error: failed to finalize %s\n",
                 unified_dir.c_str());
    return {};
  }
  std::printf("unified %zu monitor stores into %s\n\n", stores.size(),
              unified_dir.c_str());
  return unified_dir;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --store <dir> [--port N] [--bind ADDR] "
               "[--workers N] [--cache N] [--no-rollups]\n"
               "       %*s [--reload-interval SEC] [--trace] "
               "[--trace-sample N] [--trace-export BASE]\n"
               "       %s --coordinator <root> [--fed-port N] [...]\n"
               "       %s --demo-store\n",
               argv0, static_cast<int>(std::strlen(argv0)), "", argv0, argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  std::string coordinator_root;
  std::string trace_export_base;
  bool demo = false;
  int reload_interval_s = 0;
  std::uint16_t fed_port = 7979;
  query::QueryOptions query_options;
  query::ServerOptions server_options;
  server_options.port = 7878;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--store") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      store_dir = v;
    } else if (arg == "--demo-store") {
      demo = true;
    } else if (arg == "--coordinator") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      coordinator_root = v;
    } else if (arg == "--fed-port") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      fed_port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--reload-interval") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      reload_interval_s = std::max(0, std::atoi(v));
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      server_options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--bind") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      server_options.bind_address = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      server_options.worker_threads =
          static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--cache") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      query_options.cache_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--no-rollups") {
      query_options.use_rollups = false;
    } else if (arg == "--trace") {
      query_options.tracing.enabled = true;
    } else if (arg == "--trace-sample") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      query_options.tracing.enabled = true;
      query_options.tracing.sample_every =
          std::max(1, std::atoi(v));
    } else if (arg == "--trace-export") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      trace_export_base = v;
      query_options.tracing.enabled = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (demo) {
    store_dir = make_demo_store();
    if (store_dir.empty()) return 1;
  }
  if (store_dir.empty() && coordinator_root.empty()) return usage(argv[0]);

  std::string error;
  std::unique_ptr<federation::FederatedService> federated;
  std::unique_ptr<query::QueryService> owned_service;
  query::QueryService* service = nullptr;
  if (!coordinator_root.empty()) {
    federation::FederatedOptions federated_options;
    federated_options.coordinator.port = fed_port;
    federated_options.query = query_options;
    federated = federation::FederatedService::start(coordinator_root,
                                                    federated_options, &error);
    if (federated == nullptr) {
      std::fprintf(stderr, "error: cannot start coordinator on %s: %s\n",
                   coordinator_root.c_str(), error.c_str());
      return 1;
    }
    service = &federated->query();
    store_dir = federated->unified_dir();
    for (const auto& note : federated->coordinator().recovery_notes()) {
      std::printf("recovery: %s\n", note.c_str());
    }
    std::printf("coordinator on 127.0.0.1:%u, %zu monitors, root %s\n",
                federated->coordinator().port(),
                federated->monitors().size(), coordinator_root.c_str());
  } else {
    owned_service = query::QueryService::open(store_dir, query_options,
                                              &error);
    if (owned_service == nullptr) {
      std::fprintf(stderr, "error: cannot open store %s: %s\n",
                   store_dir.c_str(), error.c_str());
      return 1;
    }
    service = owned_service.get();
  }
  std::printf("store %s: %zu segments, %llu entries, %zu/%zu rollups\n",
              store_dir.c_str(), service->store().segments().size(),
              static_cast<unsigned long long>(service->store().total_entries()),
              service->rollups_loaded(), service->store().segments().size());
  if (const auto& meta = service->store().meta()) {
    // Ingested from a real capture: anchor the SimTime axis for operators.
    std::printf("ingested from %s (%s), wall epoch %s, range %s .. %s\n",
                meta->source.c_str(), meta->format.c_str(),
                util::format_wall_time(meta->wall_epoch_ns).c_str(),
                util::format_wall_time(meta->wall_epoch_ns +
                                       service->store().min_time())
                    .c_str(),
                util::format_wall_time(meta->wall_epoch_ns +
                                       service->store().max_time())
                    .c_str());
  }

  query::HttpServer server(server_options,
                           [&service](const query::HttpRequest& request) {
                             return service->handle(request);
                           });
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: cannot start server: %s\n", error.c_str());
    return 1;
  }
  service->attach_server(&server);

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  struct sigaction hup_action {};
  hup_action.sa_handler = on_sighup;
  ::sigaction(SIGHUP, &hup_action, nullptr);

  const std::string base = "http://" + server_options.bind_address + ":" +
                           std::to_string(server.port());
  std::printf("listening on %s (%zu workers)\n", base.c_str(),
              server_options.worker_threads);
  std::printf("  curl %s/healthz\n", base.c_str());
  std::printf("  curl %s/metrics\n", base.c_str());
  std::printf("  curl '%s/v1/stats?min_t=0'\n", base.c_str());
  std::printf("  curl '%s/v1/popularity?k=5'\n", base.c_str());
  std::printf("  curl %s/v1/segments\n", base.c_str());
  if (federated != nullptr) {
    std::printf("  curl %s/v1/monitors\n", base.c_str());
  }
  if (query_options.tracing.enabled) {
    std::printf("  curl %s/debug/spans   (tracing 1/%llu requests)\n",
                base.c_str(),
                static_cast<unsigned long long>(
                    query_options.tracing.sample_every));
  }
  std::fflush(stdout);

  // Re-open the store on SIGHUP or every --reload-interval seconds
  // (coordinator mode re-unifies newly landed segments first); the store
  // fingerprint rolls over, so cached answers invalidate implicitly.
  auto reload = [&]() {
    const std::uint64_t before = service->fingerprint();
    std::string reload_error;
    const bool ok = federated != nullptr ? federated->refresh(&reload_error)
                                         : service->reload(&reload_error);
    if (!ok) {
      std::fprintf(stderr, "error: reload failed: %s\n", reload_error.c_str());
      return;
    }
    // Periodic ticks mostly find nothing new; only log actual rollovers.
    if (service->fingerprint() == before) return;
    std::printf("reloaded: %zu segments, %llu entries\n",
                service->store().segments().size(),
                static_cast<unsigned long long>(
                    service->store().total_entries()));
    std::fflush(stdout);
  };
  for (;;) {
    pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    const int timeout_ms =
        reload_interval_s > 0 ? reload_interval_s * 1000 : -1;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      reload();  // --reload-interval tick
      continue;
    }
    char byte = 0;
    if (::read(g_signal_pipe[0], &byte, 1) <= 0) break;
    if (byte == 'h') {
      reload();
      continue;
    }
    break;  // SIGINT/SIGTERM
  }
  std::printf("\nshutting down (draining %zu in-flight connections)...\n",
              server.in_flight());
  server.stop();
  if (!trace_export_base.empty()) {
    const auto spans = service->obs().tracer.snapshot();
    std::string export_error;
    const std::string json_path = trace_export_base + ".spans.json";
    const std::string jsonl_path = trace_export_base + ".spans.jsonl";
    const bool use_sim = obs::has_sim_times(spans);
    if (obs::write_perfetto_json(json_path, spans, use_sim, &export_error) &&
        obs::write_spans_jsonl(jsonl_path, spans, &export_error)) {
      std::printf("exported %zu spans to %s + %s\n", spans.size(),
                  json_path.c_str(), jsonl_path.c_str());
    } else {
      std::fprintf(stderr, "error: span export failed: %s\n",
                   export_error.c_str());
    }
  }
  const query::ServerCounters counters = server.counters();
  std::printf("served %llu requests on %llu connections\n",
              static_cast<unsigned long long>(counters.requests),
              static_cast<unsigned long long>(counters.connections_accepted));
  return 0;
}
