// ipfsmon-shipd — the monitor-side federation shipper.
//
// Watches a spill trace-store directory (as written by a PassiveMonitor
// with a spill dir, or any SegmentWriter) and streams every sealed segment
// plus its rollup sidecar to a federation coordinator (ipfsmon_queryd
// --coordinator) over the FMON protocol. Delivery is at-least-once and
// resumable: on every (re)connect the coordinator reports what already
// landed, so a restarted shipper only ships the gap. Reconnects back off
// exponentially.
//
// Usage: ipfsmon_shipd --store <dir> --monitor-id N [--vantage LABEL]
//                      [--host ADDR] [--port N] [--poll-ms N] [--once]
//
// --once ships everything currently sealed and exits (for scripts and
// smoke tests); the default keeps watching until SIGINT/SIGTERM.
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "federation/shipper.hpp"

using namespace ipfsmon;

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --store <dir> --monitor-id N [--vantage LABEL]\n"
               "       %*s [--host ADDR] [--port N] [--poll-ms N] [--once]\n",
               argv0, static_cast<int>(std::strlen(argv0)), "");
  return 1;
}

void print_stats(const federation::ShipperStats& stats) {
  std::printf(
      "shipped %llu segments (%llu landed, %llu duplicate, %llu rejected), "
      "%llu bytes, %llu connects (%llu failed)\n",
      static_cast<unsigned long long>(stats.segments_shipped),
      static_cast<unsigned long long>(stats.segments_landed),
      static_cast<unsigned long long>(stats.duplicates),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.bytes_shipped),
      static_cast<unsigned long long>(stats.connects),
      static_cast<unsigned long long>(stats.connect_failures));
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  bool once = false;
  federation::ShipperOptions options;
  options.port = 7979;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--store") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      store_dir = v;
    } else if (arg == "--monitor-id") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      options.monitor_id = static_cast<std::uint32_t>(std::atoll(v));
    } else if (arg == "--vantage") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      options.vantage = v;
    } else if (arg == "--host") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      options.host = v;
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--poll-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      options.poll_interval_ms = std::max(1, std::atoi(v));
    } else if (arg == "--once") {
      once = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (store_dir.empty() || options.monitor_id == 0) return usage(argv[0]);
  if (!federation::valid_vantage(options.vantage)) {
    std::fprintf(stderr, "error: vantage must match [A-Za-z0-9_-]{1,64}\n");
    return 1;
  }

  federation::Shipper shipper(store_dir, options);
  std::printf("shipping %s as monitor %u (%s) to %s:%u\n", store_dir.c_str(),
              options.monitor_id, options.vantage.c_str(),
              options.host.c_str(), options.port);
  std::fflush(stdout);

  if (once) {
    std::string error;
    if (!shipper.ship_pending(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      print_stats(shipper.stats());
      return 1;
    }
    print_stats(shipper.stats());
    return 0;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  shipper.start();
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("\nstopping...\n");
  shipper.stop();
  print_stats(shipper.stats());
  return 0;
}
