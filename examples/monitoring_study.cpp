// A miniature end-to-end monitoring study (paper Sec. V): churned
// population + gateways + two passive monitors, one simulated day, followed
// by the full analysis pipeline — coverage, size estimates, dedup stats,
// popularity, and per-country activity. At exit the obs registry is dumped
// in Prometheus text format and the collector ring as a JSONL sidecar.
//
// With a spill directory, monitors record through the out-of-core trace
// store instead of RAM; the example prints where the stores land and fails
// (exit 1) when the directory cannot be written, rather than silently
// analyzing an empty trace.
//
// With --shards=N the population is partitioned across N parallel
// scheduler shards (scenario::ShardedStudy; DESIGN.md Sec. 12). The
// default N=1 runs the classic single-threaded path byte-identically.
//
// Usage: monitoring_study [nodes] [hours] [seed] [spill_dir] [--shards=N]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/aggregate.hpp"
#include "analysis/estimators.hpp"
#include "analysis/popularity.hpp"
#include "obs/exporters.hpp"
#include "scenario/sharded_study.hpp"
#include "trace/preprocess.hpp"
#include "tracestore/merge.hpp"

using namespace ipfsmon;

int main(int argc, char** argv) {
  scenario::StudyConfig config;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      config.shards = std::strtoul(argv[i] + 9, nullptr, 10);
      if (config.shards == 0) config.shards = 1;
    } else {
      positional.push_back(argv[i]);
    }
  }
  config.population.node_count =
      positional.size() > 0 ? std::strtoul(positional[0], nullptr, 10) : 400;
  const double hours =
      positional.size() > 1 ? std::strtod(positional[1], nullptr) : 24.0;
  config.seed =
      positional.size() > 2 ? std::strtoull(positional[2], nullptr, 10) : 42;
  const std::string spill_dir = positional.size() > 3 ? positional[3] : "";
  config.monitor_spill_dir = spill_dir;
  config.duration = static_cast<util::SimDuration>(
      hours * static_cast<double>(util::kHour));
  config.warmup = 6 * util::kHour;
  config.catalog.item_count = 6000;
  config.progress_heartbeat = true;

  std::printf("running study: %zu nodes, %.0f h measurement, seed %llu, "
              "%zu shard(s)\n",
              config.population.node_count, hours,
              static_cast<unsigned long long>(config.seed), config.shards);

  scenario::ShardedStudy study(config);
  study.run();
  const std::size_t shard_count = study.shard_count();

  // --- Spill stores ---------------------------------------------------------
  std::vector<tracestore::TraceStore> stores;
  if (!spill_dir.empty()) {
    // A monitor that could not write its directory fell back to recording
    // in RAM (with an error event) — that is a broken spill run, not a
    // quietly-degraded one. Fail loudly.
    bool spill_ok = true;
    for (const auto* m : study.monitors()) {
      if (!m->spilling()) {
        std::fprintf(stderr,
                     "error: monitor %u could not open its spill store under "
                     "%s (unwritable directory?)\n",
                     static_cast<unsigned>(m->monitor_id()), spill_dir.c_str());
        spill_ok = false;
      }
    }
    if (spill_ok && !study.finalize_monitor_spill()) {
      std::fprintf(stderr, "error: finalizing spill stores under %s failed\n",
                   spill_dir.c_str());
      spill_ok = false;
    }
    if (!spill_ok) return 1;
    for (const auto& dir : study.monitor_store_dirs()) {
      auto store = tracestore::TraceStore::open(dir);
      if (!store.has_value()) {
        std::fprintf(stderr, "error: cannot reopen spill store %s\n",
                     dir.c_str());
        return 1;
      }
      std::printf("spill store: %s (%llu entries, %zu segments)\n",
                  dir.c_str(),
                  static_cast<unsigned long long>(store->total_entries()),
                  store->segments().size());
      stores.push_back(std::move(*store));
    }
  }

  // --- Monitor view ---------------------------------------------------------
  const auto monitors = study.monitors();
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    const auto* m = monitors[i];
    // A monitor's connections live on its home shard's network view.
    auto& home = study.shard(m->monitor_id() % shard_count).network();
    std::printf("monitor %zu: %zu connected now, %zu unique peers seen, "
                "%zu bitswap-active, %zu trace entries\n",
                i, home.connection_count(m->id()), m->peers_seen().size(),
                m->bitswap_active_peers().size(), m->recorded().size());
  }

  // --- Coverage & size estimates --------------------------------------------
  const auto snapshots = study.matched_snapshots();
  const auto estimates = analysis::estimate_over_snapshots(snapshots);
  const std::size_t truly_online = study.online_count();
  std::printf("\ntrue online now: %zu (of %zu ever online)\n", truly_online,
              study.ever_online_count());
  if (!estimates.pairwise.empty()) {
    std::printf("eq.(1) pairwise estimate:  %.0f (std %.0f)\n",
                estimates.pairwise.mean(), estimates.pairwise.stddev());
  }
  if (!estimates.committee.empty()) {
    std::printf("eq.(3) committee estimate: %.0f (std %.0f)\n",
                estimates.committee.mean(), estimates.committee.stddev());
  }
  std::printf("mean union of monitor peer sets: %.0f\n",
              estimates.mean_union_size);
  for (std::size_t i = 0; i < estimates.mean_set_sizes.size(); ++i) {
    std::printf("monitor %zu mean peers: %.0f  (coverage of online: %.0f%%)\n",
                i, estimates.mean_set_sizes[i],
                100.0 * estimates.mean_set_sizes[i] /
                    static_cast<double>(truly_online));
    // The monitor's live coverage gauge is computed over the same
    // snapshots the analysis pipeline consumes — cross-check they agree.
    // The gauge lives in the monitor's home-shard registry.
    auto& registry = study.shard(i % shard_count).obs().metrics;
    const auto* info = registry.find(
        "ipfsmon_monitor_coverage_mean_peers",
        "monitor=\"" + std::to_string(i) + "\"");
    if (info != nullptr) {
      const double gauge = registry.gauge_at(info->slot).value();
      std::printf("  coverage gauge agrees with analysis: %s "
                  "(gauge %.2f vs pipeline %.2f)\n",
                  std::fabs(gauge - estimates.mean_set_sizes[i]) <= 1.0
                      ? "YES"
                      : "NO (mismatch!)",
                  gauge, estimates.mean_set_sizes[i]);
    }
  }

  // --- Trace preprocessing --------------------------------------------------
  trace::Trace unified;
  if (spill_dir.empty()) {
    unified = study.unified_trace();
  } else {
    // Out-of-core path: k-way merge + flagging straight off the stores,
    // identical to trace::unify (see DESIGN.md Sec. 7).
    std::vector<const tracestore::TraceStore*> inputs;
    for (const auto& s : stores) inputs.push_back(&s);
    tracestore::unify_stores(
        inputs, [&](const trace::TraceEntry& e) { unified.append(e); });
  }
  const trace::TraceStats stats = trace::compute_stats(unified);
  std::printf("\nunified trace: %zu entries (%zu requests), "
              "%zu re-broadcasts (%.1f%% of requests), %zu inter-monitor dups\n",
              stats.total, stats.requests, stats.rebroadcasts,
              100.0 * trace::rebroadcast_share(unified),
              stats.inter_monitor_duplicates);

  // --- Popularity -------------------------------------------------------------
  const auto popularity = analysis::compute_popularity(unified);
  std::printf("\npopularity: %zu distinct CIDs, %.1f%% requested by exactly "
              "one peer\n",
              popularity.urp.size(),
              100.0 * popularity.single_requester_share());

  // --- Geography ---------------------------------------------------------------
  const auto by_country = analysis::share_by_country(
      unified.deduplicated(), study.shard(0).network().geo());
  std::printf("\nrequests by country:\n");
  for (std::size_t i = 0; i < by_country.size() && i < 6; ++i) {
    std::printf("  %-4s %8llu  %5.2f%%\n", by_country[i].label.c_str(),
                static_cast<unsigned long long>(by_country[i].count),
                by_country[i].share_percent);
  }

  std::uint64_t gateway_requests = 0;
  double hit_ratio_sum = 0.0;
  std::size_t fleets = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (auto* fleet = study.shard(s).gateways()) {
      gateway_requests += fleet->http_requests_issued();
      hit_ratio_sum += fleet->cache_hit_ratio();
      ++fleets;
    }
  }
  if (fleets > 0) {
    std::printf("\ngateway fleet: %llu HTTP requests, cache hit ratio %.1f%%\n",
                static_cast<unsigned long long>(gateway_requests),
                100.0 * hit_ratio_sum / static_cast<double>(fleets));
  }

  if (shard_count > 1) {
    const auto& coord = study.coordinator();
    std::printf("\nsharded run: %zu shards, %llu epochs, %llu cross-shard "
                "posts, %llu horizon stalls, %llu lookahead clamps\n",
                shard_count,
                static_cast<unsigned long long>(coord.epochs()),
                static_cast<unsigned long long>(coord.cross_posts()),
                static_cast<unsigned long long>(coord.horizon_stalls()),
                static_cast<unsigned long long>(coord.lookahead_clamped()));
  }

  // --- Observability dump -----------------------------------------------------
  // Shard 0's registry (the only one in a classic single-shard run; in a
  // sharded run it also carries the coordinator gauges).
  std::printf("\nmetrics (prometheus text exposition):\n%s",
              obs::to_prometheus(study.shard(0).obs().metrics).c_str());
  if (const auto* collector = study.shard(0).collector()) {
    const std::string sidecar = std::string(argv[0]) + ".metrics.jsonl";
    if (obs::write_jsonl(*collector, sidecar)) {
      std::printf("metrics sidecar: %s (%zu samples, %zu dropped)\n",
                  sidecar.c_str(), collector->samples().size(),
                  static_cast<std::size_t>(collector->samples_dropped()));
    }
  }
  return 0;
}
