// trace_report — a standalone analysis CLI over saved traces.
//
// Load one or more monitor traces (CSV or binary, as written by
// trace::save_csv / save_binary), unify them with the paper's 5 s / 31 s
// windows, and print the full analysis report: preprocessing stats,
// activity by type/codec/country, popularity (RRP/URP + power-law test),
// and the most active peers.
//
// Arguments may also be trace-store *directories* (as written by a
// spilling monitor, see src/tracestore). Those are unified out-of-core —
// k-way merged into a flagged on-disk store and analyzed by streaming, so
// the unified trace is never resident in memory.
//
// Usage: trace_report <trace-file-or-store-dir> [...]
//        trace_report --demo         (generate demo trace files first)
//        trace_report --demo-store   (demo with monitors spilling to disk)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <unordered_map>

#include "analysis/aggregate.hpp"
#include "cid/multicodec.hpp"
#include "analysis/popularity.hpp"
#include "analysis/powerlaw.hpp"
#include "scenario/study.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "tracestore/merge.hpp"
#include "tracestore/scan.hpp"
#include "util/strings.hpp"

using namespace ipfsmon;

namespace {

/// Everything the report prints, fed one entry at a time — shared between
/// the in-memory path and the streaming out-of-core path.
struct ReportAccumulators {
  explicit ReportAccumulators(const net::GeoDatabase& geo)
      : by_type([](const trace::TraceEntry& e) {
          return std::string(bitswap::want_type_name(e.type));
        }),
        by_codec([](const trace::TraceEntry& e) {
          return std::string(cid::multicodec_name(e.cid.codec()));
        }),
        by_country([&geo](const trace::TraceEntry& e) {
          return geo.lookup(e.address);
        }) {}

  void add(const trace::TraceEntry& e) {
    stats.add(e);
    by_type.add(e);
    by_codec.add(e);
    if (e.is_clean()) by_country.add(e);
    popularity.add(e);
    if (e.is_request()) {
      ++requests;
      if (e.is_rebroadcast()) ++request_rebroadcasts;
      ++per_peer[e.peer];
    }
  }

  trace::StatsAccumulator stats;
  analysis::ShareAccumulator by_type;
  analysis::ShareAccumulator by_codec;
  analysis::ShareAccumulator by_country;  // fed clean entries only
  analysis::PopularityAccumulator popularity;
  std::uint64_t requests = 0;
  std::uint64_t request_rebroadcasts = 0;
  std::unordered_map<crypto::PeerId, std::uint64_t> per_peer;
};

void print_report(const ReportAccumulators& acc) {
  const trace::TraceStats stats = acc.stats.stats();
  const double rebroadcast_share =
      acc.requests == 0 ? 0.0
                        : static_cast<double>(acc.request_rebroadcasts) /
                              static_cast<double>(acc.requests);
  std::printf("entries: %zu (%zu requests, %zu cancels)\n", stats.total,
              stats.requests, stats.cancels);
  std::printf("peers:   %zu unique   cids: %zu unique\n", stats.unique_peers,
              stats.unique_cids);
  std::printf("flags:   %zu re-broadcasts (%.1f%% of requests), "
              "%zu inter-monitor duplicates\n",
              stats.rebroadcasts, 100.0 * rebroadcast_share,
              stats.inter_monitor_duplicates);

  std::printf("\nrequests by type:\n");
  for (const auto& row : acc.by_type.rows()) {
    std::printf("  %-12s %10llu  %6.2f%%\n", row.label.c_str(),
                static_cast<unsigned long long>(row.count), row.share_percent);
  }

  std::printf("\nrequests by codec:\n");
  for (const auto& row : acc.by_codec.rows()) {
    std::printf("  %-14s %10llu  %6.2f%%\n", row.label.c_str(),
                static_cast<unsigned long long>(row.count), row.share_percent);
  }

  std::printf("\nrequests by country (deduplicated):\n");
  const auto by_country = acc.by_country.rows();
  for (std::size_t i = 0; i < by_country.size() && i < 8; ++i) {
    std::printf("  %-6s %10llu  %6.2f%%\n", by_country[i].label.c_str(),
                static_cast<unsigned long long>(by_country[i].count),
                by_country[i].share_percent);
  }

  const auto popularity = acc.popularity.scores();
  std::printf("\npopularity: %zu scored CIDs, %.1f%% requested by one peer\n",
              popularity.urp.size(),
              100.0 * popularity.single_requester_share());
  std::printf("top CIDs by unique requesters:\n");
  for (const auto& [cid, score] : popularity.top_urp(5)) {
    std::printf("  %-16s URP=%llu RRP=%llu\n", cid.short_hex().c_str(),
                static_cast<unsigned long long>(score),
                static_cast<unsigned long long>(popularity.rrp.at(cid)));
  }

  util::RngStream rng(1, "trace-report");
  const auto test = analysis::test_power_law(popularity.urp_values(), rng, 40);
  std::printf("\npower-law hypothesis on URP: alpha=%.2f xmin=%.0f p=%.3f "
              "-> %s\n", test.fit.alpha, test.fit.xmin, test.p_value,
              test.rejected() ? "REJECTED" : "not rejected");

  std::printf("\nmost active peers:\n");
  std::vector<std::pair<crypto::PeerId, std::uint64_t>> per_peer(
      acc.per_peer.begin(), acc.per_peer.end());
  std::sort(per_peer.begin(), per_peer.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (std::size_t i = 0; i < per_peer.size() && i < 5; ++i) {
    std::printf("  %s  %llu requests\n", per_peer[i].first.short_hex().c_str(),
                static_cast<unsigned long long>(per_peer[i].second));
  }
}

// Distinct exit codes so scripts can tell "wrong path" from "bad data":
// 2 = an input file is missing/unopenable, 3 = an input parsed as garbage.
constexpr int kExitMissingInput = 2;
constexpr int kExitCorruptInput = 3;

int report_files(const std::vector<std::string>& paths,
                 const net::GeoDatabase& geo) {
  std::vector<trace::Trace> traces;
  for (const auto& path : paths) {
    trace::LoadError why = trace::LoadError::kNone;
    auto t = trace::load_any(path, &why);
    if (!t) {
      std::fprintf(stderr, "error: cannot load %s: %s\n", path.c_str(),
                   std::string(trace::load_error_name(why)).c_str());
      return why == trace::LoadError::kCorrupt ? kExitCorruptInput
                                               : kExitMissingInput;
    }
    std::printf("loaded %s: %zu entries\n", path.c_str(), t->size());
    traces.push_back(std::move(*t));
  }

  std::vector<const trace::Trace*> pointers;
  for (const auto& t : traces) pointers.push_back(&t);
  const trace::Trace unified = trace::unify(pointers);

  std::printf("\n=== unified trace report ===\n");
  ReportAccumulators acc(geo);
  for (const auto& e : unified.entries()) acc.add(e);
  print_report(acc);
  return 0;
}

int report_stores(const std::vector<std::string>& dirs,
                  const net::GeoDatabase& geo) {
  std::vector<tracestore::TraceStore> stores;
  for (const auto& dir : dirs) {
    std::string error;
    auto store = tracestore::TraceStore::open(dir, {}, &error);
    if (!store) {
      std::fprintf(stderr, "error: cannot open store %s: %s\n", dir.c_str(),
                   error.c_str());
      return 1;
    }
    for (const auto& w : store->warnings()) {
      std::fprintf(stderr, "warning: %s\n", w.c_str());
    }
    std::printf("opened store %s: %llu entries in %zu segments (%.1f MiB)\n",
                dir.c_str(),
                static_cast<unsigned long long>(store->total_entries()),
                store->segments().size(),
                static_cast<double>(store->total_bytes()) / (1024.0 * 1024.0));
    if (const auto& meta = store->meta()) {
      // Ingested from a real capture: report the wall-clock anchoring.
      std::printf("  ingested from %s (%s), wall range %s .. %s\n",
                  meta->source.c_str(), meta->format.c_str(),
                  util::format_wall_time(meta->wall_epoch_ns +
                                         store->min_time())
                      .c_str(),
                  util::format_wall_time(meta->wall_epoch_ns +
                                         store->max_time())
                      .c_str());
    }
    stores.push_back(std::move(*store));
  }

  // Unify out-of-core: k-way merge + streaming flags into a scratch store,
  // so the unified trace never lives in memory.
  const std::string unified_dir =
      (std::filesystem::temp_directory_path() / "ipfsmon_trace_report_unified")
          .string();
  std::string error;
  auto writer = tracestore::SegmentWriter::create(unified_dir, {}, &error);
  if (writer == nullptr) {
    std::fprintf(stderr, "error: cannot create scratch store %s: %s\n",
                 unified_dir.c_str(), error.c_str());
    return 1;
  }
  std::vector<const tracestore::TraceStore*> inputs;
  for (const auto& s : stores) inputs.push_back(&s);
  const tracestore::UnifyStats unify_stats =
      tracestore::unify_to_store(inputs, *writer);
  if (!writer->finalize()) {
    std::fprintf(stderr, "error: failed to finalize %s\n", unified_dir.c_str());
    return 1;
  }
  // Ingested inputs carry a wall-clock epoch; propagate it to the unified
  // scratch store when it is unambiguous (all inputs agree).
  {
    const tracestore::StoreMeta* common = nullptr;
    bool consistent = true;
    for (const auto& s : stores) {
      if (!s.meta()) continue;
      if (common == nullptr) {
        common = &*s.meta();
      } else if (common->wall_epoch_ns != s.meta()->wall_epoch_ns) {
        consistent = false;
      }
    }
    if (common != nullptr && consistent) {
      tracestore::write_store_meta(unified_dir, *common);
    } else if (common != nullptr) {
      std::printf("note: input stores disagree on wall epoch; unified store "
                  "left unanchored\n");
    }
  }
  std::printf("unified out-of-core into %s: %llu entries, "
              "peak window state %zu keys\n",
              unified_dir.c_str(),
              static_cast<unsigned long long>(unify_stats.entries),
              unify_stats.peak_window_keys);

  auto unified = tracestore::TraceStore::open(unified_dir, {}, &error);
  if (!unified) {
    std::fprintf(stderr, "error: cannot reopen %s: %s\n", unified_dir.c_str(),
                 error.c_str());
    return 1;
  }

  std::printf("\n=== unified trace report (streamed) ===\n");
  ReportAccumulators acc(geo);
  tracestore::ScanExecutor executor;
  const tracestore::ScanStats scan_stats = executor.scan(
      *unified, tracestore::ScanQuery{},
      [&acc](const trace::TraceEntry& e) { acc.add(e); });
  print_report(acc);
  std::printf("\nscan: %zu/%zu segments decoded on %zu pool workers\n",
              scan_stats.segments_scanned, scan_stats.segments_total,
              unified->scan_pool().size());
  for (const auto& w : unified->warnings()) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }
  return 0;
}

scenario::StudyConfig demo_config() {
  scenario::StudyConfig config;
  config.population.node_count = 150;
  config.catalog.item_count = 400;
  config.warmup = 2 * util::kHour;
  config.duration = 6 * util::kHour;
  return config;
}

std::vector<std::string> make_demo_trace() {
  std::printf("generating a demo trace (small monitoring study)...\n");
  scenario::MonitoringStudy study(demo_config());
  study.run();
  const std::string path = "/tmp/ipfsmon_demo_trace.csv";
  trace::save_csv(path, study.monitor(0).recorded());
  const std::string path1 = "/tmp/ipfsmon_demo_trace_m1.bin";
  trace::save_binary(path1, study.monitor(1).recorded());
  std::printf("wrote %s and %s\n\n", path.c_str(), path1.c_str());
  return {path, path1};
}

std::vector<std::string> make_demo_stores() {
  std::printf("generating demo trace stores (monitors spill to disk)...\n");
  scenario::StudyConfig config = demo_config();
  config.monitor_spill_dir = "/tmp/ipfsmon_demo_stores";
  scenario::MonitoringStudy study(config);
  study.run();
  if (!study.finalize_monitor_spill()) {
    std::fprintf(stderr, "error: finalizing monitor spill stores failed\n");
    return {};
  }
  const std::vector<std::string> dirs = study.monitor_store_dirs();
  for (const auto& d : dirs) std::printf("wrote store %s\n", d.c_str());
  std::printf("\n");
  return dirs;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  if (argc >= 2 && std::strcmp(argv[1], "--demo-store") == 0) {
    paths = make_demo_stores();
    if (paths.empty()) return 1;
  } else if (argc < 2 || std::strcmp(argv[1], "--demo") == 0) {
    paths = make_demo_trace();
  } else {
    for (int i = 1; i < argc; ++i) paths.emplace_back(argv[i]);
  }

  std::size_t dir_count = 0;
  for (const auto& p : paths) {
    if (std::filesystem::is_directory(p)) ++dir_count;
  }
  const net::GeoDatabase geo = net::GeoDatabase::standard();
  if (dir_count == paths.size()) return report_stores(paths, geo);
  if (dir_count != 0) {
    std::fprintf(stderr,
                 "error: mixing trace files and store directories is not "
                 "supported; pass one kind\n");
    return 1;
  }
  return report_files(paths, geo);
}
