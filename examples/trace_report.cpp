// trace_report — a standalone analysis CLI over saved traces.
//
// Load one or more monitor traces (CSV or binary, as written by
// trace::save_csv / save_binary), unify them with the paper's 5 s / 31 s
// windows, and print the full analysis report: preprocessing stats,
// activity by type/codec/country, popularity (RRP/URP + power-law test),
// and the most active peers.
//
// Usage: trace_report <trace-file> [<trace-file> ...]
//        trace_report --demo        (generate a demo trace first)
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/aggregate.hpp"
#include "analysis/popularity.hpp"
#include "analysis/powerlaw.hpp"
#include "scenario/study.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "util/strings.hpp"

using namespace ipfsmon;

namespace {



void report(const trace::Trace& unified, const net::GeoDatabase& geo) {
  const trace::TraceStats stats = trace::compute_stats(unified);
  std::printf("entries: %zu (%zu requests, %zu cancels)\n", stats.total,
              stats.requests, stats.cancels);
  std::printf("peers:   %zu unique   cids: %zu unique\n", stats.unique_peers,
              stats.unique_cids);
  std::printf("flags:   %zu re-broadcasts (%.1f%% of requests), "
              "%zu inter-monitor duplicates\n",
              stats.rebroadcasts, 100.0 * trace::rebroadcast_share(unified),
              stats.inter_monitor_duplicates);

  std::printf("\nrequests by type:\n");
  for (const auto& row : analysis::share_by(
           unified, [](const trace::TraceEntry& e) {
             return std::string(bitswap::want_type_name(e.type));
           })) {
    std::printf("  %-12s %10llu  %6.2f%%\n", row.label.c_str(),
                static_cast<unsigned long long>(row.count), row.share_percent);
  }

  std::printf("\nrequests by codec:\n");
  for (const auto& row : analysis::share_by_codec(unified)) {
    std::printf("  %-14s %10llu  %6.2f%%\n", row.label.c_str(),
                static_cast<unsigned long long>(row.count), row.share_percent);
  }

  std::printf("\nrequests by country (deduplicated):\n");
  const auto by_country = analysis::share_by_country(unified.deduplicated(), geo);
  for (std::size_t i = 0; i < by_country.size() && i < 8; ++i) {
    std::printf("  %-6s %10llu  %6.2f%%\n", by_country[i].label.c_str(),
                static_cast<unsigned long long>(by_country[i].count),
                by_country[i].share_percent);
  }

  const auto popularity = analysis::compute_popularity(unified);
  std::printf("\npopularity: %zu scored CIDs, %.1f%% requested by one peer\n",
              popularity.urp.size(),
              100.0 * popularity.single_requester_share());
  std::printf("top CIDs by unique requesters:\n");
  for (const auto& [cid, score] : popularity.top_urp(5)) {
    std::printf("  %-16s URP=%llu RRP=%llu\n", cid.short_hex().c_str(),
                static_cast<unsigned long long>(score),
                static_cast<unsigned long long>(popularity.rrp.at(cid)));
  }

  util::RngStream rng(1, "trace-report");
  const auto test = analysis::test_power_law(popularity.urp_values(), rng, 40);
  std::printf("\npower-law hypothesis on URP: alpha=%.2f xmin=%.0f p=%.3f "
              "-> %s\n", test.fit.alpha, test.fit.xmin, test.p_value,
              test.rejected() ? "REJECTED" : "not rejected");

  std::printf("\nmost active peers:\n");
  const auto per_peer = analysis::requests_per_peer(unified);
  for (std::size_t i = 0; i < per_peer.size() && i < 5; ++i) {
    std::printf("  %s  %llu requests\n", per_peer[i].first.short_hex().c_str(),
                static_cast<unsigned long long>(per_peer[i].second));
  }
}

std::string make_demo_trace() {
  std::printf("generating a demo trace (small monitoring study)...\n");
  scenario::StudyConfig config;
  config.population.node_count = 150;
  config.catalog.item_count = 400;
  config.warmup = 2 * util::kHour;
  config.duration = 6 * util::kHour;
  scenario::MonitoringStudy study(config);
  study.run();
  const std::string path = "/tmp/ipfsmon_demo_trace.csv";
  trace::save_csv(path, study.monitor(0).recorded());
  const std::string path1 = "/tmp/ipfsmon_demo_trace_m1.bin";
  trace::save_binary(path1, study.monitor(1).recorded());
  std::printf("wrote %s and %s\n\n", path.c_str(), path1.c_str());
  return path + " " + path1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  if (argc < 2 || std::strcmp(argv[1], "--demo") == 0) {
    const std::string demo = make_demo_trace();
    for (const auto& p : util::split(demo, ' ')) paths.push_back(p);
  } else {
    for (int i = 1; i < argc; ++i) paths.emplace_back(argv[i]);
  }

  std::vector<trace::Trace> traces;
  for (const auto& path : paths) {
    auto t = trace::load_any(path);
    if (!t) {
      std::fprintf(stderr, "error: cannot parse %s (neither binary nor CSV)\n",
                   path.c_str());
      return 1;
    }
    std::printf("loaded %s: %zu entries\n", path.c_str(), t->size());
    traces.push_back(std::move(*t));
  }

  std::vector<const trace::Trace*> pointers;
  for (const auto& t : traces) pointers.push_back(&t);
  const trace::Trace unified = trace::unify(pointers);

  std::printf("\n=== unified trace report ===\n");
  report(unified, net::GeoDatabase::standard());
  return 0;
}
